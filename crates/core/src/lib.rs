#![warn(missing_docs)]
// Dispatch and pipeline paths must return structured errors, never panic:
// `unwrap()` is denied in this crate's non-test code (tests may unwrap).
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pi2-core
//!
//! The PI2 public API: turn a SQL query log into an interactive
//! visualization interface, then drive that interface with events.
//!
//! The generation pipeline follows the paper's Figure 6:
//! 1. **Parse** the query log into DiffTrees ([`pi2_difftree`]).
//! 2. **Map** DiffTrees to candidate interfaces ([`pi2_interface`]).
//! 3. **Cost** the candidates ([`pi2_cost`]).
//! 4. **Search** the space of DiffTree transformations with MCTS
//!    ([`pi2_mcts`]), returning the lowest-cost interface that expresses
//!    every input query.
//!
//! ```
//! use pi2_core::prelude::*;
//!
//! let catalog = pi2_datasets::toy::default_catalog();
//! let pi2 = Pi2::builder(catalog).build();
//! let generated = pi2
//!     .generate_sql(&[
//!         "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
//!         "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
//!     ])
//!     .unwrap();
//! assert!(!generated.interface.charts.is_empty());
//!
//! // Drive the interface: every event re-executes the underlying query.
//! let mut session = pi2.session(&generated);
//! let updates = session.refresh_all().unwrap();
//! assert_eq!(updates.len(), generated.interface.charts.len());
//! ```

pub mod explain;
mod fallback;
pub mod fleet;
pub mod pipeline;
pub mod prelude;
pub mod problem;
pub mod scene;
pub mod session;

pub use fleet::{FleetConfig, FleetCounters, FleetHandle, FleetOutcome};
pub use pi2_mcts::GenerationBudget;
pub use pipeline::{
    DegradationLevel, GeneratedInterface, GenerationStats, Pi2, Pi2Builder, Pi2Error,
    SearchStrategy,
};
pub use problem::{ForestAction, InterfaceSearch};
pub use scene::{Renderer, SceneCatchup, SceneDelta, SceneGraph, SceneNodeId, SceneState};
pub use session::{
    ChartUpdate, Event, ExecMode, InterfaceSession, SessionBuilder, SessionError, SessionStats,
    WidgetState, WidgetValue,
};
