//! The end-to-end generation pipeline and its public entry point.

use crate::problem::InterfaceSearch;
use pi2_cost::{choose_best, CostBreakdown, CostWeights};
use pi2_difftree::DiffForest;
use pi2_engine::Catalog;
use pi2_interface::{map_forest, Interface, MapperConfig, ScreenSpec};
use pi2_mcts::{greedy, mcts, MctsConfig, SearchStats};
use pi2_sql::Query;
use std::fmt;
use std::time::{Duration, Instant};

/// How to explore the space of DiffTree forests.
#[derive(Debug, Clone)]
pub enum SearchStrategy {
    /// Full Monte-Carlo Tree Search (the paper's choice).
    Mcts(MctsConfig),
    /// Greedy hill climbing with an evaluation budget (ablation baseline).
    Greedy {
        /// Reward-evaluation budget.
        max_evaluations: usize,
    },
    /// No search: merge everything into one tree, canonicalize, map. The
    /// fast path used when the log is small and obviously coherent.
    FullMerge,
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy::Mcts(MctsConfig { iterations: 120, rollout_depth: 3, ..Default::default() })
    }
}

/// Errors from the generation pipeline.
#[derive(Debug, Clone)]
pub enum Pi2Error {
    /// The SQL text failed to parse.
    Parse(String),
    /// The query log is empty.
    EmptyLog,
    /// Interface mapping failed.
    Map(String),
    /// No candidate expresses every query.
    NoExpressiveInterface,
}

impl fmt::Display for Pi2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pi2Error::Parse(m) => write!(f, "parse error: {m}"),
            Pi2Error::EmptyLog => write!(f, "the query log is empty"),
            Pi2Error::Map(m) => write!(f, "mapping failed: {m}"),
            Pi2Error::NoExpressiveInterface => {
                write!(f, "no candidate interface expresses every query in the log")
            }
        }
    }
}
impl std::error::Error for Pi2Error {}

/// Statistics from one generation run.
#[derive(Debug, Clone)]
pub struct GenerationStats {
    /// Elapsed.
    pub elapsed: Duration,
    /// Candidates considered.
    pub candidates_considered: usize,
    /// Search.
    pub search: Option<SearchStats>,
}

/// The result of a generation: the chosen interface, the DiffTree forest
/// behind it, the cost breakdown, and a snapshot of the input queries
/// (the paper: "we take a snapshot of the queries used to generate a new
/// interface ... to adapt to edits and ensure reproducibility").
#[derive(Debug, Clone)]
pub struct GeneratedInterface {
    /// The input query log.
    pub queries: Vec<Query>,
    /// The DiffTree forest behind the interface.
    pub forest: DiffForest,
    /// The produced interface.
    pub interface: Interface,
    /// Cost breakdown of the chosen interface.
    pub cost: CostBreakdown,
    /// Generation statistics.
    pub stats: GenerationStats,
}

/// Builder for [`Pi2`].
pub struct Pi2Builder {
    catalog: Catalog,
    screen: ScreenSpec,
    weights: CostWeights,
    strategy: SearchStrategy,
}

impl Pi2Builder {
    /// The screen available to the generated interface (paper: "PI2 takes
    /// the available screen size into account").
    pub fn screen(mut self, screen: ScreenSpec) -> Self {
        self.screen = screen;
        self
    }

    /// Override cost weights.
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Override the search strategy.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Build.
    pub fn build(self) -> Pi2 {
        Pi2 { catalog: self.catalog, screen: self.screen, weights: self.weights, strategy: self.strategy }
    }
}

/// The PI2 interface generator.
pub struct Pi2 {
    catalog: Catalog,
    screen: ScreenSpec,
    weights: CostWeights,
    strategy: SearchStrategy,
}

impl Pi2 {
    /// Start building a generator over `catalog`.
    pub fn builder(catalog: Catalog) -> Pi2Builder {
        Pi2Builder {
            catalog,
            screen: ScreenSpec::default(),
            weights: CostWeights::default(),
            strategy: SearchStrategy::default(),
        }
    }

    /// The catalog this generator executes against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Generate an interface from SQL text.
    pub fn generate_sql(&self, sql: &[&str]) -> Result<GeneratedInterface, Pi2Error> {
        let queries: Vec<Query> = sql
            .iter()
            .map(|s| pi2_sql::parse_query(s).map_err(|e| Pi2Error::Parse(e.to_string())))
            .collect::<Result<_, _>>()?;
        self.generate(&queries)
    }

    /// Generate an interface from a parsed query log.
    pub fn generate(&self, queries: &[Query]) -> Result<GeneratedInterface, Pi2Error> {
        if queries.is_empty() {
            return Err(Pi2Error::EmptyLog);
        }
        let start = Instant::now();
        let mapper_cfg = MapperConfig { screen: self.screen, enumerate_variants: true };
        let search =
            InterfaceSearch::new(queries, &self.catalog, mapper_cfg.clone(), self.weights.clone());

        let (mut forest, search_stats) = match &self.strategy {
            SearchStrategy::Mcts(cfg) => {
                let (f, s) = mcts(&search, cfg);
                (f, Some(s))
            }
            SearchStrategy::Greedy { max_evaluations } => {
                let (f, s) = greedy(&search, *max_evaluations);
                (f, Some(s))
            }
            SearchStrategy::FullMerge => {
                (search.canonicalized(DiffForest::fully_merged(queries)), None)
            }
        };

        // Stable display order: trees sorted by their earliest source query,
        // so G1 is always the earliest selected cell (merges shuffle order).
        forest.trees.sort_by_key(|t| t.source_queries.iter().min().copied().unwrap_or(usize::MAX));

        let candidates = map_forest(&forest, &self.catalog, queries, &mapper_cfg)
            .map_err(|e| Pi2Error::Map(e.to_string()))?;
        let candidates_considered = candidates.len();
        let (best_idx, cost) =
            choose_best(&candidates, &forest, queries, &self.catalog, &self.weights)
                .ok_or(Pi2Error::NoExpressiveInterface)?;
        if !cost.expressive {
            return Err(Pi2Error::NoExpressiveInterface);
        }
        let interface = candidates.into_iter().nth(best_idx).expect("index from enumerate");

        Ok(GeneratedInterface {
            queries: queries.to_vec(),
            forest,
            interface,
            cost,
            stats: GenerationStats {
                elapsed: start.elapsed(),
                candidates_considered,
                search: search_stats,
            },
        })
    }

    /// Open an interactive session over a generated interface.
    pub fn session(&self, generated: &GeneratedInterface) -> crate::session::InterfaceSession {
        crate::session::InterfaceSession::new_with_log(
            self.catalog.clone(),
            generated.forest.clone(),
            generated.interface.clone(),
            &generated.queries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_for_single_query() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        let g = pi2.generate_sql(&["SELECT a, count(*) FROM t GROUP BY a"]).unwrap();
        assert_eq!(g.interface.charts.len(), 1);
        assert!(g.cost.expressive);
        assert!(g.stats.elapsed.as_secs() < 60);
    }

    #[test]
    fn empty_log_is_error() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        assert!(matches!(pi2.generate(&[]), Err(Pi2Error::EmptyLog)));
    }

    #[test]
    fn parse_error_is_reported() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        assert!(matches!(pi2.generate_sql(&["NOT SQL AT ALL"]), Err(Pi2Error::Parse(_))));
    }

    #[test]
    fn full_merge_strategy_handles_fig3() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        assert_eq!(g.forest.trees.len(), 1);
        // The literal variation becomes an interactive control (widget or
        // chart interaction).
        let controls = g.interface.widgets.len() + g.interface.interaction_count();
        assert!(controls >= 1);
        // The snapshot preserves the input queries.
        assert_eq!(g.queries.len(), 2);
    }

    #[test]
    fn mcts_strategy_generates_expressive_interface() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 30,
                rollout_depth: 2,
                seed: 5,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert!(g.cost.expressive);
        assert!(g.forest.expresses_all(&queries));
        assert!(g.stats.search.is_some());
    }
}
