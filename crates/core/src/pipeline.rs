//! The end-to-end generation pipeline and its public entry point.

use crate::problem::InterfaceSearch;
use pi2_cost::{CostBreakdown, CostMemo, CostWeights};
use pi2_difftree::DiffForest;
use pi2_engine::Catalog;
use pi2_interface::{map_forest, Interface, MapperConfig, ScreenSpec};
use pi2_mcts::{greedy, mcts_parallel, MctsConfig, SearchStats};
use pi2_sql::Query;
use pi2_telemetry::{Registry, Snapshot};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to explore the space of DiffTree forests.
#[derive(Debug, Clone)]
pub enum SearchStrategy {
    /// Full Monte-Carlo Tree Search (the paper's choice). Runs
    /// [`MctsConfig::workers`] root-parallel trees sharing one reward cache.
    Mcts(MctsConfig),
    /// Greedy hill climbing with an evaluation budget (ablation baseline).
    Greedy {
        /// Reward-evaluation budget.
        max_evaluations: usize,
    },
    /// No search: merge everything into one tree, canonicalize, map. The
    /// fast path used when the log is small and obviously coherent.
    FullMerge,
}

impl Default for SearchStrategy {
    fn default() -> Self {
        // rollout_depth, seed, and workers come from MctsConfig::default();
        // only the iteration budget is pipeline-specific.
        SearchStrategy::Mcts(MctsConfig { iterations: 120, ..Default::default() })
    }
}

/// Errors from the generation pipeline.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Pi2Error {
    /// The SQL text failed to parse. The underlying [`pi2_sql::ParseError`]
    /// (with line/column position) is available via [`std::error::Error::source`].
    Parse(pi2_sql::ParseError),
    /// The query log is empty.
    EmptyLog,
    /// Interface mapping failed.
    Map(String),
    /// No candidate expresses every query.
    NoExpressiveInterface,
}

impl fmt::Display for Pi2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pi2Error::Parse(e) => write!(f, "parse error: {e}"),
            Pi2Error::EmptyLog => write!(f, "the query log is empty"),
            Pi2Error::Map(m) => write!(f, "mapping failed: {m}"),
            Pi2Error::NoExpressiveInterface => {
                write!(f, "no candidate interface expresses every query in the log")
            }
        }
    }
}

impl std::error::Error for Pi2Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Pi2Error::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pi2_sql::ParseError> for Pi2Error {
    fn from(e: pi2_sql::ParseError) -> Self {
        Pi2Error::Parse(e)
    }
}

/// Statistics from one generation run.
#[derive(Debug, Clone, Default)]
pub struct GenerationStats {
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Candidates enumerated for the final (winning) forest.
    pub candidates_considered: usize,
    /// Search-layer statistics (iterations, workers, reward cache), when a
    /// search strategy ran.
    pub search: Option<SearchStats>,
    /// Per-phase timings and counters for this run: `phase.parse`,
    /// `phase.search`, `phase.map`, `phase.cost`, plus `memo.hits` /
    /// `memo.misses` for the cross-run cost memo.
    pub telemetry: Snapshot,
    /// Cost-memo lookups this run answered from cache (includes entries
    /// memoized by *earlier* runs of the same [`Pi2`]).
    pub memo_hits: u64,
    /// Cost-memo lookups this run that had to map and cost.
    pub memo_misses: u64,
    /// Total entries in the shared memo after this run.
    pub memo_entries: usize,
}

impl GenerationStats {
    /// Fraction of cost-memo lookups served from cache this run, if any.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            None
        } else {
            Some(self.memo_hits as f64 / total as f64)
        }
    }

    /// Accumulated time of one pipeline phase (`"parse"`, `"search"`,
    /// `"map"`, `"cost"`), zero if the phase never ran.
    pub fn phase(&self, name: &str) -> Duration {
        self.telemetry.timer_total(&format!("phase.{name}"))
    }

    /// Flat JSON object with every counter and timer of the run plus
    /// `elapsed_ms`, compatible with the bench harness's `BENCH_*.json`
    /// schema.
    pub fn to_json(&self) -> String {
        let inner = self.telemetry.to_json();
        let mut out = String::from(inner.trim_end_matches('}'));
        if out.len() > 1 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"elapsed_ms\":{:.3},\"candidates_considered\":{}}}",
            self.elapsed.as_secs_f64() * 1e3,
            self.candidates_considered
        ));
        out
    }
}

/// The result of a generation: the chosen interface, the DiffTree forest
/// behind it, the cost breakdown, and a snapshot of the input queries
/// (the paper: "we take a snapshot of the queries used to generate a new
/// interface ... to adapt to edits and ensure reproducibility").
#[derive(Debug, Clone)]
pub struct GeneratedInterface {
    /// The input query log.
    pub queries: Vec<Query>,
    /// The DiffTree forest behind the interface.
    pub forest: DiffForest,
    /// The produced interface.
    pub interface: Interface,
    /// Cost breakdown of the chosen interface.
    pub cost: CostBreakdown,
    /// Generation statistics.
    pub stats: GenerationStats,
}

impl GeneratedInterface {
    /// Open an interactive session over this interface. Equivalent to
    /// [`Pi2::session`] but usable without keeping the generator around.
    pub fn session(&self, catalog: &Catalog) -> crate::session::InterfaceSession {
        crate::session::SessionBuilder::new(
            catalog.clone(),
            self.forest.clone(),
            self.interface.clone(),
        )
        .queries(&self.queries)
        .build()
    }
}

/// Builder for [`Pi2`].
pub struct Pi2Builder {
    catalog: Catalog,
    screen: ScreenSpec,
    weights: CostWeights,
    strategy: SearchStrategy,
}

impl Pi2Builder {
    /// The screen available to the generated interface (paper: "PI2 takes
    /// the available screen size into account").
    pub fn screen(mut self, screen: ScreenSpec) -> Self {
        self.screen = screen;
        self
    }

    /// Override cost weights.
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Override the search strategy.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Build.
    pub fn build(self) -> Pi2 {
        Pi2 {
            catalog: self.catalog,
            screen: self.screen,
            weights: self.weights,
            strategy: self.strategy,
            memo: Arc::new(CostMemo::new()),
        }
    }
}

/// The PI2 interface generator.
///
/// Holds a [`CostMemo`] shared by every `generate` call, so regenerating
/// after a notebook edit reuses the map/cost work of all forests the
/// previous searches already visited (the paper's `regen_latency`
/// scenario).
pub struct Pi2 {
    catalog: Catalog,
    screen: ScreenSpec,
    weights: CostWeights,
    strategy: SearchStrategy,
    memo: Arc<CostMemo>,
}

impl Pi2 {
    /// Start building a generator over `catalog`.
    pub fn builder(catalog: Catalog) -> Pi2Builder {
        Pi2Builder {
            catalog,
            screen: ScreenSpec::default(),
            weights: CostWeights::default(),
            strategy: SearchStrategy::default(),
        }
    }

    /// The catalog this generator executes against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cost memo shared across this generator's runs.
    pub fn memo(&self) -> &Arc<CostMemo> {
        &self.memo
    }

    /// Generate an interface from SQL text.
    pub fn generate_sql(&self, sql: &[&str]) -> Result<GeneratedInterface, Pi2Error> {
        let telemetry = Arc::new(Registry::new());
        let queries: Vec<Query> = telemetry.time("phase.parse", || {
            sql.iter()
                .map(|s| pi2_sql::parse_query(s).map_err(Pi2Error::from))
                .collect::<Result<_, _>>()
        })?;
        self.generate_with(&queries, telemetry)
    }

    /// Generate an interface from a parsed query log.
    pub fn generate(&self, queries: &[Query]) -> Result<GeneratedInterface, Pi2Error> {
        self.generate_with(queries, Arc::new(Registry::new()))
    }

    fn generate_with(
        &self,
        queries: &[Query],
        telemetry: Arc<Registry>,
    ) -> Result<GeneratedInterface, Pi2Error> {
        if queries.is_empty() {
            return Err(Pi2Error::EmptyLog);
        }
        let start = Instant::now();
        let mapper_cfg = MapperConfig { screen: self.screen, enumerate_variants: true };
        let search = InterfaceSearch::with_memo(
            queries,
            &self.catalog,
            mapper_cfg.clone(),
            self.weights.clone(),
            Arc::clone(&self.memo),
            Arc::clone(&telemetry),
        );
        let (hits_before, misses_before) = (self.memo.hits(), self.memo.misses());

        let (forest, search_stats) = telemetry.time("phase.search", || match &self.strategy {
            SearchStrategy::Mcts(cfg) => {
                let (f, s) = mcts_parallel(&search, cfg);
                (f, Some(s))
            }
            SearchStrategy::Greedy { max_evaluations } => {
                let (f, s) = greedy(&search, *max_evaluations);
                (f, Some(s))
            }
            SearchStrategy::FullMerge => {
                (search.canonicalized(DiffForest::fully_merged(queries)), None)
            }
        });
        // Search states are normalized (trees sorted by earliest source
        // query) inside InterfaceSearch, so the forest is already in stable
        // display order: G1 is the earliest selected cell.

        let choice = match search.best_choice(&forest) {
            Some(c) => c,
            None => {
                // Distinguish "mapping failed" from "nothing expressive":
                // re-run the mapper on this one forest for the error detail.
                map_forest(&forest, &self.catalog, queries, &mapper_cfg)
                    .map_err(|e| Pi2Error::Map(e.to_string()))?;
                return Err(Pi2Error::NoExpressiveInterface);
            }
        };
        if !choice.breakdown.expressive {
            return Err(Pi2Error::NoExpressiveInterface);
        }

        let memo_hits = self.memo.hits() - hits_before;
        let memo_misses = self.memo.misses() - misses_before;
        telemetry.add("memo.hits", memo_hits);
        telemetry.add("memo.misses", memo_misses);
        if let Some(s) = &search_stats {
            telemetry.add("search.iterations", s.iterations as u64);
            telemetry.add("search.expansions", s.expansions as u64);
            telemetry.add("search.reward_cache.hits", s.cache_hits);
            telemetry.add("search.reward_cache.misses", s.cache_misses);
            telemetry.add("search.workers", s.workers.len() as u64);
        }

        Ok(GeneratedInterface {
            queries: queries.to_vec(),
            forest,
            interface: choice.interface.clone(),
            cost: choice.breakdown.clone(),
            stats: GenerationStats {
                elapsed: start.elapsed(),
                candidates_considered: choice.candidates_considered,
                search: search_stats,
                telemetry: telemetry.snapshot(),
                memo_hits,
                memo_misses,
                memo_entries: self.memo.len(),
            },
        })
    }

    /// Open an interactive session over a generated interface.
    pub fn session(&self, generated: &GeneratedInterface) -> crate::session::InterfaceSession {
        generated.session(&self.catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_for_single_query() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        let g = pi2.generate_sql(&["SELECT a, count(*) FROM t GROUP BY a"]).unwrap();
        assert_eq!(g.interface.charts.len(), 1);
        assert!(g.cost.expressive);
        assert!(g.stats.elapsed.as_secs() < 60);
    }

    #[test]
    fn empty_log_is_error() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        assert!(matches!(pi2.generate(&[]), Err(Pi2Error::EmptyLog)));
    }

    #[test]
    fn parse_error_is_reported() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        let err = pi2.generate_sql(&["NOT SQL AT ALL"]).unwrap_err();
        assert!(matches!(err, Pi2Error::Parse(_)));
        // The structured source carries the position.
        let source = std::error::Error::source(&err).expect("source chain");
        assert!(source.to_string().contains("line 1"));
    }

    #[test]
    fn full_merge_strategy_handles_fig3() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        assert_eq!(g.forest.trees.len(), 1);
        // The literal variation becomes an interactive control (widget or
        // chart interaction).
        let controls = g.interface.widgets.len() + g.interface.interaction_count();
        assert!(controls >= 1);
        // The snapshot preserves the input queries.
        assert_eq!(g.queries.len(), 2);
    }

    #[test]
    fn mcts_strategy_generates_expressive_interface() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 30,
                rollout_depth: 2,
                seed: 5,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert!(g.cost.expressive);
        assert!(g.forest.expresses_all(&queries));
        assert!(g.stats.search.is_some());
    }

    #[test]
    fn stats_report_phases_and_memo() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 20,
                seed: 7,
                workers: 2,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert!(g.stats.phase("search") > Duration::ZERO);
        assert!(g.stats.phase("map") > Duration::ZERO);
        assert!(g.stats.phase("cost") > Duration::ZERO);
        assert!(g.stats.memo_misses > 0);
        assert!(g.stats.memo_entries > 0);
        let json = g.stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"phase_search_ms\""));
        assert!(json.contains("\"elapsed_ms\""));
    }

    #[test]
    fn repeated_generation_hits_the_cross_run_memo() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 25,
                seed: 3,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let first = pi2.generate(&queries).unwrap();
        let second = pi2.generate(&queries).unwrap();
        // Same log, same config: the second run re-visits the same forests
        // and must answer (nearly) every lookup from the shared memo.
        assert!(second.stats.memo_hits > 0, "second run never hit the memo");
        assert!(second.stats.memo_misses <= first.stats.memo_misses);
        assert!(second.stats.cache_hit_rate().unwrap() > 0.9);
        // And produce the identical interface.
        assert_eq!(first.interface, second.interface);
    }
}
