//! The end-to-end generation pipeline and its public entry point.

use crate::fleet::{self, CachedGeneration, FleetHandle, FleetOutcome, FlightOutcome, Role};
use crate::problem::InterfaceSearch;
use pi2_cost::{combine_fingerprints, weights_fingerprint, CostBreakdown, CostMemo, CostWeights};
use pi2_difftree::{merge_queries, DiffForest};
use pi2_engine::Catalog;
use pi2_interface::{map_forest, Interface, MapperConfig, ScreenSpec};
use pi2_mcts::{greedy_with_budget, mcts_parallel, GenerationBudget, MctsConfig, SearchStats};
use pi2_sql::Query;
use pi2_telemetry::{Registry, Snapshot};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to explore the space of DiffTree forests.
#[derive(Debug, Clone)]
pub enum SearchStrategy {
    /// Full Monte-Carlo Tree Search (the paper's choice). Runs
    /// [`MctsConfig::workers`] root-parallel trees sharing one reward cache.
    Mcts(MctsConfig),
    /// Greedy hill climbing with an evaluation budget (ablation baseline).
    Greedy {
        /// Reward-evaluation budget.
        max_evaluations: usize,
    },
    /// No search: merge everything into one tree, canonicalize, map. The
    /// fast path used when the log is small and obviously coherent.
    FullMerge,
}

impl Default for SearchStrategy {
    fn default() -> Self {
        // rollout_depth, seed, and workers come from MctsConfig::default();
        // only the iteration budget is pipeline-specific.
        SearchStrategy::Mcts(MctsConfig { iterations: 120, ..Default::default() })
    }
}

/// Errors from the generation pipeline.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Pi2Error {
    /// The SQL text failed to parse. The underlying [`pi2_sql::ParseError`]
    /// (with line/column position) is available via [`std::error::Error::source`].
    Parse(pi2_sql::ParseError),
    /// The query log is empty.
    EmptyLog,
    /// Interface mapping failed.
    Map(String),
    /// No candidate expresses every query.
    NoExpressiveInterface,
    /// The search produced no result at all — every worker panicked (or
    /// the sequential search itself panicked). Only surfaced when graceful
    /// degradation is disabled; otherwise the pipeline falls back to the
    /// no-search baseline interface instead.
    WorkerPanic(String),
}

impl fmt::Display for Pi2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pi2Error::Parse(e) => write!(f, "parse error: {e}"),
            Pi2Error::EmptyLog => write!(f, "the query log is empty"),
            Pi2Error::Map(m) => write!(f, "mapping failed: {m}"),
            Pi2Error::NoExpressiveInterface => {
                write!(f, "no candidate interface expresses every query in the log")
            }
            Pi2Error::WorkerPanic(m) => write!(f, "search failed: {m}"),
        }
    }
}

impl std::error::Error for Pi2Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Pi2Error::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pi2_sql::ParseError> for Pi2Error {
    fn from(e: pi2_sql::ParseError) -> Self {
        Pi2Error::Parse(e)
    }
}

/// How much of the full generation pipeline produced the returned
/// interface. Ordered from best to worst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// The search ran to completion; the interface is the searched optimum.
    #[default]
    Full,
    /// The [`GenerationBudget`] expired mid-search; the interface is the
    /// best candidate found before expiry (still searched, still costed).
    Anytime,
    /// Search failed or produced nothing expressive; the interface is the
    /// deterministic no-search baseline (one static chart per query).
    Fallback,
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationLevel::Full => write!(f, "full"),
            DegradationLevel::Anytime => write!(f, "anytime"),
            DegradationLevel::Fallback => write!(f, "fallback"),
        }
    }
}

/// Statistics from one generation run.
#[derive(Debug, Clone, Default)]
pub struct GenerationStats {
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Candidates enumerated for the final (winning) forest.
    pub candidates_considered: usize,
    /// Search-layer statistics (iterations, workers, reward cache), when a
    /// search strategy ran.
    pub search: Option<SearchStats>,
    /// Per-phase timings and counters for this run: `phase.parse`,
    /// `phase.search`, `phase.map`, `phase.cost`, plus `memo.hits` /
    /// `memo.misses` for the cross-run cost memo.
    pub telemetry: Snapshot,
    /// Cost-memo lookups this run answered from cache (includes entries
    /// memoized by *earlier* runs of the same [`Pi2`]).
    pub memo_hits: u64,
    /// Cost-memo lookups this run that had to map and cost.
    pub memo_misses: u64,
    /// Total entries in the shared memo after this run.
    pub memo_entries: usize,
    /// How much of the pipeline produced this interface (see
    /// [`DegradationLevel`]).
    pub degradation: DegradationLevel,
    /// Why the run degraded, when `degradation` is not `Full`.
    pub degradation_reason: Option<String>,
    /// How the fleet generation cache participated, when a
    /// [`FleetHandle`] is attached (`None` without one).
    pub fleet: Option<FleetOutcome>,
}

impl GenerationStats {
    /// Fraction of cost-memo lookups served from cache this run, if any.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            None
        } else {
            Some(self.memo_hits as f64 / total as f64)
        }
    }

    /// Accumulated time of one pipeline phase (`"parse"`, `"search"`,
    /// `"map"`, `"cost"`), zero if the phase never ran.
    pub fn phase(&self, name: &str) -> Duration {
        self.telemetry.timer_total(&format!("phase.{name}"))
    }

    /// Flat JSON object with every counter and timer of the run plus
    /// `elapsed_ms`, compatible with the bench harness's `BENCH_*.json`
    /// schema.
    pub fn to_json(&self) -> String {
        let inner = self.telemetry.to_json();
        let mut out = String::from(inner.trim_end_matches('}'));
        if out.len() > 1 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"elapsed_ms\":{:.3},\"candidates_considered\":{}}}",
            self.elapsed.as_secs_f64() * 1e3,
            self.candidates_considered
        ));
        out
    }
}

/// The result of a generation: the chosen interface, the DiffTree forest
/// behind it, the cost breakdown, and a snapshot of the input queries
/// (the paper: "we take a snapshot of the queries used to generate a new
/// interface ... to adapt to edits and ensure reproducibility").
#[derive(Debug, Clone)]
pub struct GeneratedInterface {
    /// The input query log.
    pub queries: Vec<Query>,
    /// The DiffTree forest behind the interface.
    pub forest: DiffForest,
    /// The produced interface.
    pub interface: Interface,
    /// Cost breakdown of the chosen interface.
    pub cost: CostBreakdown,
    /// Generation statistics.
    pub stats: GenerationStats,
}

impl GeneratedInterface {
    /// Open an interactive session over this interface. Equivalent to
    /// [`Pi2::session`] but usable without keeping the generator around.
    pub fn session(&self, catalog: &Catalog) -> crate::session::InterfaceSession {
        crate::session::SessionBuilder::new(
            catalog.clone(),
            self.forest.clone(),
            self.interface.clone(),
        )
        .queries(&self.queries)
        .build()
    }
}

/// Builder for [`Pi2`].
pub struct Pi2Builder {
    catalog: Catalog,
    screen: ScreenSpec,
    weights: CostWeights,
    strategy: SearchStrategy,
    budget: GenerationBudget,
    graceful: bool,
    fleet: Option<FleetHandle>,
}

impl Pi2Builder {
    /// The screen available to the generated interface (paper: "PI2 takes
    /// the available screen size into account").
    pub fn screen(mut self, screen: ScreenSpec) -> Self {
        self.screen = screen;
        self
    }

    /// Override cost weights.
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Override the search strategy.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Resource budget for each `generate` call. Limits set here override
    /// the corresponding limits of the strategy's own [`MctsConfig`]
    /// budget. On expiry the search stops and the best-so-far interface is
    /// returned with [`DegradationLevel::Anytime`].
    pub fn budget(mut self, budget: GenerationBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Convenience: set only a wall-clock deadline on the budget.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.budget.deadline = Some(deadline);
        self
    }

    /// Whether a failed search degrades to the deterministic no-search
    /// fallback interface (`true`, the default) or surfaces a structured
    /// error such as [`Pi2Error::WorkerPanic`] (`false`).
    pub fn graceful_degradation(mut self, enabled: bool) -> Self {
        self.graceful = enabled;
        self
    }

    /// Attach the process-wide [`FleetHandle`]: this generator serves
    /// repeated logs from the shared generation cache, joins in-flight
    /// generations of the same fingerprint instead of repeating them,
    /// respects the handle's admission cap, and uses the handle's shared
    /// [`CostMemo`] in place of a private one. This supersedes the
    /// deprecated per-`Pi2` memo wiring ([`Pi2::memo`]).
    pub fn fleet(mut self, handle: &FleetHandle) -> Self {
        self.fleet = Some(handle.clone());
        self
    }

    /// Build.
    pub fn build(self) -> Pi2 {
        let memo = match &self.fleet {
            Some(handle) => Arc::clone(handle.memo()),
            None => Arc::new(CostMemo::new()),
        };
        Pi2 {
            catalog: self.catalog,
            screen: self.screen,
            weights: self.weights,
            strategy: self.strategy,
            budget: self.budget,
            graceful: self.graceful,
            fleet: self.fleet,
            memo,
        }
    }
}

/// The PI2 interface generator.
///
/// Holds a [`CostMemo`] shared by every `generate` call, so regenerating
/// after a notebook edit reuses the map/cost work of all forests the
/// previous searches already visited (the paper's `regen_latency`
/// scenario).
pub struct Pi2 {
    catalog: Catalog,
    screen: ScreenSpec,
    weights: CostWeights,
    strategy: SearchStrategy,
    budget: GenerationBudget,
    graceful: bool,
    fleet: Option<FleetHandle>,
    memo: Arc<CostMemo>,
}

impl Pi2 {
    /// Start building a generator over `catalog`.
    pub fn builder(catalog: Catalog) -> Pi2Builder {
        Pi2Builder {
            catalog,
            screen: ScreenSpec::default(),
            weights: CostWeights::default(),
            strategy: SearchStrategy::default(),
            budget: GenerationBudget::default(),
            graceful: true,
            fleet: None,
        }
    }

    /// The catalog this generator executes against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The attached fleet handle, if any.
    pub fn fleet(&self) -> Option<&FleetHandle> {
        self.fleet.as_ref()
    }

    /// Generate an interface from SQL text.
    pub fn generate_sql(&self, sql: &[&str]) -> Result<GeneratedInterface, Pi2Error> {
        let telemetry = Arc::new(Registry::new());
        let queries: Vec<Query> = telemetry.time("phase.parse", || {
            sql.iter()
                .map(|s| pi2_sql::parse_query(s).map_err(Pi2Error::from))
                .collect::<Result<_, _>>()
        })?;
        self.generate_with(&queries, telemetry)
    }

    /// Generate an interface from a parsed query log.
    pub fn generate(&self, queries: &[Query]) -> Result<GeneratedInterface, Pi2Error> {
        self.generate_with(queries, Arc::new(Registry::new()))
    }

    /// The generator's budget layered over a strategy-level budget:
    /// builder-level limits win where set, the strategy's remain otherwise.
    fn merged_budget(&self, base: &GenerationBudget) -> GenerationBudget {
        GenerationBudget {
            deadline: self.budget.deadline.or(base.deadline),
            max_iterations: self.budget.max_iterations.or(base.max_iterations),
            max_states: self.budget.max_states.or(base.max_states),
        }
    }

    fn generate_with(
        &self,
        queries: &[Query],
        telemetry: Arc<Registry>,
    ) -> Result<GeneratedInterface, Pi2Error> {
        if queries.is_empty() {
            return Err(Pi2Error::EmptyLog);
        }
        match self.fleet.clone() {
            Some(handle) => self.generate_fleet(&handle, queries, telemetry),
            None => self.generate_cold(queries, telemetry, None),
        }
    }

    /// The context half of the fleet cache key: everything besides the
    /// query log that determines the generation outcome. Catalog identity
    /// and execution limits are included because binding domains and
    /// costing consult the data.
    fn fleet_context(&self) -> u64 {
        let strategy_fp = match &self.strategy {
            SearchStrategy::Mcts(cfg) => {
                let mut cfg = cfg.clone();
                cfg.budget = self.merged_budget(&cfg.budget);
                combine_fingerprints(&[1, cfg.fingerprint()])
            }
            SearchStrategy::Greedy { max_evaluations } => combine_fingerprints(&[
                2,
                *max_evaluations as u64,
                self.merged_budget(&GenerationBudget::default()).fingerprint(),
            ]),
            SearchStrategy::FullMerge => combine_fingerprints(&[3]),
        };
        let limits = self.catalog.limits();
        combine_fingerprints(&[
            self.catalog.version(),
            weights_fingerprint(&self.weights),
            self.screen.width as u64,
            self.screen.height as u64,
            strategy_fp,
            u64::from(self.graceful),
            limits.max_rows.map_or(0, |n| n as u64 + 1),
            // `+ 1` disambiguates a zero timeout from no timeout, exactly
            // as for `max_rows` above.
            limits.timeout.map_or(0, |t| (t.as_nanos() as u64).saturating_add(1)),
        ])
    }

    /// Generate through the fleet: a cache serve (verbatim hit or a
    /// literal-variant rebind), a single-flight join, or a led cold
    /// generation (admitted or shed) that publishes its result.
    fn generate_fleet(
        &self,
        handle: &FleetHandle,
        queries: &[Query],
        telemetry: Arc<Registry>,
    ) -> Result<GeneratedInterface, Pi2Error> {
        let start = Instant::now();
        let key = (self.fleet_context(), fleet::log_fingerprint(queries));
        if let Some(cached) = handle.lookup(key) {
            return self.serve_shared(
                handle,
                &cached,
                DegradationLevel::Full,
                None,
                FleetOutcome::Hit,
                queries,
                start,
                telemetry,
            );
        }
        match handle.begin(key) {
            Role::Cached(cached) => self.serve_shared(
                handle,
                &cached,
                DegradationLevel::Full,
                None,
                FleetOutcome::Hit,
                queries,
                start,
                telemetry,
            ),
            Role::Follow(flight) => match handle.join(&flight) {
                Some(Ok(outcome)) => self.serve_shared(
                    handle,
                    &outcome.generation,
                    outcome.degradation,
                    outcome.degradation_reason,
                    FleetOutcome::Join,
                    queries,
                    start,
                    telemetry,
                ),
                // The leader failed; take the normal degradation path
                // (fallback interface in graceful mode, the error itself
                // otherwise), recording that this call did consume the
                // flight's result.
                Some(Err(err)) => {
                    let mut result = self.degrade(queries, start, telemetry, None, err);
                    if let Ok(g) = &mut result {
                        g.stats.fleet = Some(FleetOutcome::Join);
                    }
                    result
                }
                // The leader outlived our patience (counted as a join
                // timeout, not a join); generate privately without
                // publishing (the leader keeps the lease).
                None => {
                    telemetry.add("fleet.join_timeout", 1);
                    let mut result = self.generate_cold(queries, telemetry, None);
                    if let Ok(g) = &mut result {
                        g.stats.fleet = Some(FleetOutcome::JoinTimeout);
                    }
                    result
                }
            },
            Role::Lead(lease) => {
                let permit = handle.admit();
                let shed = permit.is_none();
                telemetry.add(if shed { "fleet.shed" } else { "fleet.miss" }, 1);
                let overflow = shed.then(|| handle.config().overflow_budget.clone());
                let mut result =
                    self.generate_cold(queries, Arc::clone(&telemetry), overflow.as_ref());
                drop(permit);
                if shed {
                    if let Ok(g) = &mut result {
                        // A fallback stays a fallback; anything better is
                        // truthfully at most Anytime once shed, and the
                        // reason records the admission decision.
                        if g.stats.degradation <= DegradationLevel::Anytime {
                            g.stats.degradation = DegradationLevel::Anytime;
                            g.stats.degradation_reason =
                                Some(match g.stats.degradation_reason.take() {
                                    Some(prior) => format!(
                                        "admission control shed this cold generation \
                                         (overflow budget applied); {prior}"
                                    ),
                                    None => "admission control shed this cold generation; it \
                                             ran immediately under the overflow budget"
                                        .to_string(),
                                });
                        }
                    }
                }
                let flight_result = match &result {
                    Ok(g) => Ok(FlightOutcome {
                        generation: Arc::new(CachedGeneration {
                            queries: g.queries.clone(),
                            forest: g.forest.clone(),
                            interface: g.interface.clone(),
                            cost: g.cost.clone(),
                            candidates_considered: g.stats.candidates_considered,
                        }),
                        degradation: g.stats.degradation,
                        degradation_reason: g.stats.degradation_reason.clone(),
                    }),
                    Err(e) => Err(e.clone()),
                };
                lease.publish(&flight_result);
                if let Ok(g) = &mut result {
                    g.stats.fleet =
                        Some(if shed { FleetOutcome::Shed } else { FleetOutcome::Miss });
                }
                result
            }
        }
    }

    /// Serve a cached (or just-published) generation to this caller:
    /// verbatim when the caller's log is exactly the cached snapshot,
    /// respecialized onto the caller's own literals otherwise, and by a
    /// private cold generation when respecialization cannot express the
    /// caller's log. Generated artifacts depend on literal values (hole
    /// defaults, un-widened discrete domains), so the leader's artifacts
    /// are never handed to a caller with a different log — that would
    /// both break expressiveness on the caller's queries and leak another
    /// session's literals.
    #[allow(clippy::too_many_arguments)]
    fn serve_shared(
        &self,
        handle: &FleetHandle,
        cached: &Arc<CachedGeneration>,
        degradation: DegradationLevel,
        degradation_reason: Option<String>,
        verbatim: FleetOutcome,
        queries: &[Query],
        start: Instant,
        telemetry: Arc<Registry>,
    ) -> Result<GeneratedInterface, Pi2Error> {
        if queries == cached.queries.as_slice() {
            match verbatim {
                FleetOutcome::Hit => {
                    handle.note_hit();
                    telemetry.add("fleet.hit", 1);
                }
                // A join was already counted when the flight yielded.
                _ => telemetry.add("fleet.join", 1),
            }
            return Ok(self.serve_cached(
                cached,
                degradation,
                degradation_reason,
                verbatim,
                start,
                &telemetry,
            ));
        }
        if let Some(g) =
            self.respecialize(cached, queries, &telemetry, start, degradation, degradation_reason)
        {
            handle.note_rebind();
            telemetry.add("fleet.rebind", 1);
            return Ok(g);
        }
        // Same fingerprint, but the cached design cannot be replayed over
        // this log (a fingerprint collision, or the respecialized forest
        // is inexpressive): run the full pipeline privately.
        handle.note_miss();
        telemetry.add("fleet.miss", 1);
        let mut result = self.generate_cold(queries, telemetry, None);
        if let Ok(g) = &mut result {
            g.stats.fleet = Some(FleetOutcome::Miss);
        }
        result
    }

    /// Replay a cached generation's *partition* — the expensive search
    /// decision — over the caller's own queries: remap each cached tree's
    /// source set through a literal-free structural matching, re-merge,
    /// re-canonicalize, and re-map/cost through the shared memo. Every
    /// served artifact (query snapshot, forest, binding domains and
    /// defaults, cost) derives from the caller's literals; nothing of the
    /// leader's log leaks through. `None` when the replay cannot express
    /// the caller's log.
    fn respecialize(
        &self,
        cached: &CachedGeneration,
        queries: &[Query],
        telemetry: &Arc<Registry>,
        start: Instant,
        degradation: DegradationLevel,
        degradation_reason: Option<String>,
    ) -> Option<GeneratedInterface> {
        // Match caller queries to snapshot queries by literal-free
        // structural hash. Equal log fingerprints mean the two multisets
        // of hashes agree, so a perfect matching exists unless the
        // fingerprints collided — which surfaces here as an unmatched
        // query and falls through to a cold generation.
        let mut by_structure: HashMap<u64, VecDeque<usize>> = HashMap::new();
        for (j, q) in cached.queries.iter().enumerate() {
            let hash = pi2_sql::literal_free(q).structural_hash();
            by_structure.entry(hash).or_default().push_back(j);
        }
        let mut caller_for_leader = vec![usize::MAX; cached.queries.len()];
        for (i, q) in queries.iter().enumerate() {
            let hash = pi2_sql::literal_free(q).structural_hash();
            let j = by_structure.get_mut(&hash)?.pop_front()?;
            caller_for_leader[j] = i;
        }
        if by_structure.values().any(|bucket| !bucket.is_empty()) {
            return None;
        }

        // Replay the partition: each cached tree's source set, remapped
        // to caller indices, merged over the caller's own queries in log
        // order (the same fold a cold run of this partition would do).
        let mut trees = Vec::with_capacity(cached.forest.trees.len());
        for tree in &cached.forest.trees {
            let mut sources = Vec::with_capacity(tree.source_queries.len());
            for &j in &tree.source_queries {
                let i = *caller_for_leader.get(j)?;
                if i == usize::MAX {
                    return None;
                }
                sources.push(i);
            }
            if sources.is_empty() {
                return None;
            }
            sources.sort_unstable();
            let indexed: Vec<(usize, &Query)> = sources.iter().map(|&i| (i, &queries[i])).collect();
            trees.push(merge_queries(&indexed));
        }

        let mapper_cfg = MapperConfig { screen: self.screen, enumerate_variants: true };
        let search = InterfaceSearch::with_memo(
            queries,
            &self.catalog,
            mapper_cfg,
            self.weights.clone(),
            Arc::clone(&self.memo),
            Arc::clone(telemetry),
        );
        let (hits_before, misses_before) = (self.memo.hits(), self.memo.misses());
        let forest = search.canonicalized(DiffForest { trees });
        if !forest.expresses_all(queries) {
            return None;
        }
        let choice = match search.best_choice(&forest) {
            Some(c) if c.breakdown.expressive => c,
            _ => return None,
        };
        let memo_hits = self.memo.hits() - hits_before;
        let memo_misses = self.memo.misses() - misses_before;
        telemetry.add("memo.hits", memo_hits);
        telemetry.add("memo.misses", memo_misses);
        Some(GeneratedInterface {
            queries: queries.to_vec(),
            forest,
            interface: choice.interface.clone(),
            cost: choice.breakdown.clone(),
            stats: GenerationStats {
                elapsed: start.elapsed(),
                candidates_considered: choice.candidates_considered,
                search: None,
                telemetry: telemetry.snapshot(),
                memo_hits,
                memo_misses,
                memo_entries: self.memo.len(),
                degradation,
                degradation_reason,
                fleet: Some(FleetOutcome::Rebind),
            },
        })
    }

    /// Assemble a [`GeneratedInterface`] from a cached (or just-published)
    /// generation: the artifacts are the leader's, bit for bit. Only
    /// reached when the caller's log equals the cached snapshot exactly
    /// (see [`Pi2::serve_shared`]).
    fn serve_cached(
        &self,
        cached: &Arc<CachedGeneration>,
        degradation: DegradationLevel,
        degradation_reason: Option<String>,
        outcome: FleetOutcome,
        start: Instant,
        telemetry: &Registry,
    ) -> GeneratedInterface {
        GeneratedInterface {
            queries: cached.queries.clone(),
            forest: cached.forest.clone(),
            interface: cached.interface.clone(),
            cost: cached.cost.clone(),
            stats: GenerationStats {
                elapsed: start.elapsed(),
                candidates_considered: cached.candidates_considered,
                search: None,
                telemetry: telemetry.snapshot(),
                memo_hits: 0,
                memo_misses: 0,
                memo_entries: self.memo.len(),
                degradation,
                degradation_reason,
                fleet: Some(outcome),
            },
        }
    }

    fn generate_cold(
        &self,
        queries: &[Query],
        telemetry: Arc<Registry>,
        overflow: Option<&GenerationBudget>,
    ) -> Result<GeneratedInterface, Pi2Error> {
        let start = Instant::now();
        let mapper_cfg = MapperConfig { screen: self.screen, enumerate_variants: true };
        let search = InterfaceSearch::with_memo(
            queries,
            &self.catalog,
            mapper_cfg.clone(),
            self.weights.clone(),
            Arc::clone(&self.memo),
            Arc::clone(&telemetry),
        );
        let (hits_before, misses_before) = (self.memo.hits(), self.memo.misses());

        // Injected fault: the deadline "expires" the moment search starts.
        #[cfg(feature = "faults")]
        let forced_deadline = pi2_faults::deadline_at("search");
        #[cfg(not(feature = "faults"))]
        let forced_deadline = false;

        let outcome: Result<(DiffForest, Option<SearchStats>), Pi2Error> =
            telemetry.time("phase.search", || match &self.strategy {
                SearchStrategy::Mcts(cfg) => {
                    let mut cfg = cfg.clone();
                    cfg.budget = self.merged_budget(&cfg.budget);
                    if let Some(o) = overflow {
                        cfg.budget = tightened(&cfg.budget, o);
                    }
                    if forced_deadline {
                        cfg.budget.deadline = Some(Duration::ZERO);
                    }
                    // mcts_parallel already isolates per-worker panics;
                    // the error here means *no* worker survived.
                    mcts_parallel(&search, &cfg)
                        .map(|(f, s)| (f, Some(s)))
                        .map_err(|e| Pi2Error::WorkerPanic(e.to_string()))
                }
                SearchStrategy::Greedy { max_evaluations } => {
                    let mut budget = self.merged_budget(&GenerationBudget::default());
                    if let Some(o) = overflow {
                        budget = tightened(&budget, o);
                    }
                    if forced_deadline {
                        budget.deadline = Some(Duration::ZERO);
                    }
                    catch_unwind(AssertUnwindSafe(|| {
                        greedy_with_budget(&search, *max_evaluations, &budget)
                    }))
                    .map(|(f, s)| (f, Some(s)))
                    .map_err(|p| Pi2Error::WorkerPanic(panic_text(p)))
                }
                SearchStrategy::FullMerge => catch_unwind(AssertUnwindSafe(|| {
                    search.canonicalized(DiffForest::fully_merged(queries))
                }))
                .map(|f| (f, None))
                .map_err(|p| Pi2Error::WorkerPanic(panic_text(p))),
            });
        // Search states are normalized (trees sorted by earliest source
        // query) inside InterfaceSearch, so the forest is already in stable
        // display order: G1 is the earliest selected cell.

        let (forest, search_stats) = match outcome {
            Ok(pair) => pair,
            Err(err) => return self.degrade(queries, start, telemetry, None, err),
        };

        // Injected fault: the deadline expires as mapping begins.
        #[cfg(feature = "faults")]
        if pi2_faults::deadline_at("map") {
            let err = Pi2Error::Map("deadline expired during interface mapping".into());
            return self.degrade(queries, start, telemetry, search_stats, err);
        }

        let choice = match search.best_choice(&forest) {
            Some(c) if c.breakdown.expressive => c,
            other => {
                let err = if other.is_some() {
                    Pi2Error::NoExpressiveInterface
                } else {
                    // Distinguish "mapping failed" from "nothing
                    // expressive": re-run the mapper on this one forest
                    // for the error detail.
                    match map_forest(&forest, &self.catalog, queries, &mapper_cfg) {
                        Err(e) => Pi2Error::Map(e.to_string()),
                        Ok(_) => Pi2Error::NoExpressiveInterface,
                    }
                };
                return self.degrade(queries, start, telemetry, search_stats, err);
            }
        };

        let memo_hits = self.memo.hits() - hits_before;
        let memo_misses = self.memo.misses() - misses_before;
        telemetry.add("memo.hits", memo_hits);
        telemetry.add("memo.misses", memo_misses);
        if let Some(s) = &search_stats {
            telemetry.add("search.iterations", s.iterations as u64);
            telemetry.add("search.expansions", s.expansions as u64);
            telemetry.add("search.reward_cache.hits", s.cache_hits);
            telemetry.add("search.reward_cache.misses", s.cache_misses);
            telemetry.add("search.workers", s.workers.len() as u64);
            telemetry.add("search.worker_panics", s.worker_panics as u64);
        }

        let (degradation, degradation_reason) =
            if search_stats.as_ref().is_some_and(|s| s.budget_exhausted) {
                (
                    DegradationLevel::Anytime,
                    Some("generation budget exhausted; best-so-far interface".to_string()),
                )
            } else {
                (DegradationLevel::Full, None)
            };

        Ok(GeneratedInterface {
            queries: queries.to_vec(),
            forest,
            interface: choice.interface.clone(),
            cost: choice.breakdown.clone(),
            stats: GenerationStats {
                elapsed: start.elapsed(),
                candidates_considered: choice.candidates_considered,
                search: search_stats,
                telemetry: telemetry.snapshot(),
                memo_hits,
                memo_misses,
                memo_entries: self.memo.len(),
                degradation,
                degradation_reason,
                fleet: None,
            },
        })
    }

    /// Either fall back to the deterministic baseline interface (graceful
    /// mode, the default) or surface the error that stopped the pipeline.
    fn degrade(
        &self,
        queries: &[Query],
        start: Instant,
        telemetry: Arc<Registry>,
        search_stats: Option<SearchStats>,
        err: Pi2Error,
    ) -> Result<GeneratedInterface, Pi2Error> {
        if !self.graceful {
            return Err(err);
        }
        let (forest, interface, cost) = telemetry.time("phase.fallback", || {
            crate::fallback::fallback_interface(queries, &self.catalog, self.screen, &self.weights)
        });
        telemetry.add("degraded.fallback", 1);
        Ok(GeneratedInterface {
            queries: queries.to_vec(),
            forest,
            interface,
            cost,
            stats: GenerationStats {
                elapsed: start.elapsed(),
                candidates_considered: 1,
                search: search_stats,
                telemetry: telemetry.snapshot(),
                memo_hits: 0,
                memo_misses: 0,
                memo_entries: self.memo.len(),
                degradation: DegradationLevel::Fallback,
                degradation_reason: Some(err.to_string()),
                fleet: None,
            },
        })
    }

    /// Open an interactive session over a generated interface.
    pub fn session(&self, generated: &GeneratedInterface) -> crate::session::InterfaceSession {
        generated.session(&self.catalog)
    }
}

/// Layer two budgets, keeping the tighter limit on each axis. Used to
/// clamp the fleet's overflow budget onto shed generations.
fn tightened(base: &GenerationBudget, clamp: &GenerationBudget) -> GenerationBudget {
    fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        }
    }
    GenerationBudget {
        deadline: tighter(base.deadline, clamp.deadline),
        max_iterations: tighter(base.max_iterations, clamp.max_iterations),
        max_states: tighter(base.max_states, clamp.max_states),
    }
}

/// Best-effort text of a caught panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;

    #[test]
    fn generates_for_single_query() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        let g = pi2.generate_sql(&["SELECT a, count(*) FROM t GROUP BY a"]).unwrap();
        assert_eq!(g.interface.charts.len(), 1);
        assert!(g.cost.expressive);
        assert!(g.stats.elapsed.as_secs() < 60);
    }

    #[test]
    fn empty_log_is_error() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        assert!(matches!(pi2.generate(&[]), Err(Pi2Error::EmptyLog)));
    }

    #[test]
    fn parse_error_is_reported() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        let err = pi2.generate_sql(&["NOT SQL AT ALL"]).unwrap_err();
        assert!(matches!(err, Pi2Error::Parse(_)));
        // The structured source carries the position.
        let source = std::error::Error::source(&err).expect("source chain");
        assert!(source.to_string().contains("line 1"));
    }

    #[test]
    fn full_merge_strategy_handles_fig3() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        assert_eq!(g.forest.trees.len(), 1);
        // The literal variation becomes an interactive control (widget or
        // chart interaction).
        let controls = g.interface.widgets.len() + g.interface.interaction_count();
        assert!(controls >= 1);
        // The snapshot preserves the input queries.
        assert_eq!(g.queries.len(), 2);
    }

    #[test]
    fn mcts_strategy_generates_expressive_interface() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 30,
                rollout_depth: 2,
                seed: 5,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert!(g.cost.expressive);
        assert!(g.forest.expresses_all(&queries));
        assert!(g.stats.search.is_some());
    }

    #[test]
    fn stats_report_phases_and_memo() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 20,
                seed: 7,
                workers: 2,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert!(g.stats.phase("search") > Duration::ZERO);
        assert!(g.stats.phase("map") > Duration::ZERO);
        assert!(g.stats.phase("cost") > Duration::ZERO);
        assert!(g.stats.memo_misses > 0);
        assert!(g.stats.memo_entries > 0);
        let json = g.stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"phase_search_ms\""));
        assert!(json.contains("\"elapsed_ms\""));
    }

    #[test]
    fn zero_iteration_budget_returns_anytime_interface() {
        // No search at all: the pipeline must still produce a valid,
        // expressive interface from the initial (singleton) state and be
        // truthful that the budget cut the search short.
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .budget(GenerationBudget { max_iterations: Some(0), ..Default::default() })
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert_eq!(g.stats.degradation, DegradationLevel::Anytime);
        assert!(g.stats.degradation_reason.is_some());
        assert!(g.forest.expresses_all(&queries));
        assert!(g.cost.expressive);
    }

    #[test]
    fn expired_deadline_degrades_to_anytime_not_error() {
        let pi2 =
            Pi2::builder(pi2_datasets::toy::default_catalog()).deadline(Duration::ZERO).build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert_eq!(g.stats.degradation, DegradationLevel::Anytime);
        assert!(g.stats.search.as_ref().unwrap().budget_exhausted);
        assert!(g.forest.expresses_all(&queries));
        assert!(g.cost.expressive);
    }

    #[test]
    fn unbudgeted_run_reports_full_degradation() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).build();
        let g = pi2.generate_sql(&["SELECT a, count(*) FROM t GROUP BY a"]).unwrap();
        assert_eq!(g.stats.degradation, DegradationLevel::Full);
        assert!(g.stats.degradation_reason.is_none());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn sole_worker_panic_degrades_to_fallback() {
        let _fault = pi2_faults::inject(pi2_faults::Fault::WorkerPanic { worker: 0 });
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 10,
                workers: 1,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert_eq!(g.stats.degradation, DegradationLevel::Fallback);
        assert!(g.stats.degradation_reason.is_some());
        assert!(g.forest.expresses_all(&queries));
        assert_eq!(g.interface.charts.len(), queries.len());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn graceful_off_surfaces_worker_panic() {
        let _fault = pi2_faults::inject(pi2_faults::Fault::WorkerPanic { worker: 0 });
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 10,
                workers: 1,
                ..Default::default()
            }))
            .graceful_degradation(false)
            .build();
        let err = pi2.generate(&pi2_datasets::toy::fig2_queries()).unwrap_err();
        assert!(matches!(err, Pi2Error::WorkerPanic(_)), "got {err}");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn surviving_workers_mask_a_panicked_one() {
        let _fault = pi2_faults::inject(pi2_faults::Fault::WorkerPanic { worker: 1 });
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 15,
                workers: 2,
                seed: 5,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert_eq!(g.stats.degradation, DegradationLevel::Full);
        let s = g.stats.search.unwrap();
        assert_eq!(s.worker_panics, 1);
        assert!(s.workers.iter().any(|w| w.panicked));
        assert!(g.cost.expressive);
    }

    #[test]
    fn fleet_cache_hit_is_bit_identical_to_the_cold_generation() {
        let fleet = FleetHandle::new(FleetConfig::new());
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let cold = Pi2::builder(catalog.clone()).fleet(&fleet).build().generate(&queries).unwrap();
        assert_eq!(cold.stats.fleet, Some(FleetOutcome::Miss));
        assert_eq!(cold.stats.degradation, DegradationLevel::Full);
        // A different generator instance (another "session") hits.
        let warm = Pi2::builder(catalog).fleet(&fleet).build().generate(&queries).unwrap();
        assert_eq!(warm.stats.fleet, Some(FleetOutcome::Hit));
        assert_eq!(warm.interface, cold.interface);
        assert_eq!(warm.forest, cold.forest);
        assert_eq!(warm.cost, cold.cost);
        assert_eq!(warm.queries, cold.queries);
        let c = fleet.counters();
        assert_eq!((c.hits, c.misses, c.entries), (1, 1, 1), "{c:?}");
    }

    #[test]
    fn literal_variants_share_a_fleet_entry_but_structures_do_not() {
        let fleet = FleetHandle::new(FleetConfig::new());
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .fleet(&fleet)
            .build();
        let first = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        // Only the literals differ: same fingerprint, same cache entry —
        // but the serve is respecialized onto the caller's own queries
        // (note the literals 5 and 7 even sit outside the catalog's
        // observed range for `a`, so the leader's binding domain could
        // not have expressed them).
        let variant_sql = [
            "SELECT p, count(*) FROM t WHERE a = 5 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE a = 7 GROUP BY p",
        ];
        let variant = pi2.generate_sql(&variant_sql).unwrap();
        assert_eq!(variant.stats.fleet, Some(FleetOutcome::Rebind));
        assert_ne!(variant.queries, first.queries, "leader's query snapshot leaked");
        assert_eq!(variant.queries.len(), 2);
        assert!(variant.forest.expresses_all(&variant.queries));
        assert!(variant.cost.expressive);
        // A structural difference misses.
        let other =
            pi2.generate_sql(&["SELECT b, count(*) FROM t WHERE a = 1 GROUP BY b"]).unwrap();
        assert_eq!(other.stats.fleet, Some(FleetOutcome::Miss));
        let c = fleet.counters();
        assert_eq!((c.misses, c.rebinds, c.entries), (2, 1, 2), "{c:?}");
    }

    #[test]
    fn rebound_serve_matches_a_cold_generation_of_the_variant() {
        let fleet = FleetHandle::new(FleetConfig::new());
        let catalog = pi2_datasets::toy::default_catalog();
        let warm_pi2 =
            Pi2::builder(catalog.clone()).strategy(SearchStrategy::FullMerge).fleet(&fleet).build();
        warm_pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        // Different literals: same fingerprint, rebound serve.
        let variant_sql = [
            "SELECT p, count(*) FROM t WHERE a = 3 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE a = 0 GROUP BY p",
        ];
        let warm = warm_pi2.generate_sql(&variant_sql).unwrap();
        assert_eq!(warm.stats.fleet, Some(FleetOutcome::Rebind));
        // FullMerge is deterministic, so the respecialized serve must be
        // bit-identical to what a fleet-less generator produces for the
        // variant: the cache is transparent, not just sound.
        let cold = Pi2::builder(catalog)
            .strategy(SearchStrategy::FullMerge)
            .build()
            .generate_sql(&variant_sql)
            .unwrap();
        assert_eq!(warm.interface, cold.interface);
        assert_eq!(warm.forest, cold.forest);
        assert_eq!(warm.queries, cold.queries);
        assert_eq!(warm.cost, cold.cost);
    }

    #[test]
    fn rebind_respects_the_callers_duplicate_literals() {
        // The cached entry was built from two distinct literals (the diff
        // becomes a widget over {1, 2}); the caller repeats ONE literal,
        // and its own cold generation dedups the hole away entirely. The
        // rebound serve must match that — not the leader's two-valued
        // widget.
        let fleet = FleetHandle::new(FleetConfig::new());
        let catalog = pi2_datasets::toy::default_catalog();
        let pi2 =
            Pi2::builder(catalog.clone()).strategy(SearchStrategy::FullMerge).fleet(&fleet).build();
        pi2.generate_sql(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        ])
        .unwrap();
        let twice = [
            "SELECT p, count(*) FROM t WHERE a = 3 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE a = 3 GROUP BY p",
        ];
        let warm = pi2.generate_sql(&twice).unwrap();
        assert_eq!(warm.stats.fleet, Some(FleetOutcome::Rebind));
        let cold = Pi2::builder(catalog)
            .strategy(SearchStrategy::FullMerge)
            .build()
            .generate_sql(&twice)
            .unwrap();
        assert_eq!(warm.interface, cold.interface);
        assert_eq!(warm.forest, cold.forest);
    }

    #[test]
    fn follower_timeout_generates_privately_and_reports_join_timeout() {
        use crate::fleet::Role;
        let handle = FleetHandle::new(FleetConfig::new().follower_wait(Some(Duration::ZERO)));
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).fleet(&handle).build();
        let queries = pi2_datasets::toy::fig2_queries();
        // Occupy the flight for this log's key, simulating a stuck leader.
        let key = (pi2.fleet_context(), fleet::log_fingerprint(&queries));
        let Role::Lead(lease) = handle.begin(key) else { panic!("expected leadership") };
        // A zero-patience follower gives up immediately, generates
        // privately, and is truthful about how the fleet participated:
        // a timed-out join, not a join and not a plain private run.
        let g = pi2.generate(&queries).unwrap();
        assert_eq!(g.stats.fleet, Some(FleetOutcome::JoinTimeout));
        assert!(g.cost.expressive);
        let c = handle.counters();
        // The one miss is the stuck leader's; the timed-out follower is
        // counted as a join timeout, never as a join.
        assert_eq!((c.joins, c.join_timeouts, c.misses), (0, 1, 1), "{c:?}");
        drop(lease);
    }

    #[test]
    fn shed_generation_reports_anytime_and_is_never_cached() {
        // Cap 0: admission control sheds every cold generation. It still
        // runs immediately (no queueing) under the overflow budget and is
        // truthfully labeled Anytime, and the degraded result must not be
        // pinned in the cache.
        let fleet = FleetHandle::new(FleetConfig::new().max_concurrent_cold(0));
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog()).fleet(&fleet).build();
        let queries = pi2_datasets::toy::fig2_queries();
        let g = pi2.generate(&queries).unwrap();
        assert_eq!(g.stats.fleet, Some(FleetOutcome::Shed));
        assert_eq!(g.stats.degradation, DegradationLevel::Anytime);
        assert!(g.stats.degradation_reason.as_ref().unwrap().contains("admission"));
        assert!(g.forest.expresses_all(&queries));
        assert!(fleet.is_empty(), "shed results must not be cached");
        let again = pi2.generate(&queries).unwrap();
        assert_eq!(again.stats.fleet, Some(FleetOutcome::Shed));
        assert_eq!(fleet.counters().sheds, 2);
    }

    #[test]
    fn concurrent_generations_of_one_fingerprint_run_one_search() {
        let fleet = FleetHandle::new(FleetConfig::new());
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let pi2 = Pi2::builder(catalog.clone()).fleet(&fleet).build();
                    let g = pi2.generate(&queries).unwrap();
                    assert!(g.cost.expressive);
                });
            }
        });
        let c = fleet.counters();
        assert_eq!(c.misses, 1, "exactly one cold generation must run: {c:?}");
        assert_eq!(c.hits + c.joins, 7, "{c:?}");
        assert_eq!(c.sheds, 0, "{c:?}");
    }

    #[test]
    fn repeated_generation_hits_the_cross_run_memo() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 25,
                seed: 3,
                ..Default::default()
            }))
            .build();
        let queries = pi2_datasets::toy::fig2_queries();
        let first = pi2.generate(&queries).unwrap();
        let second = pi2.generate(&queries).unwrap();
        // Same log, same config: the second run re-visits the same forests
        // and must answer (nearly) every lookup from the shared memo.
        assert!(second.stats.memo_hits > 0, "second run never hit the memo");
        assert!(second.stats.memo_misses <= first.stats.memo_misses);
        assert!(second.stats.cache_hit_rate().unwrap() > 0.9);
        // And produce the identical interface.
        assert_eq!(first.interface, second.interface);
    }
}
