//! Retained scene graph with damage-tracked deltas.
//!
//! The demo's interactive loop re-rendered a whole Vega-Lite-style spec on
//! every dispatch; once recomputation became sub-linear, full-spec
//! re-render dominated the wire. This module makes the *interface* the
//! incrementally maintained artifact (Precision Interfaces' framing): a
//! typed [`SceneGraph`] of axes, mark groups with per-channel encodings,
//! widgets, and layout frames is built once from a generated interface,
//! and a damage-tracking diff pass turns each batch of
//! [`ChartUpdate`](crate::session::ChartUpdate)s into a compact
//! [`SceneDelta`] — marks added/removed/re-encoded, data patches as Arc'd
//! column slices, and dirty-rect hints. Render backends (ASCII, spec JSON,
//! the interactive HTML client, future wgpu/WASM targets) are pure
//! consumers of snapshots and deltas.
//!
//! Invariant (checked by the `scene-parity` conformance oracle and the
//! server's delta property tests): for any event sequence, applying the
//! streamed deltas to a client-side copy of the snapshot reconstructs a
//! scene identical — bit for bit, through the JSON codec — to a cold
//! [`SceneGraph::build_from`] of the live session at every step.

use crate::session::{ChartUpdate, InterfaceSession, SessionError, WidgetState};
use pi2_engine::{ResultSet, Value};
use pi2_interface::{
    Channel, ChartId, Element, Encoding, FieldType, Interface, Layout, Mark, WidgetId,
};
use pi2_sql::Literal;
use serde_json::{json, Value as Json};
use std::collections::VecDeque;
use std::sync::Arc;

/// How many trailing [`SceneDelta`]s a [`SceneState`] retains for clients
/// catching up by version; older clients get a full-snapshot resync.
pub const SCENE_HISTORY_CAP: usize = 64;

// ---------------------------------------------------------------------------
// Node identity
// ---------------------------------------------------------------------------

/// Stable identifier of one node in a [`SceneGraph`].
///
/// Ids are deterministic functions of the interface structure (chart ids,
/// widget ids, layout position), so a cold rebuild and a delta-maintained
/// client copy agree on identity without negotiation.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SceneNodeId {
    /// Raw tagged id: the high byte is the node kind, the low bytes the
    /// per-kind index.
    pub raw: u32,
}

impl SceneNodeId {
    const CHART_TAG: u32 = 0x0100_0000;
    const WIDGET_TAG: u32 = 0x0200_0000;
    const FRAME_TAG: u32 = 0x0300_0000;

    /// Wrap a raw id (for codec use; prefer the typed constructors).
    pub fn from_raw(raw: u32) -> Self {
        SceneNodeId { raw }
    }

    /// The node id of a chart's mark group.
    pub fn chart(id: ChartId) -> Self {
        SceneNodeId { raw: Self::CHART_TAG | (id as u32 & 0x00ff_ffff) }
    }

    /// The node id of a widget.
    pub fn widget(id: WidgetId) -> Self {
        SceneNodeId { raw: Self::WIDGET_TAG | (id as u32 & 0x00ff_ffff) }
    }

    /// The node id of the `n`-th layout frame in pre-order.
    pub fn frame(n: usize) -> Self {
        SceneNodeId { raw: Self::FRAME_TAG | (n as u32 & 0x00ff_ffff) }
    }
}

/// A rectangle in abstract screen pixels (same space as
/// [`pi2_interface::ScreenSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width.
    pub w: u32,
    /// Height.
    pub h: u32,
}

// ---------------------------------------------------------------------------
// Scene nodes
// ---------------------------------------------------------------------------

/// One column of a chart's mark data. The values are behind an [`Arc`] so
/// retained scenes, delta payloads, and the session result cache share
/// storage instead of copying rows per frame.
#[derive(Debug, Clone)]
pub struct ColumnSlice {
    /// Result field name.
    pub field: String,
    /// Column values, one per mark.
    pub values: Arc<Vec<Value>>,
}

impl PartialEq for ColumnSlice {
    fn eq(&self, other: &Self) -> bool {
        self.field == other.field
            && (Arc::ptr_eq(&self.values, &other.values) || self.values == other.values)
    }
}

/// A positional axis derived from an encoding plus the current data.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisScene {
    /// The encoded channel (X or Y).
    pub channel: Channel,
    /// The bound result field.
    pub field: String,
    /// Visualization field type.
    pub field_type: FieldType,
    /// Numeric domain minimum (quantitative/temporal axes with data).
    pub min: Option<f64>,
    /// Numeric domain maximum.
    pub max: Option<f64>,
}

/// A chart's retained scene node: mark group, encodings, axes, columnar
/// data, and its layout frame.
#[derive(Debug, Clone)]
pub struct ChartScene {
    /// Scene node id.
    pub node: SceneNodeId,
    /// The interface chart this node renders.
    pub chart: ChartId,
    /// `G1`, `G2`, … display name.
    pub name: String,
    /// Display title.
    pub title: String,
    /// Mark type.
    pub mark: Mark,
    /// Per-channel encodings.
    pub encodings: Vec<Encoding>,
    /// Interaction kind names (`brush` / `pan-zoom` / `click`), for the
    /// client's hit-testing layer.
    pub interactions: Vec<String>,
    /// The SQL currently backing the chart.
    pub query: String,
    /// Positional axes with current domains.
    pub axes: Vec<AxisScene>,
    /// Columnar mark data.
    pub columns: Vec<ColumnSlice>,
    /// Mark (row) count.
    pub rows: usize,
    /// Layout frame, used as the dirty-rect hint when the chart changes.
    pub frame: Rect,
    /// The result set the columns were transposed from. Identity-only
    /// cache key for the incremental rebuild fast path; excluded from
    /// equality and from the JSON codec.
    pub source: Option<Arc<ResultSet>>,
}

impl PartialEq for ChartScene {
    fn eq(&self, other: &Self) -> bool {
        // `source` is deliberately ignored: a delta-maintained client copy
        // has no result sets, only columns.
        self.node == other.node
            && self.chart == other.chart
            && self.name == other.name
            && self.title == other.title
            && self.mark == other.mark
            && self.encodings == other.encodings
            && self.interactions == other.interactions
            && self.query == other.query
            && self.axes == other.axes
            && self.columns == other.columns
            && self.rows == other.rows
            && self.frame == other.frame
    }
}

/// A widget's retained scene node.
#[derive(Debug, Clone, PartialEq)]
pub struct WidgetScene {
    /// Scene node id.
    pub node: SceneNodeId,
    /// The interface widget this node renders.
    pub widget: WidgetId,
    /// Display label.
    pub label: String,
    /// Widget kind wire name (`radio`, `slider`, …).
    pub kind: String,
    /// Option labels, when the kind has a discrete domain.
    pub options: Vec<String>,
    /// Live display state.
    pub state: WidgetState,
    /// Layout frame.
    pub frame: Rect,
}

/// Layout frame flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Horizontal split.
    Horizontal,
    /// Vertical split.
    Vertical,
    /// Leaf holding a chart.
    Chart(ChartId),
    /// Leaf holding a widget.
    Widget(WidgetId),
}

/// One computed layout frame: a rectangle plus the scene nodes inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutFrame {
    /// Scene node id (pre-order position in the layout tree).
    pub node: SceneNodeId,
    /// Frame flavor.
    pub kind: FrameKind,
    /// Screen rectangle.
    pub rect: Rect,
    /// Child frame nodes (splits) or the contained element node (leaves).
    pub children: Vec<SceneNodeId>,
}

/// The retained scene: every typed node group plus the screen it was laid
/// out for. Versioning lives in [`SceneState`]; the graph itself is pure
/// content so a cold rebuild and a patched client copy compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneGraph {
    /// Screen size the layout was computed for.
    pub screen: (u32, u32),
    /// Chart mark groups.
    pub charts: Vec<ChartScene>,
    /// Widgets.
    pub widgets: Vec<WidgetScene>,
    /// Computed layout frames, pre-order.
    pub frames: Vec<LayoutFrame>,
}

// ---------------------------------------------------------------------------
// Building
// ---------------------------------------------------------------------------

fn transpose(result: &ResultSet) -> Vec<ColumnSlice> {
    result
        .schema
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| ColumnSlice {
            field: f.name.clone(),
            values: Arc::new(result.rows.iter().map(|r| r[i].clone()).collect()),
        })
        .collect()
}

fn axes_for(encodings: &[Encoding], columns: &[ColumnSlice]) -> Vec<AxisScene> {
    encodings
        .iter()
        .filter(|e| matches!(e.channel, Channel::X | Channel::Y))
        .map(|e| {
            let domain = match e.field_type {
                FieldType::Quantitative | FieldType::Temporal => columns
                    .iter()
                    .find(|c| c.field == e.field)
                    .map(|c| {
                        c.values.iter().filter_map(Value::as_f64).filter(|v| v.is_finite()).fold(
                            (None, None),
                            |(lo, hi): (Option<f64>, Option<f64>), v| {
                                (
                                    Some(lo.map_or(v, |l: f64| l.min(v))),
                                    Some(hi.map_or(v, |h: f64| h.max(v))),
                                )
                            },
                        )
                    })
                    .unwrap_or((None, None)),
                _ => (None, None),
            };
            AxisScene {
                channel: e.channel,
                field: e.field.clone(),
                field_type: e.field_type,
                min: domain.0,
                max: domain.1,
            }
        })
        .collect()
}

/// Recursive even-split layout: horizontal frames share width, vertical
/// frames share height; integer endpoints are computed as `i·extent/n` so
/// the pieces tile exactly.
fn layout_frames(
    layout: &Layout,
    rect: Rect,
    counter: &mut usize,
    out: &mut Vec<LayoutFrame>,
) -> SceneNodeId {
    let node = SceneNodeId::frame(*counter);
    *counter += 1;
    let slot = out.len();
    out.push(LayoutFrame { node, kind: FrameKind::Horizontal, rect, children: Vec::new() });
    let (kind, children) = match layout {
        Layout::Leaf(Element::Chart(id)) => (FrameKind::Chart(*id), vec![SceneNodeId::chart(*id)]),
        Layout::Leaf(Element::Widget(id)) => {
            (FrameKind::Widget(*id), vec![SceneNodeId::widget(*id)])
        }
        Layout::Horizontal(items) => {
            let n = items.len().max(1) as u64;
            let kids = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let x0 = rect.x + (i as u64 * rect.w as u64 / n) as u32;
                    let x1 = rect.x + ((i as u64 + 1) * rect.w as u64 / n) as u32;
                    let child = Rect { x: x0, y: rect.y, w: x1 - x0, h: rect.h };
                    layout_frames(item, child, counter, out)
                })
                .collect();
            (FrameKind::Horizontal, kids)
        }
        Layout::Vertical(items) => {
            let n = items.len().max(1) as u64;
            let kids = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let y0 = rect.y + (i as u64 * rect.h as u64 / n) as u32;
                    let y1 = rect.y + ((i as u64 + 1) * rect.h as u64 / n) as u32;
                    let child = Rect { x: rect.x, y: y0, w: rect.w, h: y1 - y0 };
                    layout_frames(item, child, counter, out)
                })
                .collect();
            (FrameKind::Vertical, kids)
        }
    };
    out[slot].kind = kind;
    out[slot].children = children;
    node
}

fn element_rect(frames: &[LayoutFrame], want: FrameKind) -> Rect {
    frames.iter().find(|f| f.kind == want).map(|f| f.rect).unwrap_or_default()
}

fn widget_options(kind: &pi2_interface::WidgetKind) -> Vec<String> {
    use pi2_interface::WidgetKind as K;
    match kind {
        K::Radio { options }
        | K::ButtonGroup { options }
        | K::Dropdown { options }
        | K::Tabs { options }
        | K::MultiSelect { options } => options.clone(),
        _ => Vec::new(),
    }
}

impl SceneGraph {
    /// Build a scene from an interface plus current chart data and widget
    /// states. Charts with no update render as empty mark groups.
    pub fn build(
        interface: &Interface,
        updates: &[ChartUpdate],
        widget_states: &[(WidgetId, WidgetState)],
    ) -> SceneGraph {
        Self::build_with_prev(interface, updates, widget_states, None)
    }

    /// [`SceneGraph::build`] with an incremental fast path: a chart whose
    /// update carries the *same* [`Arc`]'d result as `prev`'s node skips
    /// the columnar transpose and domain scan and reuses the previous
    /// node wholesale.
    pub fn build_with_prev(
        interface: &Interface,
        updates: &[ChartUpdate],
        widget_states: &[(WidgetId, WidgetState)],
        prev: Option<&SceneGraph>,
    ) -> SceneGraph {
        let screen = (interface.screen.width, interface.screen.height);
        let mut frames = Vec::new();
        let mut counter = 0usize;
        layout_frames(
            &interface.layout,
            Rect { x: 0, y: 0, w: screen.0, h: screen.1 },
            &mut counter,
            &mut frames,
        );

        let charts = interface
            .charts
            .iter()
            .map(|c| {
                let update = updates.iter().find(|u| u.chart == c.id);
                let frame = element_rect(&frames, FrameKind::Chart(c.id));
                let reused = prev.and_then(|p| {
                    let old = p.charts.iter().find(|s| s.chart == c.id)?;
                    let (u, src) = (update?, old.source.as_ref()?);
                    if Arc::ptr_eq(&u.result, src) && old.query == u.query.to_string() {
                        Some(old.clone())
                    } else {
                        None
                    }
                });
                if let Some(old) = reused {
                    return ChartScene { frame, ..old };
                }
                let (columns, rows, query, source) = match update {
                    Some(u) => (
                        transpose(&u.result),
                        u.result.rows.len(),
                        u.query.to_string(),
                        Some(Arc::clone(&u.result)),
                    ),
                    None => (Vec::new(), 0, String::new(), None),
                };
                let axes = axes_for(&c.encodings, &columns);
                ChartScene {
                    node: SceneNodeId::chart(c.id),
                    chart: c.id,
                    name: c.name.clone(),
                    title: c.title.clone(),
                    mark: c.mark,
                    encodings: c.encodings.clone(),
                    interactions: c.interactions.iter().map(|i| i.kind_name().into()).collect(),
                    query,
                    axes,
                    columns,
                    rows,
                    frame,
                    source,
                }
            })
            .collect();

        let widgets = interface
            .widgets
            .iter()
            .map(|w| WidgetScene {
                node: SceneNodeId::widget(w.id),
                widget: w.id,
                label: w.label.clone(),
                kind: w.kind.kind_name().to_string(),
                options: widget_options(&w.kind),
                state: widget_states
                    .iter()
                    .find(|(id, _)| *id == w.id)
                    .map(|(_, s)| s.clone())
                    .unwrap_or(WidgetState::Unknown),
                frame: element_rect(&frames, FrameKind::Widget(w.id)),
            })
            .collect();

        SceneGraph { screen, charts, widgets, frames }
    }

    /// Cold full build from a live session: execute every chart and read
    /// every widget state. The parity reference for delta replay.
    pub fn build_from(session: &InterfaceSession) -> Result<SceneGraph, SessionError> {
        let updates = session.refresh_all()?;
        let states = session.widget_states();
        Ok(Self::build(session.interface(), &updates, &states))
    }

    /// Apply one delta in place (the client side of the protocol).
    pub fn apply(&mut self, delta: &SceneDelta) -> Result<(), SessionError> {
        for patch in &delta.charts {
            let chart = self
                .charts
                .iter_mut()
                .find(|c| c.node == patch.node)
                .ok_or_else(|| internal(format!("unknown scene node {:#x}", patch.node.raw)))?;
            if let Some(q) = &patch.query {
                chart.query = q.clone();
            }
            if let Some(m) = patch.mark {
                chart.mark = m;
            }
            if let Some(e) = &patch.encodings {
                chart.encodings = e.clone();
            }
            if let Some(a) = &patch.axes {
                chart.axes = a.clone();
            }
            if let Some(data) = &patch.data {
                let (columns, rows) = apply_data(&chart.columns, chart.rows, data)?;
                chart.columns = columns;
                chart.rows = rows;
            }
            chart.source = None;
        }
        for patch in &delta.widgets {
            let widget = self
                .widgets
                .iter_mut()
                .find(|w| w.node == patch.node)
                .ok_or_else(|| internal(format!("unknown scene node {:#x}", patch.node.raw)))?;
            widget.state = patch.state.clone();
        }
        Ok(())
    }
}

fn internal(msg: String) -> SessionError {
    SessionError::Internal(msg)
}

// ---------------------------------------------------------------------------
// Deltas
// ---------------------------------------------------------------------------

/// One op of a row-level edit script (see [`DataPatch::edits`]). The ops
/// walk the old rows front to back; keeps and drops consume old rows,
/// inserts splice in new ones.
#[derive(Debug, Clone, PartialEq)]
pub enum RowEdit {
    /// Keep the next `n` old rows.
    Keep(usize),
    /// Remove the next `n` old rows.
    Drop(usize),
    /// Insert rows here, carried as column-parallel value runs (fields in
    /// the chart's column order).
    Insert(Vec<ColumnSlice>),
}

/// A splice of a chart's mark data: keep the old rows
/// `[drop_head, old_rows - drop_tail)`, prepend and append the payload
/// columns. A full replacement drops every old row and carries the whole
/// new column set in `prepend` (which also re-establishes the field list
/// when the query's output schema changed).
///
/// When contiguous head/tail damage can't describe the change compactly
/// (row turnover scattered through the result), [`DataPatch::edits`]
/// carries a row-level edit script instead; a non-empty script is
/// authoritative and the splice fields are ignored.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataPatch {
    /// Old rows removed from the front.
    pub drop_head: usize,
    /// Old rows removed from the back.
    pub drop_tail: usize,
    /// Columns of rows inserted before the kept block.
    pub prepend: Vec<ColumnSlice>,
    /// Columns of rows appended after the kept block.
    pub append: Vec<ColumnSlice>,
    /// Row-level edit script; when non-empty it replaces the splice
    /// fields entirely and must consume exactly the old row count.
    pub edits: Vec<RowEdit>,
}

impl DataPatch {
    /// Empty patch; chain the setters.
    pub fn new() -> Self {
        DataPatch::default()
    }

    /// Set the rows dropped from the front.
    pub fn drop_head(mut self, n: usize) -> Self {
        self.drop_head = n;
        self
    }

    /// Set the rows dropped from the back.
    pub fn drop_tail(mut self, n: usize) -> Self {
        self.drop_tail = n;
        self
    }

    /// Set the prepended columns.
    pub fn prepend(mut self, columns: Vec<ColumnSlice>) -> Self {
        self.prepend = columns;
        self
    }

    /// Set the appended columns.
    pub fn append(mut self, columns: Vec<ColumnSlice>) -> Self {
        self.append = columns;
        self
    }

    /// Set the row-level edit script (authoritative when non-empty).
    pub fn edits(mut self, edits: Vec<RowEdit>) -> Self {
        self.edits = edits;
        self
    }

    /// Payload size in rows (prepended + appended, or the edit script's
    /// inserted rows when one is present).
    pub fn payload_rows(&self) -> usize {
        if !self.edits.is_empty() {
            return self
                .edits
                .iter()
                .map(|e| match e {
                    RowEdit::Insert(cols) => cols.first().map(|c| c.values.len()).unwrap_or(0),
                    _ => 0,
                })
                .sum();
        }
        let pre = self.prepend.first().map(|c| c.values.len()).unwrap_or(0);
        let app = self.append.first().map(|c| c.values.len()).unwrap_or(0);
        pre + app
    }
}

/// Damage record for one chart node.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct ChartPatch {
    /// The damaged node.
    pub node: SceneNodeId,
    /// The chart it belongs to.
    pub chart: ChartId,
    /// New SQL, when the backing query changed.
    pub query: Option<String>,
    /// New mark, when the chart was re-encoded.
    pub mark: Option<Mark>,
    /// New encodings, when the chart was re-encoded.
    pub encodings: Option<Vec<Encoding>>,
    /// New axes, when a domain moved.
    pub axes: Option<Vec<AxisScene>>,
    /// Data splice, when marks changed.
    pub data: Option<DataPatch>,
    /// Marks added by the splice.
    pub marks_added: usize,
    /// Marks removed by the splice.
    pub marks_removed: usize,
    /// Dirty-rect hint: the chart's layout frame.
    pub dirty: Option<Rect>,
}

impl ChartPatch {
    /// A patch touching `node`; chain the setters.
    pub fn new(node: SceneNodeId, chart: ChartId) -> Self {
        ChartPatch {
            node,
            chart,
            query: None,
            mark: None,
            encodings: None,
            axes: None,
            data: None,
            marks_added: 0,
            marks_removed: 0,
            dirty: None,
        }
    }

    /// Set the new query text.
    pub fn query(mut self, q: impl Into<String>) -> Self {
        self.query = Some(q.into());
        self
    }

    /// Set the new mark.
    pub fn mark(mut self, m: Mark) -> Self {
        self.mark = Some(m);
        self
    }

    /// Set the new encodings.
    pub fn encodings(mut self, e: Vec<Encoding>) -> Self {
        self.encodings = Some(e);
        self
    }

    /// Set the new axes.
    pub fn axes(mut self, a: Vec<AxisScene>) -> Self {
        self.axes = Some(a);
        self
    }

    /// Set the data splice and its mark counts.
    pub fn data(mut self, patch: DataPatch, added: usize, removed: usize) -> Self {
        self.data = Some(patch);
        self.marks_added = added;
        self.marks_removed = removed;
        self
    }

    /// Set the dirty-rect hint.
    pub fn dirty(mut self, rect: Rect) -> Self {
        self.dirty = Some(rect);
        self
    }
}

/// Damage record for one widget node.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct WidgetPatch {
    /// The damaged node.
    pub node: SceneNodeId,
    /// The widget it belongs to.
    pub widget: WidgetId,
    /// The new display state.
    pub state: WidgetState,
}

impl WidgetPatch {
    /// A patch setting `node`'s state.
    pub fn new(node: SceneNodeId, widget: WidgetId, state: WidgetState) -> Self {
        WidgetPatch { node, widget, state }
    }
}

/// One damage frame: everything that changed between two consecutive scene
/// versions.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SceneDelta {
    /// The version this delta applies on top of.
    pub from_version: u64,
    /// The version the scene is at after applying.
    pub to_version: u64,
    /// Damaged charts.
    pub charts: Vec<ChartPatch>,
    /// Damaged widgets.
    pub widgets: Vec<WidgetPatch>,
}

impl SceneDelta {
    /// A delta between two versions; chain the setters.
    pub fn new(from_version: u64, to_version: u64) -> Self {
        SceneDelta { from_version, to_version, charts: Vec::new(), widgets: Vec::new() }
    }

    /// Add a chart patch.
    pub fn chart(mut self, patch: ChartPatch) -> Self {
        self.charts.push(patch);
        self
    }

    /// Add a widget patch.
    pub fn widget(mut self, patch: WidgetPatch) -> Self {
        self.widgets.push(patch);
        self
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.charts.is_empty() && self.widgets.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Diff pass
// ---------------------------------------------------------------------------

fn row_keys(columns: &[ColumnSlice], rows: usize) -> Vec<u64> {
    use std::hash::{Hash, Hasher};
    (0..rows)
        .map(|i| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            for c in columns {
                c.values[i].hash(&mut h);
            }
            h.finish()
        })
        .collect()
}

/// Longest common contiguous block `(a_start, b_start, len)` of two key
/// sequences. Falls back to a prefix/suffix heuristic past a work cap so
/// pathological result sizes stay O(n).
fn longest_common_block(a: &[u64], b: &[u64]) -> (usize, usize, usize) {
    if a.is_empty() || b.is_empty() {
        return (0, 0, 0);
    }
    const WORK_CAP: usize = 4_000_000;
    if a.len().saturating_mul(b.len()) > WORK_CAP {
        let p = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        let s = a.iter().rev().zip(b.iter().rev()).take_while(|(x, y)| x == y).count();
        let s = s.min(a.len().min(b.len()).saturating_sub(p));
        return if p >= s { (0, 0, p) } else { (a.len() - s, b.len() - s, s) };
    }
    let mut best = (0usize, 0usize, 0usize);
    let mut prev = vec![0u32; b.len() + 1];
    let mut cur = vec![0u32; b.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            cur[j] = if a[i - 1] == b[j - 1] { prev[j - 1] + 1 } else { 0 };
            if cur[j] as usize > best.2 {
                best = (i - cur[j] as usize, j - cur[j] as usize, cur[j] as usize);
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

fn slice_columns(columns: &[ColumnSlice], range: std::ops::Range<usize>) -> Vec<ColumnSlice> {
    columns
        .iter()
        .map(|c| ColumnSlice {
            field: c.field.clone(),
            values: Arc::new(c.values[range.clone()].to_vec()),
        })
        .collect()
}

fn block_equal(old: &[ColumnSlice], new: &[ColumnSlice], os: usize, ns: usize, len: usize) -> bool {
    old.iter().zip(new.iter()).all(|(a, b)| a.values[os..os + len] == b.values[ns..ns + len])
}

fn full_replace(old_rows: usize, new: &ChartScene) -> DataPatch {
    DataPatch::new().drop_head(old_rows).prepend(slice_columns(&new.columns, 0..new.rows))
}

/// Row-level edit script between two same-schema column sets: anchor on
/// rows whose key is unique in *both* sequences, keep the longest chain of
/// anchors increasing on both sides, and emit keep/drop/insert runs
/// between them. This is what keeps a delta small when row turnover is
/// scattered through the result (a filter on a non-sort column moved) and
/// no single contiguous block survives. Returns `(edits, inserted,
/// removed)`, or `None` when no anchor survives value verification.
fn edit_script(
    old: &ChartScene,
    new: &ChartScene,
    ka: &[u64],
    kb: &[u64],
) -> Option<(Vec<RowEdit>, usize, usize)> {
    use std::collections::HashMap;
    #[derive(Clone, Copy)]
    enum Seen {
        Once(usize),
        Dup,
    }
    let mut seen_old: HashMap<u64, Seen> = HashMap::with_capacity(ka.len());
    for (i, k) in ka.iter().enumerate() {
        seen_old.entry(*k).and_modify(|s| *s = Seen::Dup).or_insert(Seen::Once(i));
    }
    let mut seen_new: HashMap<u64, Seen> = HashMap::with_capacity(kb.len());
    for (j, k) in kb.iter().enumerate() {
        seen_new.entry(*k).and_modify(|s| *s = Seen::Dup).or_insert(Seen::Once(j));
    }
    // Candidate anchors in new-row order; a kept chain must also be
    // increasing in old-row order (longest increasing subsequence).
    let mut cand: Vec<(usize, usize)> = Vec::new();
    for (j, k) in kb.iter().enumerate() {
        if let (Some(Seen::Once(i)), Some(Seen::Once(_))) = (seen_old.get(k), seen_new.get(k)) {
            cand.push((*i, j));
        }
    }
    if cand.is_empty() {
        return None;
    }
    // Patience LIS over the old indices.
    let mut tails: Vec<usize> = Vec::new();
    let mut prev: Vec<Option<usize>> = vec![None; cand.len()];
    for (ci, &(i, _)) in cand.iter().enumerate() {
        let pos = tails.partition_point(|&t| cand[t].0 < i);
        prev[ci] = pos.checked_sub(1).map(|p| tails[p]);
        if pos == tails.len() {
            tails.push(ci);
        } else {
            tails[pos] = ci;
        }
    }
    let mut chain = Vec::new();
    let mut cur = tails.last().copied();
    while let Some(ci) = cur {
        chain.push(cand[ci]);
        cur = prev[ci];
    }
    chain.reverse();
    // Anchors are matched by hash; verify by value so a collision can
    // never corrupt the client's scene.
    for &(i, j) in &chain {
        if !old.columns.iter().zip(new.columns.iter()).all(|(a, b)| a.values[i] == b.values[j]) {
            return None;
        }
    }
    let mut edits: Vec<RowEdit> = Vec::new();
    let (mut ai, mut bi) = (0usize, 0usize);
    let mut inserted = 0usize;
    for &(i, j) in &chain {
        if i > ai {
            edits.push(RowEdit::Drop(i - ai));
        }
        if j > bi {
            inserted += j - bi;
            edits.push(RowEdit::Insert(slice_columns(&new.columns, bi..j)));
        }
        match edits.last_mut() {
            Some(RowEdit::Keep(n)) if i == ai && j == bi => *n += 1,
            _ => edits.push(RowEdit::Keep(1)),
        }
        ai = i + 1;
        bi = j + 1;
    }
    if old.rows > ai {
        edits.push(RowEdit::Drop(old.rows - ai));
    }
    if new.rows > bi {
        inserted += new.rows - bi;
        edits.push(RowEdit::Insert(slice_columns(&new.columns, bi..new.rows)));
    }
    Some((edits, inserted, old.rows - chain.len()))
}

/// Diff one chart's data: `None` when unchanged, otherwise the smallest
/// damage this pass can prove correct — a head/tail splice around a kept
/// block when the change is contiguous, or a row-level edit script when
/// the turnover is scattered (both verified by value, not just by hash).
fn diff_data(old: &ChartScene, new: &ChartScene) -> Option<(DataPatch, usize, usize)> {
    let same_fields = old.columns.len() == new.columns.len()
        && old.columns.iter().zip(new.columns.iter()).all(|(a, b)| a.field == b.field);
    if same_fields && old.rows == new.rows && old.columns == new.columns {
        return None;
    }
    if !same_fields {
        return Some((full_replace(old.rows, new), new.rows, old.rows));
    }
    let ka = row_keys(&old.columns, old.rows);
    let kb = row_keys(&new.columns, new.rows);
    let (os, ns, mut len) = longest_common_block(&ka, &kb);
    if len > 0 && !block_equal(&old.columns, &new.columns, os, ns, len) {
        len = 0; // hash collision: fall back to a full replacement
    }
    // Prefer the edit script when its payload (inserted rows plus a small
    // per-op charge, so a thousand one-row keeps can't beat a clean
    // splice) undercuts the splice's prepend+append payload.
    let splice_payload = new.rows - len;
    if let Some((edits, inserted, removed)) = edit_script(old, new, &ka, &kb) {
        if inserted + edits.len() / 2 < splice_payload {
            return Some((DataPatch::new().edits(edits), inserted, removed));
        }
    }
    if len == 0 {
        return Some((full_replace(old.rows, new), new.rows, old.rows));
    }
    let patch = DataPatch::new()
        .drop_head(os)
        .drop_tail(old.rows - os - len)
        .prepend(slice_columns(&new.columns, 0..ns))
        .append(slice_columns(&new.columns, ns + len..new.rows));
    Some((patch, new.rows - len, old.rows - len))
}

fn apply_data(
    old: &[ColumnSlice],
    old_rows: usize,
    patch: &DataPatch,
) -> Result<(Vec<ColumnSlice>, usize), SessionError> {
    if !patch.edits.is_empty() {
        return apply_edits(old, old_rows, &patch.edits);
    }
    let kept_start = patch.drop_head.min(old_rows);
    let kept_end = old_rows.saturating_sub(patch.drop_tail).max(kept_start);
    let kept = kept_end - kept_start;
    if kept == 0 {
        // Full replacement: the payload defines the field list.
        let rows = patch.payload_rows();
        if patch.prepend.len() != patch.append.len() && !patch.append.is_empty() {
            return Err(internal("data patch prepend/append field mismatch".into()));
        }
        let columns = patch
            .prepend
            .iter()
            .enumerate()
            .map(|(i, pre)| {
                let mut values = pre.values.as_ref().clone();
                if let Some(app) = patch.append.get(i) {
                    values.extend(app.values.iter().cloned());
                }
                ColumnSlice { field: pre.field.clone(), values: Arc::new(values) }
            })
            .collect();
        return Ok((columns, rows));
    }
    let mut columns = Vec::with_capacity(old.len());
    for (i, col) in old.iter().enumerate() {
        let pre = patch.prepend.get(i);
        let app = patch.append.get(i);
        for payload in [pre, app].into_iter().flatten() {
            if payload.field != col.field {
                return Err(internal(format!(
                    "data patch field {} does not match column {}",
                    payload.field, col.field
                )));
            }
        }
        let mut values: Vec<Value> = pre.map(|p| p.values.as_ref().clone()).unwrap_or_default();
        values.extend(col.values[kept_start..kept_end].iter().cloned());
        if let Some(a) = app {
            values.extend(a.values.iter().cloned());
        }
        columns.push(ColumnSlice { field: col.field.clone(), values: Arc::new(values) });
    }
    let rows = patch.payload_rows() + kept;
    Ok((columns, rows))
}

/// Apply a row-level edit script. The script must consume exactly
/// `old_rows` (keeps + drops) and every insert must match the chart's
/// field list.
fn apply_edits(
    old: &[ColumnSlice],
    old_rows: usize,
    edits: &[RowEdit],
) -> Result<(Vec<ColumnSlice>, usize), SessionError> {
    let mut out: Vec<(String, Vec<Value>)> =
        old.iter().map(|c| (c.field.clone(), Vec::new())).collect();
    let mut cursor = 0usize;
    for op in edits {
        match op {
            RowEdit::Keep(n) => {
                let end = cursor
                    .checked_add(*n)
                    .filter(|&e| e <= old_rows)
                    .ok_or_else(|| internal("edit script keeps past the end".into()))?;
                for (col, (_, values)) in old.iter().zip(out.iter_mut()) {
                    values.extend(col.values[cursor..end].iter().cloned());
                }
                cursor = end;
            }
            RowEdit::Drop(n) => {
                cursor = cursor
                    .checked_add(*n)
                    .filter(|&e| e <= old_rows)
                    .ok_or_else(|| internal("edit script drops past the end".into()))?;
            }
            RowEdit::Insert(cols) => {
                if cols.len() != old.len() {
                    return Err(internal("edit script insert field-count mismatch".into()));
                }
                for (slice, (field, values)) in cols.iter().zip(out.iter_mut()) {
                    if slice.field != *field {
                        return Err(internal(format!(
                            "edit script insert field {} does not match column {field}",
                            slice.field
                        )));
                    }
                    values.extend(slice.values.iter().cloned());
                }
            }
        }
    }
    if cursor != old_rows {
        return Err(internal("edit script does not consume every old row".into()));
    }
    let rows = out.first().map(|(_, v)| v.len()).unwrap_or(0);
    let columns = out
        .into_iter()
        .map(|(field, values)| ColumnSlice { field, values: Arc::new(values) })
        .collect();
    Ok((columns, rows))
}

/// Diff two scenes over the same interface into (unversioned) patches.
fn diff_graphs(old: &SceneGraph, new: &SceneGraph) -> SceneDelta {
    let mut delta = SceneDelta::new(0, 0);
    for n in &new.charts {
        let Some(o) = old.charts.iter().find(|c| c.node == n.node) else {
            continue;
        };
        if o == n {
            continue;
        }
        let mut patch = ChartPatch::new(n.node, n.chart);
        if o.query != n.query {
            patch = patch.query(n.query.clone());
        }
        if o.mark != n.mark {
            patch = patch.mark(n.mark);
        }
        if o.encodings != n.encodings {
            patch = patch.encodings(n.encodings.clone());
        }
        if o.axes != n.axes {
            patch = patch.axes(n.axes.clone());
        }
        if let Some((data, added, removed)) = diff_data(o, n) {
            patch = patch.data(data, added, removed);
        }
        delta = delta.chart(patch.dirty(n.frame));
    }
    for n in &new.widgets {
        let Some(o) = old.widgets.iter().find(|w| w.node == n.node) else {
            continue;
        };
        if o.state != n.state {
            delta = delta.widget(WidgetPatch::new(n.node, n.widget, n.state.clone()));
        }
    }
    delta
}

// ---------------------------------------------------------------------------
// Scene state: versions + delta history
// ---------------------------------------------------------------------------

/// What a version-aware client gets when it asks for everything after its
/// last applied scene version.
#[derive(Debug, Clone, PartialEq)]
pub enum SceneCatchup {
    /// The client is current; nothing to send.
    UpToDate,
    /// A contiguous run of deltas bringing the client current.
    Deltas(Vec<SceneDelta>),
    /// The client's version is stale (or unknown): full snapshot at the
    /// given version.
    Resync(Box<SceneGraph>, u64),
}

/// The retained scene plus its monotone version counter and a bounded ring
/// of recent deltas for catch-up. Owned by
/// [`InterfaceSession`](crate::session::InterfaceSession).
#[derive(Debug, Clone)]
pub struct SceneState {
    graph: SceneGraph,
    version: u64,
    history: VecDeque<SceneDelta>,
}

impl SceneState {
    /// Start retaining `graph` at version 1.
    pub fn new(graph: SceneGraph) -> Self {
        SceneState { graph, version: 1, history: VecDeque::new() }
    }

    /// Current scene version (monotone; bumps once per damaging sync).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The retained scene.
    pub fn graph(&self) -> &SceneGraph {
        &self.graph
    }

    /// Replace the retained scene with `fresh`, emitting the damage delta.
    /// Returns `None` (and keeps the version) when nothing changed.
    pub fn sync(&mut self, fresh: SceneGraph) -> Option<SceneDelta> {
        let mut delta = diff_graphs(&self.graph, &fresh);
        self.graph = fresh;
        if delta.is_empty() {
            return None;
        }
        delta.from_version = self.version;
        self.version += 1;
        delta.to_version = self.version;
        if self.history.len() == SCENE_HISTORY_CAP {
            self.history.pop_front();
        }
        self.history.push_back(delta.clone());
        Some(delta)
    }

    /// Catch a client up from `since` to the current version.
    pub fn deltas_since(&self, since: u64) -> SceneCatchup {
        if since == self.version {
            return SceneCatchup::UpToDate;
        }
        if since < self.version {
            let chain: Vec<SceneDelta> =
                self.history.iter().filter(|d| d.from_version >= since).cloned().collect();
            let contiguous = chain.first().is_some_and(|d| d.from_version == since)
                && chain.last().is_some_and(|d| d.to_version == self.version);
            if contiguous {
                return SceneCatchup::Deltas(chain);
            }
        }
        SceneCatchup::Resync(Box::new(self.graph.clone()), self.version)
    }
}

// ---------------------------------------------------------------------------
// Renderer: the typed surface over all backends
// ---------------------------------------------------------------------------

/// A render backend: anything that can turn an interface plus current data
/// into an output artifact (ASCII text, a spec document, an HTML page, a
/// GPU scene). Replaces the old free-function surface
/// (`render_interface`, `render_session`, `interface_spec`, `chart_spec`);
/// `pi2-render` ships `AsciiRenderer`, `SpecRenderer`, and `HtmlRenderer`.
pub trait Renderer {
    /// The backend's output artifact.
    type Output;

    /// Render an interface with the given chart data.
    fn render(&self, interface: &Interface, updates: &[ChartUpdate]) -> Self::Output;

    /// Render a live session: current data plus live widget state. The
    /// default executes every chart and delegates to [`Renderer::render`].
    fn render_live(&self, session: &InterfaceSession) -> Result<Self::Output, SessionError> {
        Ok(self.render(session.interface(), &session.refresh_all()?))
    }
}

// ---------------------------------------------------------------------------
// JSON codec (the wire format of `render_delta` and the HTML client)
// ---------------------------------------------------------------------------

fn mark_name(m: Mark) -> &'static str {
    match m {
        Mark::Bar => "bar",
        Mark::Line => "line",
        Mark::Area => "area",
        Mark::Scatter => "scatter",
        Mark::Table => "table",
        Mark::Heatmap => "heatmap",
    }
}

fn parse_mark(s: &str) -> Result<Mark, String> {
    Ok(match s {
        "bar" => Mark::Bar,
        "line" => Mark::Line,
        "area" => Mark::Area,
        "scatter" => Mark::Scatter,
        "table" => Mark::Table,
        "heatmap" => Mark::Heatmap,
        other => return Err(format!("unknown mark {other:?}")),
    })
}

fn channel_name(c: Channel) -> &'static str {
    match c {
        Channel::X => "x",
        Channel::Y => "y",
        Channel::Color => "color",
        Channel::Size => "size",
        Channel::Detail => "detail",
    }
}

fn parse_channel(s: &str) -> Result<Channel, String> {
    Ok(match s {
        "x" => Channel::X,
        "y" => Channel::Y,
        "color" => Channel::Color,
        "size" => Channel::Size,
        "detail" => Channel::Detail,
        other => return Err(format!("unknown channel {other:?}")),
    })
}

fn field_type_name(t: FieldType) -> &'static str {
    match t {
        FieldType::Quantitative => "quantitative",
        FieldType::Nominal => "nominal",
        FieldType::Ordinal => "ordinal",
        FieldType::Temporal => "temporal",
    }
}

fn parse_field_type(s: &str) -> Result<FieldType, String> {
    Ok(match s {
        "quantitative" => FieldType::Quantitative,
        "nominal" => FieldType::Nominal,
        "ordinal" => FieldType::Ordinal,
        "temporal" => FieldType::Temporal,
        other => return Err(format!("unknown field type {other:?}")),
    })
}

fn f64_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Number(serde_json::Number::Float(v))
    } else {
        json!({ "$float": format!("{v:?}") })
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => json!(b),
        Value::Int(i) => json!(i),
        Value::Float(f) => f64_json(*f),
        Value::Str(s) => json!(s),
        Value::Date(d) => json!({ "$date": d.to_string() }),
    }
}

fn value_from_json(v: &Json) -> Result<Value, String> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Number(n) => Ok(match n.as_i64() {
            Some(i) => Value::Int(i),
            None => Value::Float(n.as_f64()),
        }),
        Json::String(s) => Ok(Value::Str(s.clone())),
        Json::Object(o) => {
            if let Some(Json::String(d)) = o.get("$date") {
                return pi2_sql::Date::parse(d)
                    .map(Value::Date)
                    .ok_or_else(|| format!("bad date {d:?}"));
            }
            if let Some(Json::String(f)) = o.get("$float") {
                return f.parse::<f64>().map(Value::Float).map_err(|e| e.to_string());
            }
            Err("unexpected object value".to_string())
        }
        Json::Array(_) => Err("unexpected array value".to_string()),
    }
}

fn literal_to_json(l: &Literal) -> Json {
    match l {
        Literal::Null => Json::Null,
        Literal::Bool(b) => json!(b),
        Literal::Int(i) => json!(i),
        Literal::Float(f) => f64_json(f.0),
        Literal::Str(s) => json!(s),
        Literal::Date(d) => json!({ "$date": d.to_string() }),
    }
}

fn literal_from_json(v: &Json) -> Result<Literal, String> {
    Ok(match value_from_json(v)? {
        Value::Null => Literal::Null,
        Value::Bool(b) => Literal::Bool(b),
        Value::Int(i) => Literal::Int(i),
        Value::Float(f) => Literal::Float(pi2_sql::F64(f)),
        Value::Str(s) => Literal::Str(s),
        Value::Date(d) => Literal::Date(d),
    })
}

fn widget_state_to_json(s: &WidgetState) -> Json {
    match s {
        WidgetState::Picked(i) => json!({ "picked": i }),
        WidgetState::Toggled(b) => json!({ "toggled": b }),
        WidgetState::Value(l) => json!({ "value": literal_to_json(l) }),
        WidgetState::Range(lo, hi) => {
            json!({ "range": [literal_to_json(lo), literal_to_json(hi)] })
        }
        WidgetState::Flags(f) => json!({ "flags": f }),
        WidgetState::Unknown => json!({ "unknown": true }),
    }
}

fn widget_state_from_json(v: &Json) -> Result<WidgetState, String> {
    let o = v.as_object().ok_or("widget state must be an object")?;
    if let Some(p) = o.get("picked") {
        return p
            .as_u64()
            .map(|i| WidgetState::Picked(i as usize))
            .ok_or_else(|| "bad pick".into());
    }
    if let Some(t) = o.get("toggled") {
        return t.as_bool().map(WidgetState::Toggled).ok_or_else(|| "bad toggle".into());
    }
    if let Some(val) = o.get("value") {
        return literal_from_json(val).map(WidgetState::Value);
    }
    if let Some(r) = o.get("range") {
        let arr = r.as_array().filter(|a| a.len() == 2).ok_or("bad range")?;
        return Ok(WidgetState::Range(literal_from_json(&arr[0])?, literal_from_json(&arr[1])?));
    }
    if let Some(f) = o.get("flags") {
        let flags = f
            .as_array()
            .ok_or("bad flags")?
            .iter()
            .map(|b| b.as_bool().ok_or_else(|| "bad flag".to_string()))
            .collect::<Result<Vec<bool>, String>>()?;
        return Ok(WidgetState::Flags(flags));
    }
    Ok(WidgetState::Unknown)
}

fn rect_json(r: Rect) -> Json {
    json!([r.x, r.y, r.w, r.h])
}

fn rect_from_json(v: &Json) -> Result<Rect, String> {
    let a = v.as_array().filter(|a| a.len() == 4).ok_or("rect must be [x,y,w,h]")?;
    let g = |i: usize| a[i].as_u64().map(|n| n as u32).ok_or_else(|| "bad rect".to_string());
    Ok(Rect { x: g(0)?, y: g(1)?, w: g(2)?, h: g(3)? })
}

fn columns_json(columns: &[ColumnSlice]) -> Json {
    Json::Array(
        columns
            .iter()
            .map(|c| {
                json!({
                    "field": c.field,
                    "values": c.values.iter().map(value_to_json).collect::<Vec<_>>(),
                })
            })
            .collect(),
    )
}

fn columns_from_json(v: &Json) -> Result<Vec<ColumnSlice>, String> {
    v.as_array()
        .ok_or("columns must be an array")?
        .iter()
        .map(|c| {
            let field = c
                .get("field")
                .and_then(Json::as_str)
                .ok_or_else(|| "column needs a field".to_string())?;
            let values = c
                .get("values")
                .and_then(Json::as_array)
                .ok_or_else(|| "column needs values".to_string())?
                .iter()
                .map(value_from_json)
                .collect::<Result<Vec<Value>, String>>()?;
            Ok(ColumnSlice { field: field.to_string(), values: Arc::new(values) })
        })
        .collect()
}

fn encoding_json(e: &Encoding) -> Json {
    json!({
        "channel": channel_name(e.channel),
        "field": e.field,
        "type": field_type_name(e.field_type),
    })
}

fn encoding_from_json(v: &Json) -> Result<Encoding, String> {
    let get = |k: &str| v.get(k).and_then(Json::as_str).ok_or(format!("encoding needs {k}"));
    Ok(Encoding {
        channel: parse_channel(get("channel")?)?,
        field: get("field")?.to_string(),
        field_type: parse_field_type(get("type")?)?,
    })
}

fn axis_json(a: &AxisScene) -> Json {
    let mut o = serde_json::Map::new();
    o.insert("channel".into(), json!(channel_name(a.channel)));
    o.insert("field".into(), json!(a.field));
    o.insert("type".into(), json!(field_type_name(a.field_type)));
    if let Some(lo) = a.min {
        o.insert("min".into(), f64_json(lo));
    }
    if let Some(hi) = a.max {
        o.insert("max".into(), f64_json(hi));
    }
    Json::Object(o)
}

fn axis_from_json(v: &Json) -> Result<AxisScene, String> {
    let get = |k: &str| v.get(k).and_then(Json::as_str).ok_or(format!("axis needs {k}"));
    Ok(AxisScene {
        channel: parse_channel(get("channel")?)?,
        field: get("field")?.to_string(),
        field_type: parse_field_type(get("type")?)?,
        min: v.get("min").and_then(Json::as_f64),
        max: v.get("max").and_then(Json::as_f64),
    })
}

/// Encode a scene snapshot for the wire.
pub fn scene_to_json(g: &SceneGraph) -> Json {
    json!({
        "screen": [g.screen.0, g.screen.1],
        "charts": g.charts.iter().map(|c| json!({
            "node": c.node.raw,
            "chart": c.chart,
            "name": c.name,
            "title": c.title,
            "mark": mark_name(c.mark),
            "encodings": c.encodings.iter().map(encoding_json).collect::<Vec<_>>(),
            "interactions": c.interactions,
            "query": c.query,
            "axes": c.axes.iter().map(axis_json).collect::<Vec<_>>(),
            "rows": c.rows,
            "columns": columns_json(&c.columns),
            "frame": rect_json(c.frame),
        })).collect::<Vec<_>>(),
        "widgets": g.widgets.iter().map(|w| json!({
            "node": w.node.raw,
            "widget": w.widget,
            "label": w.label,
            "kind": w.kind,
            "options": w.options,
            "state": widget_state_to_json(&w.state),
            "frame": rect_json(w.frame),
        })).collect::<Vec<_>>(),
        "frames": g.frames.iter().map(|f| json!({
            "node": f.node.raw,
            "kind": match f.kind {
                FrameKind::Horizontal => json!("horizontal"),
                FrameKind::Vertical => json!("vertical"),
                FrameKind::Chart(id) => json!({ "chart": id }),
                FrameKind::Widget(id) => json!({ "widget": id }),
            },
            "rect": rect_json(f.rect),
            "children": f.children.iter().map(|c| c.raw).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    })
}

fn node_from_json(v: Option<&Json>) -> Result<SceneNodeId, String> {
    v.and_then(Json::as_u64)
        .map(|n| SceneNodeId::from_raw(n as u32))
        .ok_or_else(|| "missing scene node id".to_string())
}

/// Decode a scene snapshot (the client side of a resync).
pub fn scene_from_json(v: &Json) -> Result<SceneGraph, String> {
    let screen = v.get("screen").and_then(Json::as_array).ok_or("scene needs a screen")?;
    let screen = (
        screen.first().and_then(Json::as_u64).ok_or("bad screen")? as u32,
        screen.get(1).and_then(Json::as_u64).ok_or("bad screen")? as u32,
    );
    let charts = v
        .get("charts")
        .and_then(Json::as_array)
        .ok_or("scene needs charts")?
        .iter()
        .map(|c| {
            let s = |k: &str| {
                c.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("chart needs {k}"))
            };
            let columns = columns_from_json(c.get("columns").unwrap_or(&Json::Null))?;
            Ok(ChartScene {
                node: node_from_json(c.get("node"))?,
                chart: c.get("chart").and_then(Json::as_u64).ok_or("chart needs an id")? as usize,
                name: s("name")?,
                title: s("title")?,
                mark: parse_mark(&s("mark")?)?,
                encodings: c
                    .get("encodings")
                    .and_then(Json::as_array)
                    .ok_or("chart needs encodings")?
                    .iter()
                    .map(encoding_from_json)
                    .collect::<Result<Vec<_>, String>>()?,
                interactions: c
                    .get("interactions")
                    .and_then(Json::as_array)
                    .ok_or("chart needs interactions")?
                    .iter()
                    .map(|i| i.as_str().map(str::to_string).ok_or("bad interaction".to_string()))
                    .collect::<Result<Vec<_>, String>>()?,
                query: s("query")?,
                axes: c
                    .get("axes")
                    .and_then(Json::as_array)
                    .ok_or("chart needs axes")?
                    .iter()
                    .map(axis_from_json)
                    .collect::<Result<Vec<_>, String>>()?,
                rows: c.get("rows").and_then(Json::as_u64).ok_or("chart needs rows")? as usize,
                columns,
                frame: rect_from_json(c.get("frame").unwrap_or(&Json::Null))?,
                source: None,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let widgets = v
        .get("widgets")
        .and_then(Json::as_array)
        .ok_or("scene needs widgets")?
        .iter()
        .map(|w| {
            let s = |k: &str| {
                w.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("widget needs {k}"))
            };
            Ok(WidgetScene {
                node: node_from_json(w.get("node"))?,
                widget: w.get("widget").and_then(Json::as_u64).ok_or("widget needs an id")?
                    as usize,
                label: s("label")?,
                kind: s("kind")?,
                options: w
                    .get("options")
                    .and_then(Json::as_array)
                    .ok_or("widget needs options")?
                    .iter()
                    .map(|o| o.as_str().map(str::to_string).ok_or("bad option".to_string()))
                    .collect::<Result<Vec<_>, String>>()?,
                state: widget_state_from_json(w.get("state").unwrap_or(&Json::Null))?,
                frame: rect_from_json(w.get("frame").unwrap_or(&Json::Null))?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let frames = v
        .get("frames")
        .and_then(Json::as_array)
        .ok_or("scene needs frames")?
        .iter()
        .map(|f| {
            let kind = match f.get("kind") {
                Some(Json::String(s)) if s == "horizontal" => FrameKind::Horizontal,
                Some(Json::String(s)) if s == "vertical" => FrameKind::Vertical,
                Some(Json::Object(o)) => {
                    if let Some(id) = o.get("chart").and_then(Json::as_u64) {
                        FrameKind::Chart(id as usize)
                    } else if let Some(id) = o.get("widget").and_then(Json::as_u64) {
                        FrameKind::Widget(id as usize)
                    } else {
                        return Err("bad frame kind".to_string());
                    }
                }
                _ => return Err("bad frame kind".to_string()),
            };
            Ok(LayoutFrame {
                node: node_from_json(f.get("node"))?,
                kind,
                rect: rect_from_json(f.get("rect").unwrap_or(&Json::Null))?,
                children: f
                    .get("children")
                    .and_then(Json::as_array)
                    .ok_or("frame needs children")?
                    .iter()
                    .map(|c| node_from_json(Some(c)))
                    .collect::<Result<Vec<_>, String>>()?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SceneGraph { screen, charts, widgets, frames })
}

/// Encode one delta frame for the wire.
pub fn delta_to_json(d: &SceneDelta) -> Json {
    json!({
        "from": d.from_version,
        "to": d.to_version,
        "charts": d.charts.iter().map(|p| {
            let mut o = serde_json::Map::new();
            o.insert("node".into(), json!(p.node.raw));
            o.insert("chart".into(), json!(p.chart));
            if let Some(q) = &p.query {
                o.insert("query".into(), json!(q));
            }
            if let Some(m) = p.mark {
                o.insert("mark".into(), json!(mark_name(m)));
            }
            if let Some(e) = &p.encodings {
                o.insert("encodings".into(), Json::Array(e.iter().map(encoding_json).collect()));
            }
            if let Some(a) = &p.axes {
                o.insert("axes".into(), Json::Array(a.iter().map(axis_json).collect()));
            }
            if let Some(data) = &p.data {
                let mut d = serde_json::Map::new();
                d.insert("drop_head".into(), json!(data.drop_head));
                d.insert("drop_tail".into(), json!(data.drop_tail));
                d.insert("prepend".into(), columns_json(&data.prepend));
                d.insert("append".into(), columns_json(&data.append));
                if !data.edits.is_empty() {
                    // Compact op encoding: a positive integer keeps that
                    // many old rows, a negative one drops them, and an
                    // array is an inserted column block. Scattered-churn
                    // scripts carry hundreds of ops, so per-op bytes
                    // dominate the frame.
                    d.insert(
                        "edits".into(),
                        Json::Array(
                            data.edits
                                .iter()
                                .map(|op| match op {
                                    RowEdit::Keep(n) => json!(*n as i64),
                                    RowEdit::Drop(n) => json!(-(*n as i64)),
                                    RowEdit::Insert(cols) => columns_json(cols),
                                })
                                .collect(),
                        ),
                    );
                }
                o.insert("data".into(), Json::Object(d));
            }
            o.insert("marks_added".into(), json!(p.marks_added));
            o.insert("marks_removed".into(), json!(p.marks_removed));
            if let Some(r) = p.dirty {
                o.insert("dirty".into(), rect_json(r));
            }
            Json::Object(o)
        }).collect::<Vec<_>>(),
        "widgets": d.widgets.iter().map(|p| json!({
            "node": p.node.raw,
            "widget": p.widget,
            "state": widget_state_to_json(&p.state),
        })).collect::<Vec<_>>(),
    })
}

/// Decode one delta frame (the client side of `render_delta`).
pub fn delta_from_json(v: &Json) -> Result<SceneDelta, String> {
    let mut delta = SceneDelta::new(
        v.get("from").and_then(Json::as_u64).ok_or("delta needs from")?,
        v.get("to").and_then(Json::as_u64).ok_or("delta needs to")?,
    );
    for p in v.get("charts").and_then(Json::as_array).ok_or("delta needs charts")? {
        let mut patch = ChartPatch::new(
            node_from_json(p.get("node"))?,
            p.get("chart").and_then(Json::as_u64).ok_or("patch needs a chart")? as usize,
        );
        if let Some(q) = p.get("query").and_then(Json::as_str) {
            patch = patch.query(q);
        }
        if let Some(m) = p.get("mark").and_then(Json::as_str) {
            patch = patch.mark(parse_mark(m)?);
        }
        if let Some(e) = p.get("encodings").and_then(Json::as_array) {
            patch = patch
                .encodings(e.iter().map(encoding_from_json).collect::<Result<Vec<_>, String>>()?);
        }
        if let Some(a) = p.get("axes").and_then(Json::as_array) {
            patch = patch.axes(a.iter().map(axis_from_json).collect::<Result<Vec<_>, String>>()?);
        }
        if let Some(data) = p.get("data") {
            let num = |k: &str| {
                data.get(k)
                    .and_then(Json::as_u64)
                    .map(|n| n as usize)
                    .ok_or(format!("data needs {k}"))
            };
            let mut dp = DataPatch::new()
                .drop_head(num("drop_head")?)
                .drop_tail(num("drop_tail")?)
                .prepend(columns_from_json(data.get("prepend").unwrap_or(&Json::Null))?)
                .append(columns_from_json(data.get("append").unwrap_or(&Json::Null))?);
            if let Some(edits) = data.get("edits").and_then(Json::as_array) {
                dp = dp.edits(
                    edits
                        .iter()
                        .map(|op| {
                            if let Some(n) = op.as_i64() {
                                match n {
                                    n if n > 0 => Ok(RowEdit::Keep(n as usize)),
                                    n if n < 0 => Ok(RowEdit::Drop(n.unsigned_abs() as usize)),
                                    _ => Err("zero-length edit op".to_string()),
                                }
                            } else if op.as_array().is_some() {
                                Ok(RowEdit::Insert(columns_from_json(op)?))
                            } else {
                                Err("bad edit op".to_string())
                            }
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                );
            }
            let added = p.get("marks_added").and_then(Json::as_u64).unwrap_or(0) as usize;
            let removed = p.get("marks_removed").and_then(Json::as_u64).unwrap_or(0) as usize;
            patch = patch.data(dp, added, removed);
        }
        if let Some(r) = p.get("dirty") {
            patch = patch.dirty(rect_from_json(r)?);
        }
        delta = delta.chart(patch);
    }
    for p in v.get("widgets").and_then(Json::as_array).ok_or("delta needs widgets")? {
        delta = delta.widget(WidgetPatch::new(
            node_from_json(p.get("node"))?,
            p.get("widget").and_then(Json::as_u64).ok_or("patch needs a widget")? as usize,
            widget_state_from_json(p.get("state").unwrap_or(&Json::Null))?,
        ));
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_engine::{DataType, Field, Schema};

    fn result(xs: &[i64]) -> Arc<ResultSet> {
        Arc::new(ResultSet {
            schema: Schema::new(vec![
                Field::new("x", DataType::Int),
                Field::new("y", DataType::Float),
            ]),
            rows: xs.iter().map(|x| vec![Value::Int(*x), Value::Float(*x as f64 / 2.0)]).collect(),
        })
    }

    fn chart_scene(xs: &[i64], query: &str) -> ChartScene {
        let r = result(xs);
        ChartScene {
            node: SceneNodeId::chart(0),
            chart: 0,
            name: "G1".into(),
            title: "t".into(),
            mark: Mark::Scatter,
            encodings: vec![
                Encoding {
                    channel: Channel::X,
                    field: "x".into(),
                    field_type: FieldType::Quantitative,
                },
                Encoding {
                    channel: Channel::Y,
                    field: "y".into(),
                    field_type: FieldType::Quantitative,
                },
            ],
            interactions: vec!["pan-zoom".into()],
            query: query.into(),
            axes: Vec::new(),
            columns: transpose(&r),
            rows: r.rows.len(),
            frame: Rect { x: 0, y: 0, w: 100, h: 100 },
            source: Some(r),
        }
    }

    fn graph_of(chart: ChartScene) -> SceneGraph {
        SceneGraph {
            screen: (100, 100),
            charts: vec![chart],
            widgets: Vec::new(),
            frames: Vec::new(),
        }
    }

    #[test]
    fn pan_like_shift_produces_small_splice() {
        let old = graph_of(chart_scene(&(0..100).collect::<Vec<_>>(), "q0"));
        let new = graph_of(chart_scene(&(10..110).collect::<Vec<_>>(), "q1"));
        let delta = diff_graphs(&old, &new);
        assert_eq!(delta.charts.len(), 1);
        let patch = &delta.charts[0];
        assert_eq!(patch.query.as_deref(), Some("q1"));
        let data = patch.data.as_ref().unwrap();
        // 90 rows overlap: payload is the 10 fresh rows only.
        assert_eq!(data.drop_head, 10);
        assert_eq!(data.drop_tail, 0);
        assert_eq!(data.payload_rows(), 10);
        assert_eq!(patch.marks_added, 10);
        assert_eq!(patch.marks_removed, 10);
        assert_eq!(patch.dirty, Some(Rect { x: 0, y: 0, w: 100, h: 100 }));

        let mut client = old.clone();
        client.apply(&delta).unwrap();
        assert_eq!(client, new);
    }

    #[test]
    fn scattered_churn_produces_edit_script() {
        // Rows vanish at scattered positions and a couple of fresh rows
        // appear mid-stream: no single contiguous block captures the
        // overlap, but the row-level edit script ships only the two
        // inserted rows.
        let old_xs: Vec<i64> = (0..100).collect();
        let mut new_xs: Vec<i64> =
            old_xs.iter().copied().filter(|x| ![7, 23, 41, 59, 88].contains(x)).collect();
        new_xs.insert(10, 500);
        new_xs.insert(60, 501);

        let old = graph_of(chart_scene(&old_xs, "q0"));
        let new = graph_of(chart_scene(&new_xs, "q1"));
        let delta = diff_graphs(&old, &new);
        let data = delta.charts[0].data.as_ref().unwrap();
        assert!(!data.edits.is_empty(), "scattered churn should pick the edit script");
        assert_eq!(data.payload_rows(), 2, "only the inserted rows ride the wire");

        // Through the wire codec, then applied client-side.
        let rt = delta_from_json(&delta_to_json(&delta)).unwrap();
        assert_eq!(rt, delta);
        let mut client = old.clone();
        client.apply(&rt).unwrap();
        assert_eq!(client, new);
    }

    #[test]
    fn truncated_edit_script_is_rejected() {
        let old = graph_of(chart_scene(&[1, 2, 3, 4], "q"));
        let mut delta = diff_graphs(&old, &graph_of(chart_scene(&[1, 2, 3, 4], "q2")));
        // Forge a script that stops short of consuming every old row.
        delta.charts[0].data =
            Some(DataPatch::new().edits(vec![RowEdit::Keep(2), RowEdit::Drop(1)]));
        let mut client = old.clone();
        let err = client.apply(&delta).unwrap_err().to_string();
        assert!(err.contains("consume"), "unexpected error: {err}");
    }

    #[test]
    fn zoom_in_is_payload_free() {
        let old = graph_of(chart_scene(&(0..100).collect::<Vec<_>>(), "q"));
        let new = graph_of(chart_scene(&(20..80).collect::<Vec<_>>(), "q"));
        let delta = diff_graphs(&old, &new);
        let data = delta.charts[0].data.as_ref().unwrap();
        assert_eq!(data.payload_rows(), 0);
        assert_eq!((data.drop_head, data.drop_tail), (20, 20));
        let mut client = old.clone();
        client.apply(&delta).unwrap();
        assert_eq!(client, new);
    }

    #[test]
    fn schema_change_full_replaces_and_reestablishes_fields() {
        let old = graph_of(chart_scene(&[1, 2, 3], "q"));
        let mut fresh = chart_scene(&[4, 5], "q2");
        fresh.columns = vec![ColumnSlice {
            field: "renamed".into(),
            values: Arc::new(vec![Value::Int(4), Value::Int(5)]),
        }];
        fresh.rows = 2;
        let new = graph_of(fresh);
        let delta = diff_graphs(&old, &new);
        let mut client = old.clone();
        client.apply(&delta).unwrap();
        assert_eq!(client, new);
        assert_eq!(client.charts[0].columns[0].field, "renamed");
    }

    #[test]
    fn empty_results_round_trip() {
        let old = graph_of(chart_scene(&[1, 2], "q"));
        let new = graph_of(chart_scene(&[], "q2"));
        let delta = diff_graphs(&old, &new);
        let mut client = old.clone();
        client.apply(&delta).unwrap();
        assert_eq!(client, new);
        // And back from empty.
        let back = graph_of(chart_scene(&[7], "q3"));
        let d2 = diff_graphs(&new, &back);
        client.apply(&d2).unwrap();
        assert_eq!(client, back);
    }

    #[test]
    fn scene_state_versions_and_catchup() {
        let g0 = graph_of(chart_scene(&[1, 2], "q"));
        let mut state = SceneState::new(g0.clone());
        assert_eq!(state.version(), 1);
        assert!(matches!(state.deltas_since(1), SceneCatchup::UpToDate));
        assert!(matches!(state.deltas_since(0), SceneCatchup::Resync(_, 1)));

        // No-op sync keeps the version.
        assert!(state.sync(g0.clone()).is_none());
        assert_eq!(state.version(), 1);

        let g1 = graph_of(chart_scene(&[2, 3], "q2"));
        let d1 = state.sync(g1.clone()).unwrap();
        assert_eq!((d1.from_version, d1.to_version), (1, 2));
        let g2 = graph_of(chart_scene(&[3, 4], "q3"));
        state.sync(g2.clone()).unwrap();
        assert_eq!(state.version(), 3);

        match state.deltas_since(1) {
            SceneCatchup::Deltas(chain) => {
                assert_eq!(chain.len(), 2);
                let mut client = g0;
                for d in &chain {
                    client.apply(d).unwrap();
                }
                assert_eq!(client, g2);
            }
            other => panic!("expected deltas, got {other:?}"),
        }
        // A version from the future resyncs.
        assert!(matches!(state.deltas_since(9), SceneCatchup::Resync(_, 3)));
    }

    #[test]
    fn history_eviction_forces_resync() {
        let mut state = SceneState::new(graph_of(chart_scene(&[0], "q0")));
        for i in 1..=(SCENE_HISTORY_CAP as i64 + 4) {
            state.sync(graph_of(chart_scene(&[i], &format!("q{i}"))));
        }
        assert!(matches!(state.deltas_since(1), SceneCatchup::Resync(..)));
    }

    #[test]
    fn json_round_trips_scene_and_delta() {
        let interface = toy_interface();
        let updates = vec![ChartUpdate {
            chart: 0,
            query: pi2_sql::parse_query("SELECT a, count(*) FROM t GROUP BY a").unwrap(),
            result: result(&[1, 2, 3]),
        }];
        let states = vec![(0usize, WidgetState::Range(Literal::Int(1), Literal::Int(5)))];
        let scene = SceneGraph::build(&interface, &updates, &states);
        let rt = scene_from_json(&scene_to_json(&scene)).unwrap();
        assert_eq!(rt, scene);

        let old = graph_of(chart_scene(&[1, 2, 3], "q"));
        let new = graph_of(chart_scene(&[2, 3, 4], "q2"));
        let delta = diff_graphs(&old, &new);
        let delta_rt = delta_from_json(&delta_to_json(&delta)).unwrap();
        assert_eq!(delta_rt, delta);
        let mut client = old;
        client.apply(&delta_rt).unwrap();
        assert_eq!(client, new);
    }

    #[test]
    fn layout_frames_tile_exactly() {
        let interface = toy_interface();
        let scene = SceneGraph::build(&interface, &[], &[]);
        let root = &scene.frames[0];
        assert_eq!(
            root.rect,
            Rect { x: 0, y: 0, w: interface.screen.width, h: interface.screen.height }
        );
        // Children of any split tile their parent without gaps.
        for f in &scene.frames {
            let kids: Vec<&LayoutFrame> = f
                .children
                .iter()
                .filter_map(|c| scene.frames.iter().find(|g| g.node == *c))
                .collect();
            if kids.is_empty() {
                continue;
            }
            let area: u64 = kids.iter().map(|k| k.rect.w as u64 * k.rect.h as u64).sum();
            assert_eq!(area, f.rect.w as u64 * f.rect.h as u64);
        }
        // Every chart and widget got a non-empty frame.
        assert!(scene.charts.iter().all(|c| c.frame.w > 0 && c.frame.h > 0));
        assert!(scene.widgets.iter().all(|w| w.frame.w > 0 && w.frame.h > 0));
    }

    fn toy_interface() -> Interface {
        use pi2_interface::{Chart, Widget, WidgetKind};
        Interface {
            charts: vec![Chart {
                id: 0,
                name: "G1".into(),
                title: "counts".into(),
                mark: Mark::Bar,
                encodings: vec![
                    Encoding {
                        channel: Channel::X,
                        field: "x".into(),
                        field_type: FieldType::Nominal,
                    },
                    Encoding {
                        channel: Channel::Y,
                        field: "y".into(),
                        field_type: FieldType::Quantitative,
                    },
                ],
                tree: 0,
                interactions: Vec::new(),
            }],
            widgets: vec![Widget {
                id: 0,
                label: "a".into(),
                kind: WidgetKind::Slider { min: 0.0, max: 10.0, step: 1.0, temporal: false },
                targets: Vec::new(),
            }],
            layout: Layout::Vertical(vec![
                Layout::Leaf(Element::Widget(0)),
                Layout::Leaf(Element::Chart(0)),
            ]),
            screen: pi2_interface::ScreenSpec::default(),
        }
    }
}
