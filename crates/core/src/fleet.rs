//! Fleet-wide generation sharing: one cache of generated interfaces for
//! every session in the process.
//!
//! At fleet scale, `generate` is the capacity bottleneck (hundreds of
//! milliseconds under storm versus tens of microseconds per gesture), and
//! most of that work is redundant: thousands of users replaying the same
//! tutorial produce identical — or literal-only-different — query logs,
//! and PI2's interface is a deterministic function of the log's
//! *structural* diffs. So one *search* per **fingerprint** suffices for
//! the whole process. Literal values are not structural, but they are
//! also not free to share: hole defaults and un-widened discrete domains
//! come from the observed literals, so a caller whose log differs only in
//! literals is served a **respecialization** — the cached partition
//! replayed over the caller's own queries (see
//! [`FleetOutcome::Rebind`]) — never the leader's literal-bearing
//! artifacts verbatim.
//!
//! [`FleetHandle`] is the one shared-state object behind a single `Arc`:
//!
//! * a **generation cache** keyed by `(context, log)` fingerprint — the
//!   context covers everything besides the log that the outcome depends
//!   on (catalog version, cost weights, screen, strategy, budget), the
//!   log fingerprint is order-insensitive over the literal-free
//!   normalized queries ([`log_fingerprint`]);
//! * the **cost memo** ([`CostMemo`]) shared by every attached generator,
//!   replacing the deprecated per-[`Pi2`](crate::Pi2) memo wiring;
//! * a **single-flight** table: N concurrent generations of the same
//!   fingerprint elect one leader, and the rest block on (and are handed)
//!   the leader's result instead of repeating the search;
//! * an **admission limiter** capping concurrent *cold* generations.
//!   Overflow is never queued: it runs immediately under the clamped
//!   [`FleetConfig::overflow_budget`] and is truthfully labeled
//!   [`DegradationLevel::Anytime`](crate::DegradationLevel::Anytime).
//!
//! Attach a handle with [`Pi2Builder::fleet`](crate::Pi2Builder::fleet):
//!
//! ```
//! use pi2_core::prelude::*;
//!
//! let fleet = FleetHandle::new(FleetConfig::new());
//! let catalog = pi2_datasets::toy::default_catalog();
//! let log = ["SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
//!            "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p"];
//!
//! let cold = Pi2::builder(catalog.clone()).fleet(&fleet).build().generate_sql(&log).unwrap();
//! // A second session (even another literal spelling) reuses the work.
//! let warm = Pi2::builder(catalog).fleet(&fleet).build().generate_sql(&log).unwrap();
//! assert_eq!(warm.interface, cold.interface);
//! assert_eq!(fleet.counters().hits, 1);
//! ```
//!
//! Only [`DegradationLevel::Full`](crate::DegradationLevel::Full) results
//! are admitted to the cache: a degraded (anytime or fallback) interface
//! is served to the requests that raced with it, but never pinned where
//! it would shadow the full-quality result forever.

use crate::pipeline::{DegradationLevel, Pi2Error};
use pi2_cost::{combine_fingerprints, CostBreakdown, CostMemo};
use pi2_difftree::DiffForest;
use pi2_interface::Interface;
use pi2_sql::Query;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Order-insensitive fingerprint of a query log's interface-relevant
/// structure.
///
/// Each query is normalized with its literals erased
/// ([`pi2_sql::literal_free`]) and hashed; the per-query hashes are then
/// sorted and combined, so cell order never splits the cache (the cached
/// generation carries its own canonical query snapshot) while
/// multiplicity still counts — a log that repeats a query is not the log
/// that states it once. This generalizes the PR 4 result-cache key (one
/// normalized query's structural hash) and the order-insensitive
/// [`DiffForest::structural_hash`]: literal variation folds into the
/// widget binding domain instead of the key.
pub fn log_fingerprint(queries: &[Query]) -> u64 {
    let mut hashes: Vec<u64> =
        queries.iter().map(|q| pi2_sql::literal_free(q).structural_hash()).collect();
    hashes.sort_unstable();
    combine_fingerprints(&hashes)
}

/// A fleet cache key: `(context fingerprint, log fingerprint)`. The
/// context half is built by the generator from its catalog version, cost
/// weights, screen, strategy, merged budget, and degradation mode; see
/// [`combine_fingerprints`].
pub type FleetKey = (u64, u64);

/// Configuration for a [`FleetHandle`]. Builder-style and
/// `#[non_exhaustive]`: construct with [`FleetConfig::new`] (or
/// `Default`) and chain setters.
///
/// ```
/// use pi2_core::prelude::*;
/// use std::time::Duration;
///
/// let cfg = FleetConfig::new()
///     .capacity(4096)
///     .max_concurrent_cold(4)
///     .follower_wait(Some(Duration::from_secs(5)));
/// let fleet = FleetHandle::new(cfg);
/// assert!(fleet.is_empty());
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Cached generations retained (least-recently-used eviction).
    pub capacity: usize,
    /// Cap on concurrent cold generations for this handle. Leaders beyond
    /// the cap are **shed**: they still run immediately (no queueing) but
    /// under [`FleetConfig::overflow_budget`], and their result is labeled
    /// [`DegradationLevel::Anytime`](crate::DegradationLevel::Anytime).
    /// `0` sheds every cold generation (useful for tests and drain).
    pub max_concurrent_cold: usize,
    /// Budget clamped onto shed generations (tightest limit wins).
    pub overflow_budget: pi2_mcts::GenerationBudget,
    /// How long a single-flight follower waits for its leader before
    /// giving up and generating privately. `None` waits indefinitely.
    pub follower_wait: Option<Duration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            capacity: 1024,
            max_concurrent_cold: pi2_mcts::default_workers(),
            overflow_budget: pi2_mcts::GenerationBudget::with_deadline(Duration::from_millis(25)),
            follower_wait: Some(Duration::from_secs(10)),
        }
    }
}

impl FleetConfig {
    /// The default configuration (alias for `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the cache capacity (entries).
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Set the concurrent cold-generation cap.
    pub fn max_concurrent_cold(mut self, cap: usize) -> Self {
        self.max_concurrent_cold = cap;
        self
    }

    /// Set the budget clamped onto shed (over-admission) generations.
    pub fn overflow_budget(mut self, budget: pi2_mcts::GenerationBudget) -> Self {
        self.overflow_budget = budget;
        self
    }

    /// Set how long single-flight followers wait for their leader.
    pub fn follower_wait(mut self, wait: Option<Duration>) -> Self {
        self.follower_wait = wait;
        self
    }
}

/// How the fleet cache participated in one `generate` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetOutcome {
    /// Served from the generation cache; no search ran.
    Hit,
    /// This call led a cold generation (and published it).
    Miss,
    /// This call joined another call's in-flight generation.
    Join,
    /// This call led a cold generation but was shed by admission control:
    /// it ran under the overflow budget and reports `Anytime`.
    Shed,
    /// Served by respecializing a cached generation: the caller's log
    /// shares the entry's literal-free fingerprint but differs in literal
    /// values (or order), so the cached *partition* was replayed over the
    /// caller's own queries — no search ran, and no other session's
    /// literals were served.
    Rebind,
    /// This call followed an in-flight leader but gave up waiting
    /// ([`FleetConfig::follower_wait`]) and generated privately.
    JoinTimeout,
}

impl std::fmt::Display for FleetOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetOutcome::Hit => write!(f, "hit"),
            FleetOutcome::Miss => write!(f, "miss"),
            FleetOutcome::Join => write!(f, "join"),
            FleetOutcome::Shed => write!(f, "shed"),
            FleetOutcome::Rebind => write!(f, "rebind"),
            FleetOutcome::JoinTimeout => write!(f, "join-timeout"),
        }
    }
}

/// A point-in-time snapshot of a handle's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FleetCounters {
    /// Generations served verbatim from the cache (the caller's log is
    /// exactly the cached snapshot).
    pub hits: u64,
    /// Cold generations led (each one ran the full pipeline once).
    pub misses: u64,
    /// Calls that joined an in-flight leader instead of searching.
    pub joins: u64,
    /// Cold generations shed by admission control (subset of `misses`).
    pub sheds: u64,
    /// Generations served by respecializing a cached entry onto the
    /// caller's own literals ([`FleetOutcome::Rebind`]).
    pub rebinds: u64,
    /// Followers that gave up waiting on their leader and generated
    /// privately ([`FleetOutcome::JoinTimeout`]).
    pub join_timeouts: u64,
    /// Generations currently cached.
    pub entries: usize,
}

/// The complete cached outcome of one full-quality generation. The query
/// snapshot, forest, and interface are the *leader's*: they are served
/// verbatim only to callers whose log equals the snapshot exactly.
/// Literal-variant and reordered logs map to the same key but are served
/// a respecialization built from the forest's partition and the caller's
/// own queries ([`FleetOutcome::Rebind`]), so one session's literals
/// never reach another.
#[derive(Debug)]
pub struct CachedGeneration {
    /// The leader's query snapshot.
    pub queries: Vec<Query>,
    /// The DiffTree forest behind the interface.
    pub forest: DiffForest,
    /// The generated interface.
    pub interface: Interface,
    /// Its cost breakdown.
    pub cost: CostBreakdown,
    /// Candidates the winning search considered.
    pub candidates_considered: usize,
}

/// What a single-flight leader publishes to its followers: the generated
/// artifacts plus the truthful degradation label (followers of a shed or
/// fallen-back leader must not report `Full`).
#[derive(Debug, Clone)]
pub(crate) struct FlightOutcome {
    pub(crate) generation: Arc<CachedGeneration>,
    pub(crate) degradation: DegradationLevel,
    pub(crate) degradation_reason: Option<String>,
}

enum FlightState {
    Pending,
    Done(Result<FlightOutcome, Pi2Error>),
}

/// One in-flight generation that followers can wait on.
pub(crate) struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { state: Mutex::new(FlightState::Pending), cv: Condvar::new() }
    }

    fn publish(&self, result: Result<FlightOutcome, Pi2Error>) {
        *lock(&self.state) = FlightState::Done(result);
        self.cv.notify_all();
    }

    /// Wait for the leader's result; `None` on timeout.
    fn wait(&self, timeout: Option<Duration>) -> Option<Result<FlightOutcome, Pi2Error>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = lock(&self.state);
        loop {
            if let FlightState::Done(result) = &*state {
                return Some(result.clone());
            }
            state = match deadline {
                None => self.cv.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner),
                Some(d) => {
                    let remaining = d.checked_duration_since(Instant::now())?;
                    self.cv
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0
                }
            };
        }
    }
}

/// The role [`FleetHandle::begin`] assigns a generation request.
pub(crate) enum Role {
    /// The cache filled between lookup and election; use this result.
    Cached(Arc<CachedGeneration>),
    /// This request leads: run the generation, then publish through the
    /// lease.
    Lead(FlightLease),
    /// Another request is already generating this key; wait on it.
    Follow(Arc<Flight>),
}

/// A leader's obligation to publish. If dropped without publishing (the
/// generation path panicked past its own isolation), followers are woken
/// with an error instead of hanging forever.
pub(crate) struct FlightLease {
    inner: Arc<FleetInner>,
    key: FleetKey,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightLease {
    /// Publish the leader's result: cache it when it is full-quality,
    /// retire the flight, and wake every follower.
    pub(crate) fn publish(mut self, result: &Result<FlightOutcome, Pi2Error>) {
        self.published = true;
        if let Ok(outcome) = result {
            if outcome.degradation == DegradationLevel::Full {
                self.inner.insert(self.key, Arc::clone(&outcome.generation));
            }
        }
        lock(&self.inner.inflight).remove(&self.key);
        self.flight.publish(result.clone());
    }
}

impl Drop for FlightLease {
    fn drop(&mut self) {
        if !self.published {
            lock(&self.inner.inflight).remove(&self.key);
            self.flight.publish(Err(Pi2Error::WorkerPanic(
                "single-flight leader abandoned the generation".to_string(),
            )));
        }
    }
}

/// An admission permit for one cold generation; dropping it releases the
/// slot. [`None`](Option::None) from [`FleetHandle::admit`] means the
/// request was shed.
pub(crate) struct ColdPermit {
    inner: Arc<FleetInner>,
}

impl Drop for ColdPermit {
    fn drop(&mut self) {
        self.inner.cold_in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

struct FleetInner {
    config: FleetConfig,
    memo: Arc<CostMemo>,
    /// `key -> (last-use tick, generation)`; scanned for the oldest tick
    /// on eviction (capacities are small enough that O(n) eviction is
    /// cheaper than threading a list through the map).
    cache: Mutex<HashMap<FleetKey, (u64, Arc<CachedGeneration>)>>,
    tick: AtomicU64,
    inflight: Mutex<HashMap<FleetKey, Arc<Flight>>>,
    cold_in_flight: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    joins: AtomicU64,
    sheds: AtomicU64,
    rebinds: AtomicU64,
    join_timeouts: AtomicU64,
}

impl FleetInner {
    fn insert(&self, key: FleetKey, generation: Arc<CachedGeneration>) {
        if self.config.capacity == 0 {
            return;
        }
        let mut cache = lock(&self.cache);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        cache.insert(key, (tick, generation));
        while cache.len() > self.config.capacity {
            if let Some(oldest) = cache.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k) {
                cache.remove(&oldest);
            } else {
                break;
            }
        }
    }
}

/// The process-wide shared state for interface generation: generation
/// cache, cost memo, single-flight table, and admission limiter behind
/// one `Arc`. Clone the handle freely — clones share everything. See the
/// [module docs](self) for the full story.
#[derive(Clone)]
pub struct FleetHandle {
    inner: Arc<FleetInner>,
    wait: Option<Duration>,
}

impl Default for FleetHandle {
    fn default() -> Self {
        Self::new(FleetConfig::default())
    }
}

impl FleetHandle {
    /// A fresh handle with its own cache, memo, and limiter.
    pub fn new(config: FleetConfig) -> Self {
        let wait = config.follower_wait;
        FleetHandle {
            inner: Arc::new(FleetInner {
                config,
                memo: Arc::new(CostMemo::new()),
                cache: Mutex::new(HashMap::new()),
                tick: AtomicU64::new(0),
                inflight: Mutex::new(HashMap::new()),
                cold_in_flight: AtomicUsize::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                joins: AtomicU64::new(0),
                sheds: AtomicU64::new(0),
                rebinds: AtomicU64::new(0),
                join_timeouts: AtomicU64::new(0),
            }),
            wait,
        }
    }

    /// A clone of this handle whose single-flight followers wait at most
    /// `wait` (`None` = indefinitely) — shared state is untouched, so a
    /// server can honor a per-session `wait_ms` without forking the cache.
    pub fn with_follower_wait(mut self, wait: Option<Duration>) -> Self {
        self.wait = wait;
        self
    }

    /// The cost memo shared by every generator attached to this handle.
    pub fn memo(&self) -> &Arc<CostMemo> {
        &self.inner.memo
    }

    /// The handle's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.inner.config
    }

    /// Point-in-time counters.
    pub fn counters(&self) -> FleetCounters {
        FleetCounters {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            joins: self.inner.joins.load(Ordering::Relaxed),
            sheds: self.inner.sheds.load(Ordering::Relaxed),
            rebinds: self.inner.rebinds.load(Ordering::Relaxed),
            join_timeouts: self.inner.join_timeouts.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Cached generations.
    pub fn len(&self) -> usize {
        lock(&self.inner.cache).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached generation (counters are kept).
    pub fn clear(&self) {
        lock(&self.inner.cache).clear();
    }

    /// Cache lookup, refreshing recency. How the serve is counted (hit,
    /// rebind, or fall-through miss) is decided by the caller once it
    /// knows how the entry relates to its log — see [`FleetHandle::note_hit`].
    pub(crate) fn lookup(&self, key: FleetKey) -> Option<Arc<CachedGeneration>> {
        let mut cache = lock(&self.inner.cache);
        let entry = cache.get_mut(&key)?;
        entry.0 = self.inner.tick.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.1))
    }

    /// Count a verbatim cache serve ([`FleetOutcome::Hit`]).
    pub(crate) fn note_hit(&self) {
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a respecialized cache serve ([`FleetOutcome::Rebind`]).
    pub(crate) fn note_rebind(&self) {
        self.inner.rebinds.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a cold generation that ran outside leader election (a cached
    /// entry existed but could not serve the caller's log).
    pub(crate) fn note_miss(&self) {
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Elect a role for `key`: leader (with a publish lease), follower of
    /// the current leader, or — when the leader finished between the
    /// caller's cache miss and this call — the freshly cached result.
    /// The cache re-check and flight insertion happen under one lock, so
    /// exactly one generation runs per fingerprint.
    pub(crate) fn begin(&self, key: FleetKey) -> Role {
        let mut inflight = lock(&self.inner.inflight);
        if let Some(flight) = inflight.get(&key) {
            return Role::Follow(Arc::clone(flight));
        }
        // `publish` caches before retiring the flight (both under this
        // lock), so a missing flight with a cached entry is authoritative.
        if let Some(entry) = lock(&self.inner.cache).get(&key) {
            return Role::Cached(Arc::clone(&entry.1));
        }
        let flight = Arc::new(Flight::new());
        inflight.insert(key, Arc::clone(&flight));
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        Role::Lead(FlightLease { inner: Arc::clone(&self.inner), key, flight, published: false })
    }

    /// Try to admit one cold generation under the concurrency cap.
    /// `None` means the request is shed (it must run with the overflow
    /// budget and report `Anytime`) — overflow never queues.
    pub(crate) fn admit(&self) -> Option<ColdPermit> {
        let cap = self.inner.config.max_concurrent_cold;
        let admitted = self
            .inner
            .cold_in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < cap).then_some(n + 1))
            .is_ok();
        if admitted {
            Some(ColdPermit { inner: Arc::clone(&self.inner) })
        } else {
            self.inner.sheds.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Wait on another leader's flight. The join is counted only once the
    /// flight yields a result; a follower that gives up first is counted
    /// as a join timeout instead (it never consumed the leader's work).
    pub(crate) fn join(&self, flight: &Arc<Flight>) -> Option<Result<FlightOutcome, Pi2Error>> {
        let result = flight.wait(self.wait);
        match result {
            Some(_) => self.inner.joins.fetch_add(1, Ordering::Relaxed),
            None => self.inner.join_timeouts.fetch_add(1, Ordering::Relaxed),
        };
        result
    }
}

impl std::fmt::Debug for FleetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetHandle")
            .field("config", &self.inner.config)
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_sql::parse_query;

    fn q(sql: &str) -> Query {
        parse_query(sql).unwrap()
    }

    #[test]
    fn log_fingerprint_folds_literals_and_order() {
        let a = [
            q("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p"),
            q("SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p"),
        ];
        // Different literals, different cell order: same fingerprint.
        let b = [
            q("SELECT p, count(*) FROM t WHERE a = 9 GROUP BY p"),
            q("SELECT p, count(*) FROM t WHERE a = 4 GROUP BY p"),
        ];
        assert_eq!(log_fingerprint(&a), log_fingerprint(&b));

        // A structural difference (another grouping column) splits it.
        let c = [
            q("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p"),
            q("SELECT b, count(*) FROM t WHERE a = 2 GROUP BY b"),
        ];
        assert_ne!(log_fingerprint(&a), log_fingerprint(&c));

        // Multiplicity counts: [q] vs [q, q] are different logs.
        let one = [q("SELECT x FROM t WHERE a = 1")];
        let two = [q("SELECT x FROM t WHERE a = 1"), q("SELECT x FROM t WHERE a = 2")];
        assert_ne!(log_fingerprint(&one), log_fingerprint(&two));
    }

    #[test]
    fn lru_evicts_the_oldest_entry() {
        let handle = FleetHandle::new(FleetConfig::new().capacity(2));
        let generation = || {
            Arc::new(CachedGeneration {
                queries: Vec::new(),
                forest: DiffForest { trees: Vec::new() },
                interface: Interface {
                    charts: Vec::new(),
                    widgets: Vec::new(),
                    layout: pi2_interface::Layout::Vertical(Vec::new()),
                    screen: pi2_interface::ScreenSpec::default(),
                },
                cost: CostBreakdown {
                    expressive: true,
                    viz: 0.0,
                    interaction: 0.0,
                    layout: 0.0,
                    views: 0.0,
                    generalization: 0.0,
                    total: 0.0,
                },
                candidates_considered: 0,
            })
        };
        handle.inner.insert((0, 1), generation());
        handle.inner.insert((0, 2), generation());
        assert!(handle.lookup((0, 1)).is_some()); // refresh 1: 2 is now oldest
        handle.inner.insert((0, 3), generation());
        assert_eq!(handle.len(), 2);
        assert!(handle.lookup((0, 2)).is_none());
        assert!(handle.lookup((0, 1)).is_some());
        assert!(handle.lookup((0, 3)).is_some());
    }

    #[test]
    fn admission_cap_sheds_overflow_without_queueing() {
        let handle = FleetHandle::new(FleetConfig::new().max_concurrent_cold(2));
        let a = handle.admit();
        let b = handle.admit();
        assert!(a.is_some() && b.is_some());
        // Third concurrent cold generation: shed immediately.
        assert!(handle.admit().is_none());
        assert_eq!(handle.counters().sheds, 1);
        drop(a);
        // Releasing a permit re-opens the slot.
        assert!(handle.admit().is_some());
    }

    #[test]
    fn join_counts_only_after_the_flight_yields() {
        let handle = FleetHandle::new(FleetConfig::new().follower_wait(Some(Duration::ZERO)));
        let key = (3, 3);
        let Role::Lead(lease) = handle.begin(key) else { panic!("expected leadership") };
        let Role::Follow(flight) = handle.begin(key) else { panic!("expected follower") };
        // The leader is still working: a zero-patience follower times out
        // and is counted as such, never as a join.
        assert!(handle.join(&flight).is_none());
        let c = handle.counters();
        assert_eq!((c.joins, c.join_timeouts), (0, 1));
        // Once the flight yields (here: the leader's abandonment error),
        // waiting on it counts as a join.
        drop(lease);
        assert!(matches!(handle.join(&flight), Some(Err(_))));
        let c = handle.counters();
        assert_eq!((c.joins, c.join_timeouts), (1, 1));
    }

    #[test]
    fn abandoned_leader_wakes_followers_with_an_error() {
        let handle = FleetHandle::new(FleetConfig::new());
        let key = (7, 7);
        let Role::Lead(lease) = handle.begin(key) else { panic!("expected leadership") };
        let Role::Follow(flight) = handle.begin(key) else { panic!("expected follower") };
        drop(lease); // leader dies without publishing
        match flight.wait(Some(Duration::from_secs(5))) {
            Some(Err(Pi2Error::WorkerPanic(_))) => {}
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The flight is retired; the next request leads afresh.
        assert!(matches!(handle.begin(key), Role::Lead(_)));
    }
}
