//! The interactive session runtime.
//!
//! This is the reproduction's stand-in for the browser: an event-driven
//! loop in which every widget or visualization gesture updates choice-node
//! bindings, re-instantiates SQL from the DiffTrees, re-executes it, and
//! returns fresh chart data. The full interactivity loop of the paper —
//! *"the user can simply drag and scroll on the visualization to
//! manipulate the ra and dec ranges and receive immediate visual
//! feedback"* — is exercised headlessly through [`InterfaceSession::dispatch`].

use pi2_difftree::{Binding, Bindings, DiffForest, Domain, NodeKind};
use pi2_engine::{Catalog, DeltaCache, DeltaOutcome, ResultSet};
use pi2_interface::{ChartId, Interface, Target, VizInteraction, WidgetId, WidgetKind};
use pi2_sql::{Date, Literal, Query};
use pi2_telemetry::LatencyHistogram;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A value delivered by a widget event.
#[derive(Debug, Clone, PartialEq)]
pub enum WidgetValue {
    /// Option index for radio / button group / dropdown / tabs.
    Pick(usize),
    /// Toggle state.
    Bool(bool),
    /// Slider position (dates use day numbers).
    Scalar(f64),
    /// Range-slider positions.
    Range(f64, f64),
    /// Free-form literal (text input).
    Literal(Literal),
    /// Per-option inclusion flags for a multi-select.
    Multi(Vec<bool>),
}

/// An interface event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Operate a widget.
    SetWidget {
        /// The widget the event addresses.
        widget: WidgetId,
        /// The event's value.
        value: WidgetValue,
    },
    /// Brush a range along a chart's x axis (dates as day numbers).
    Brush {
        /// The chart the event addresses.
        chart: ChartId,
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (inclusive).
        high: f64,
    },
    /// Pan a chart by (dx, dy) in data units.
    Pan {
        /// The chart the event addresses.
        chart: ChartId,
        /// Horizontal pan distance in data units.
        dx: f64,
        /// Vertical pan distance in data units.
        dy: f64,
    },
    /// Zoom a chart by a factor around the current view center
    /// (`factor < 1` zooms in, `> 1` zooms out).
    Zoom {
        /// The chart the event addresses.
        chart: ChartId,
        /// Zoom factor (<1 zooms in).
        factor: f64,
    },
    /// Click a mark on a chart; `value` is the clicked x value.
    Click {
        /// The chart the event addresses.
        chart: ChartId,
        /// The event's value.
        value: Literal,
    },
}

impl Event {
    /// The event's class name ("set_widget", "brush", "pan", "zoom",
    /// "click"), used to key per-class latency histograms in
    /// [`SessionStats`] and benchmark reports.
    pub fn class(&self) -> &'static str {
        match self {
            Event::SetWidget { .. } => "set_widget",
            Event::Brush { .. } => "brush",
            Event::Pan { .. } => "pan",
            Event::Zoom { .. } => "zoom",
            Event::Click { .. } => "click",
        }
    }
}

/// Session errors.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SessionError {
    /// No widget with that id.
    UnknownWidget(WidgetId),
    /// No chart with that id.
    UnknownChart(ChartId),
    /// The chart has no interaction that can consume the event.
    NoInteraction(ChartId, &'static str),
    /// The widget got a value of the wrong shape.
    WrongValue(String),
    /// The value falls outside the choice node's domain.
    OutOfDomain(String),
    /// Internal: lowering or execution failed.
    Internal(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownWidget(w) => write!(f, "unknown widget {w}"),
            SessionError::UnknownChart(c) => write!(f, "unknown chart {c}"),
            SessionError::NoInteraction(c, kind) => {
                write!(f, "chart {c} has no {kind} interaction")
            }
            SessionError::WrongValue(m) => write!(f, "wrong value: {m}"),
            SessionError::OutOfDomain(m) => write!(f, "out of domain: {m}"),
            SessionError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}
impl std::error::Error for SessionError {}

/// The live display state of one widget (see
/// [`InterfaceSession::widget_states`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WidgetState {
    /// Selected option index (radio / button group / dropdown / tabs, and
    /// discrete-domain holes).
    Picked(usize),
    /// Toggle position.
    Toggled(bool),
    /// Current value of a single-value hole.
    Value(Literal),
    /// Current (low, high) of a range pair.
    Range(Literal, Literal),
    /// Per-option inclusion flags of a multi-select.
    Flags(Vec<bool>),
    /// State could not be determined.
    Unknown,
}

/// Fresh data for one chart after an event.
#[derive(Debug, Clone)]
pub struct ChartUpdate {
    /// The chart the event addresses.
    pub chart: ChartId,
    /// The SQL the chart now shows (also displayed in the demo's query
    /// panel).
    pub query: Query,
    /// Result, shared with the session's result cache so a warm dispatch
    /// hands back the cached rows without copying them.
    pub result: Arc<ResultSet>,
}

/// How a session executes chart queries (see
/// [`SessionBuilder::exec_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Consult the session's bound-query result cache first; execute
    /// (columnar fast path where eligible) only on a miss. The default.
    #[default]
    Cached,
    /// Always execute, letting the engine pick its columnar fast path.
    /// Used to measure cold-path dispatch latency.
    ColumnarUncached,
    /// Always execute on the row-at-a-time reference interpreter. Used as
    /// the pre-optimization baseline in benchmarks.
    ReferenceUncached,
}

/// Counters and per-event-class dispatch latency for one session.
///
/// Returned by [`InterfaceSession::stats`]; reset-free (counts accumulate
/// for the session's lifetime).
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Successfully dispatched events.
    pub dispatches: u64,
    /// Bound-query result-cache hits ([`ExecMode::Cached`] only).
    pub cache_hits: u64,
    /// Bound-query result-cache misses ([`ExecMode::Cached`] only).
    pub cache_misses: u64,
    /// Instantiated-query memo hits (lowering skipped).
    pub query_memo_hits: u64,
    /// Instantiated-query memo misses (query lowered from the tree).
    pub query_memo_misses: u64,
    /// Cache misses satisfied by incremental (delta) recomputation: only
    /// the blocks a bound shift could affect were re-evaluated
    /// ([`ExecMode::Cached`] only).
    pub delta_hits: u64,
    /// Cache misses that seeded the delta cache with a full mask
    /// ([`ExecMode::Cached`] only).
    pub delta_seeds: u64,
    /// Chart updates returned across all dispatches.
    pub charts_updated: u64,
    /// Charts skipped because their tree's bindings did not change.
    pub charts_skipped: u64,
    /// Dispatch latency per event class (see [`Event::class`]).
    pub latency: BTreeMap<&'static str, LatencyHistogram>,
}

impl SessionStats {
    /// Render as a JSON object (flat counters plus a `latency` object of
    /// per-event-class histograms).
    pub fn to_json(&self) -> String {
        let latency: Vec<String> =
            self.latency.iter().map(|(k, h)| format!("\"{k}\":{}", h.to_json())).collect();
        format!(
            "{{\"dispatches\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"query_memo_hits\":{},\"query_memo_misses\":{},\
             \"delta_hits\":{},\"delta_seeds\":{},\
             \"charts_updated\":{},\"charts_skipped\":{},\"latency\":{{{}}}}}",
            self.dispatches,
            self.cache_hits,
            self.cache_misses,
            self.query_memo_hits,
            self.query_memo_misses,
            self.delta_hits,
            self.delta_seeds,
            self.charts_updated,
            self.charts_skipped,
            latency.join(",")
        )
    }
}

/// Bound-query result cache: least-recently-used over 64-bit keys derived
/// from the *normalized* instantiated query's structural hash, so two
/// binding states that lower to semantically identical SQL share an entry.
#[derive(Debug, Default)]
struct ResultCache {
    map: HashMap<u64, (u64, Arc<ResultSet>)>,
    tick: u64,
}

impl ResultCache {
    /// Entries kept before the least-recently-used one is evicted. Sized
    /// for interaction sessions: a brush/pan storm revisits far fewer than
    /// this many distinct binding states.
    const CAPACITY: usize = 256;

    fn get(&mut self, key: u64) -> Option<Arc<ResultSet>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|slot| {
            slot.0 = tick;
            Arc::clone(&slot.1)
        })
    }

    fn insert(&mut self, key: u64, result: Arc<ResultSet>) {
        if self.map.len() >= Self::CAPACITY && !self.map.contains_key(&key) {
            if let Some(oldest) = self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k) {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, result));
    }
}

/// Interior-mutable session state: caches and counters that read-side APIs
/// (`query_for_chart`, `refresh_all`) update through `&self`.
#[derive(Debug, Default)]
struct SessionState {
    /// Instantiated query per (tree index, bindings fingerprint): skips
    /// re-lowering when an event returns a tree to a previously seen
    /// binding state. Cleared wholesale past [`Self::QUERY_MEMO_CAP`].
    query_memo: HashMap<(usize, u64), Query>,
    result_cache: ResultCache,
    /// Selection masks from previous dispatches, keyed by query template:
    /// lets a pan/zoom/brush that only shifts range bounds re-evaluate
    /// only the affected zone-map blocks (see [`pi2_engine::DeltaCache`]).
    delta_cache: DeltaCache,
    stats: SessionStats,
    /// Retained scene graph + delta history, initialized lazily by the
    /// first `scene_*` call (see [`crate::scene`]).
    scene: Option<crate::scene::SceneState>,
}

impl SessionState {
    const QUERY_MEMO_CAP: usize = 1024;
}

/// Builder for [`InterfaceSession`].
///
/// Without [`queries`](SessionBuilder::queries), trees start at their
/// structural defaults; with it, each tree starts at the witness bindings
/// of its first source query — guaranteeing the initial view shows real
/// queries even for merges of structurally different queries.
/// [`GeneratedInterface::session`](crate::pipeline::GeneratedInterface::session)
/// is the usual shortcut for sessions over generated interfaces.
pub struct SessionBuilder<'a> {
    catalog: Catalog,
    forest: DiffForest,
    interface: Interface,
    log: Option<&'a [Query]>,
    mode: ExecMode,
}

impl<'a> SessionBuilder<'a> {
    /// Start building a session driving `interface` over `forest`,
    /// executing against `catalog`.
    pub fn new(catalog: Catalog, forest: DiffForest, interface: Interface) -> Self {
        Self { catalog, forest, interface, log: None, mode: ExecMode::default() }
    }

    /// Initialize each tree's bindings from the witness bindings of its
    /// first source query in `log` instead of structural defaults.
    pub fn queries(mut self, log: &'a [Query]) -> Self {
        self.log = Some(log);
        self
    }

    /// Choose how chart queries are executed (default:
    /// [`ExecMode::Cached`]).
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Build the session.
    pub fn build(self) -> InterfaceSession {
        let bindings = match self.log {
            Some(log) => {
                self.forest.trees.iter().map(|t| pi2_difftree::default_bindings(t, log)).collect()
            }
            None => vec![Bindings::new(); self.forest.trees.len()],
        };
        InterfaceSession {
            catalog: self.catalog,
            forest: self.forest,
            interface: self.interface,
            bindings,
            history: Vec::new(),
            mode: self.mode,
            state: RefCell::new(SessionState::default()),
        }
    }
}

/// A live interface: catalog + forest + interface + current bindings.
pub struct InterfaceSession {
    catalog: Catalog,
    forest: DiffForest,
    interface: Interface,
    /// Current bindings, per tree.
    bindings: Vec<Bindings>,
    /// Event log (for tests, demos, and the notebook's provenance panel).
    history: Vec<Event>,
    /// How chart queries execute (see [`ExecMode`]).
    mode: ExecMode,
    /// Caches and counters (interior-mutable: `query_for_chart` and
    /// `refresh_all` memoize through `&self`).
    state: RefCell<SessionState>,
}

impl InterfaceSession {
    /// The interface being driven.
    pub fn interface(&self) -> &Interface {
        &self.interface
    }

    /// The dispatched-event log.
    pub fn history(&self) -> &[Event] {
        &self.history
    }

    /// Current bindings for tree `t`.
    pub fn bindings(&self, t: usize) -> Option<&Bindings> {
        self.bindings.get(t)
    }

    /// The current display state of every widget: (widget id, state), in
    /// interface order. Used by renderers to show live widget positions.
    pub fn widget_states(&self) -> Vec<(WidgetId, WidgetState)> {
        self.interface
            .widgets
            .iter()
            .map(|w| {
                let state = self.widget_state(w).unwrap_or(WidgetState::Unknown);
                (w.id, state)
            })
            .collect()
    }

    fn widget_state(&self, w: &pi2_interface::Widget) -> Result<WidgetState, SessionError> {
        if let WidgetKind::MultiSelect { .. } = &w.kind {
            let mut flags = Vec::with_capacity(w.targets.len());
            for t in &w.targets {
                let on = match self.tree_bindings(t.tree)?.get(t.node) {
                    Some(Binding::Include(b)) => *b,
                    _ => true,
                };
                flags.push(on);
            }
            return Ok(WidgetState::Flags(flags));
        }
        let target = Self::widget_target(w, 0)?;
        match self.node_kind(target)? {
            NodeKind::Any => {
                let pick = match self.tree_bindings(target.tree)?.get(target.node) {
                    Some(Binding::Pick(i)) => *i,
                    _ => 0,
                };
                Ok(WidgetState::Picked(pick))
            }
            NodeKind::Opt => {
                let on = match self.tree_bindings(target.tree)?.get(target.node) {
                    Some(Binding::Include(b)) => *b,
                    _ => true,
                };
                Ok(WidgetState::Toggled(on))
            }
            NodeKind::Hole { domain, default, .. } => {
                let value = match self.tree_bindings(target.tree)?.get(target.node) {
                    Some(Binding::Value(l)) => l.clone(),
                    _ => default,
                };
                // A discrete-domain widget (radio/dropdown over a hole)
                // reports the picked index; continuous ones the value(s).
                if let Domain::Discrete(items) = &domain {
                    if !matches!(w.kind, WidgetKind::Slider { .. } | WidgetKind::RangeSlider { .. })
                    {
                        let idx = items.iter().position(|l| *l == value).unwrap_or(0);
                        return Ok(WidgetState::Picked(idx));
                    }
                }
                if w.targets.len() == 2 {
                    let hi_target = Self::widget_target(w, 1)?;
                    let hi = match self.tree_bindings(hi_target.tree)?.get(hi_target.node) {
                        Some(Binding::Value(l)) => l.clone(),
                        _ => match self.node_kind(hi_target)? {
                            NodeKind::Hole { default, .. } => default,
                            _ => value.clone(),
                        },
                    };
                    Ok(WidgetState::Range(value, hi))
                } else {
                    Ok(WidgetState::Value(value))
                }
            }
            other => Err(SessionError::Internal(format!("widget target is {other:?}"))),
        }
    }

    /// Execution counters and dispatch-latency histograms accumulated so
    /// far (a snapshot; the live counters keep accumulating).
    pub fn stats(&self) -> SessionStats {
        self.state.borrow().stats.clone()
    }

    /// The session's execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// The SQL query a chart currently shows.
    ///
    /// Memoized per (tree, bindings fingerprint): returning to a
    /// previously seen binding state (toggling a filter back on, panning
    /// back) skips re-lowering the DiffTree.
    pub fn query_for_chart(&self, chart: ChartId) -> Result<Query, SessionError> {
        let c = self
            .interface
            .charts
            .iter()
            .find(|c| c.id == chart)
            .ok_or(SessionError::UnknownChart(chart))?;
        let key = (c.tree, self.tree_bindings(c.tree)?.fingerprint());
        {
            let mut st = self.state.borrow_mut();
            if let Some(q) = st.query_memo.get(&key) {
                let q = q.clone();
                st.stats.query_memo_hits += 1;
                return Ok(q);
            }
            st.stats.query_memo_misses += 1;
        }
        let tree = self.forest.trees.get(c.tree).ok_or_else(|| {
            SessionError::Internal(format!("chart {chart} references missing tree {}", c.tree))
        })?;
        let query = pi2_difftree::lower_query(tree, self.tree_bindings(c.tree)?)
            .map_err(|e| SessionError::Internal(e.to_string()))?;
        let mut st = self.state.borrow_mut();
        if st.query_memo.len() >= SessionState::QUERY_MEMO_CAP {
            st.query_memo.clear();
        }
        st.query_memo.insert(key, query.clone());
        Ok(query)
    }

    /// Execute and return every chart's current data.
    pub fn refresh_all(&self) -> Result<Vec<ChartUpdate>, SessionError> {
        self.updates_for(self.interface.charts.iter().map(|c| c.id).collect())
    }

    /// Dispatch one event; returns updates for every chart whose underlying
    /// query changed.
    ///
    /// Dependency tracking: a chart re-executes only when the event
    /// actually *changed* a binding one of its tree's choice nodes reads —
    /// events that restate the current value (zero-delta pan, re-picking
    /// the selected option) update nothing.
    pub fn dispatch(&mut self, event: Event) -> Result<Vec<ChartUpdate>, SessionError> {
        let started = Instant::now();
        let class = event.class();
        let changed_trees = match &event {
            Event::SetWidget { widget, value } => self.apply_widget(*widget, value)?,
            Event::Brush { chart, low, high } => self.apply_brush(*chart, *low, *high)?,
            Event::Pan { chart, dx, dy } => self.apply_panzoom(*chart, Gesture::Pan(*dx, *dy))?,
            Event::Zoom { chart, factor } => self.apply_panzoom(*chart, Gesture::Zoom(*factor))?,
            Event::Click { chart, value } => self.apply_click(*chart, value)?,
        };
        self.history.push(event);
        let charts: Vec<ChartId> = self
            .interface
            .charts
            .iter()
            .filter(|c| changed_trees.contains(&c.tree))
            .map(|c| c.id)
            .collect();
        let skipped = self.interface.charts.len() - charts.len();
        let updates = self.updates_for(charts)?;
        let mut st = self.state.borrow_mut();
        st.stats.dispatches += 1;
        st.stats.charts_updated += updates.len() as u64;
        st.stats.charts_skipped += skipped as u64;
        st.stats.latency.entry(class).or_default().record(started.elapsed());
        Ok(updates)
    }

    /// [`InterfaceSession::dispatch`], additionally syncing the retained
    /// scene graph: returns the chart updates together with the damage
    /// delta the event caused (if any). This is the streaming path behind
    /// the server's `render_delta` endpoint.
    pub fn dispatch_with_delta(
        &mut self,
        event: Event,
    ) -> Result<(Vec<ChartUpdate>, Option<crate::scene::SceneDelta>), SessionError> {
        let updates = self.dispatch(event)?;
        let delta = self.scene_sync()?;
        Ok((updates, delta))
    }

    /// Bring the retained scene graph up to date with the session's
    /// current bindings, returning the damage delta when anything changed.
    /// Initializes the scene (at version 1, with no delta) on first call.
    pub fn scene_sync(&self) -> Result<Option<crate::scene::SceneDelta>, SessionError> {
        let fresh = self.scene_build()?;
        let mut st = self.state.borrow_mut();
        match st.scene.as_mut() {
            Some(scene) => Ok(scene.sync(fresh)),
            None => {
                st.scene = Some(crate::scene::SceneState::new(fresh));
                Ok(None)
            }
        }
    }

    /// Current scene version: 0 before the scene is initialized, then the
    /// monotone counter [`crate::scene::SceneState::version`].
    pub fn scene_version(&self) -> u64 {
        self.state.borrow().scene.as_ref().map(|s| s.version()).unwrap_or(0)
    }

    /// A full snapshot of the retained scene (synced first) and its
    /// version — what a client starts from before consuming deltas.
    pub fn scene_snapshot(&self) -> Result<(crate::scene::SceneGraph, u64), SessionError> {
        self.scene_sync()?;
        let st = self.state.borrow();
        let scene = st
            .scene
            .as_ref()
            .ok_or_else(|| SessionError::Internal("scene state missing after sync".into()))?;
        Ok((scene.graph().clone(), scene.version()))
    }

    /// Catch a client up from scene version `since` (synced first): either
    /// a contiguous run of deltas or a full-snapshot resync when `since`
    /// is stale or unknown.
    pub fn scene_deltas_since(
        &self,
        since: u64,
    ) -> Result<crate::scene::SceneCatchup, SessionError> {
        self.scene_sync()?;
        let st = self.state.borrow();
        let scene = st
            .scene
            .as_ref()
            .ok_or_else(|| SessionError::Internal("scene state missing after sync".into()))?;
        Ok(scene.deltas_since(since))
    }

    /// Build a fresh scene from the current session state, reusing the
    /// retained scene's nodes for charts whose cached result is unchanged.
    fn scene_build(&self) -> Result<crate::scene::SceneGraph, SessionError> {
        let updates = self.refresh_all()?;
        let states = self.widget_states();
        let st = self.state.borrow();
        Ok(crate::scene::SceneGraph::build_with_prev(
            &self.interface,
            &updates,
            &states,
            st.scene.as_ref().map(|s| s.graph()),
        ))
    }

    fn updates_for(&self, charts: Vec<ChartId>) -> Result<Vec<ChartUpdate>, SessionError> {
        charts
            .into_iter()
            .map(|id| {
                let query = self.query_for_chart(id)?;
                let result = self.execute_for_session(&query)?;
                Ok(ChartUpdate { chart: id, query, result })
            })
            .collect()
    }

    /// Execute one chart query according to the session's [`ExecMode`].
    ///
    /// In [`ExecMode::Cached`], the cache key is the structural hash of the
    /// *normalized* query, so binding states that lower to semantically
    /// identical SQL (modulo normalization) share an entry. Errors are
    /// never cached.
    fn execute_for_session(&self, query: &Query) -> Result<Arc<ResultSet>, SessionError> {
        let internal = |e: pi2_engine::EngineError| SessionError::Internal(e.to_string());
        match self.mode {
            ExecMode::ReferenceUncached => {
                self.catalog.execute_reference(query).map(Arc::new).map_err(internal)
            }
            ExecMode::ColumnarUncached => {
                self.catalog.execute_uncached(query).map(Arc::new).map_err(internal)
            }
            ExecMode::Cached => {
                let key = pi2_sql::normalize::normalized(query).structural_hash();
                {
                    let mut st = self.state.borrow_mut();
                    if let Some(hit) = st.result_cache.get(key) {
                        st.stats.cache_hits += 1;
                        return Ok(hit);
                    }
                    st.stats.cache_misses += 1;
                }
                // On a miss, try incremental recomputation first: a gesture
                // that only shifted range bounds re-evaluates just the
                // affected blocks of the previous dispatch's mask.
                let delta = {
                    let mut st = self.state.borrow_mut();
                    let SessionState { delta_cache, stats, .. } = &mut *st;
                    let attempt = self.catalog.execute_delta(query, delta_cache);
                    match &attempt {
                        Some((_, DeltaOutcome::Incremental { .. })) => stats.delta_hits += 1,
                        Some((_, DeltaOutcome::Seeded)) => stats.delta_seeds += 1,
                        None => {}
                    }
                    attempt
                };
                let result = match delta {
                    Some((res, _)) => Arc::new(res.map_err(internal)?),
                    None => Arc::new(self.catalog.execute_uncached(query).map_err(internal)?),
                };
                self.state.borrow_mut().result_cache.insert(key, Arc::clone(&result));
                Ok(result)
            }
        }
    }

    // ---- binding helpers ----------------------------------------------------

    /// Bindings of tree `tree`, as a session error (instead of a panic)
    /// when an interface references a tree the forest doesn't have.
    fn tree_bindings(&self, tree: usize) -> Result<&Bindings, SessionError> {
        self.bindings
            .get(tree)
            .ok_or_else(|| SessionError::Internal(format!("no bindings for tree {tree}")))
    }

    fn tree_bindings_mut(&mut self, tree: usize) -> Result<&mut Bindings, SessionError> {
        self.bindings
            .get_mut(tree)
            .ok_or_else(|| SessionError::Internal(format!("no bindings for tree {tree}")))
    }

    /// The `i`th binding target of a widget, as a session error when the
    /// mapper produced fewer targets than the widget kind requires.
    fn widget_target(w: &pi2_interface::Widget, i: usize) -> Result<Target, SessionError> {
        w.targets
            .get(i)
            .copied()
            .ok_or_else(|| SessionError::Internal(format!("widget {} has no target {i}", w.id)))
    }

    fn node_kind(&self, t: Target) -> Result<NodeKind, SessionError> {
        self.forest
            .trees
            .get(t.tree)
            .and_then(|tree| tree.root.find(t.node))
            .map(|n| n.kind.clone())
            .ok_or_else(|| SessionError::Internal(format!("no node {t:?}")))
    }

    /// The current f64 view of a hole's value (bindings or default).
    fn hole_value_f64(&self, t: Target) -> Result<f64, SessionError> {
        let lit = match self.tree_bindings(t.tree)?.get(t.node) {
            Some(Binding::Value(l)) => l.clone(),
            _ => match self.node_kind(t)? {
                NodeKind::Hole { default, .. } => default,
                other => {
                    return Err(SessionError::Internal(format!(
                        "target {t:?} is {other:?}, not a hole"
                    )))
                }
            },
        };
        literal_to_f64(&lit)
            .ok_or_else(|| SessionError::WrongValue(format!("{lit} is not numeric")))
    }

    /// Bind a hole to the clamped f64 `v`; returns whether the effective
    /// value changed.
    fn bind_hole_f64(&mut self, t: Target, v: f64) -> Result<bool, SessionError> {
        let NodeKind::Hole { domain, .. } = self.node_kind(t)? else {
            return Err(SessionError::Internal(format!("target {t:?} is not a hole")));
        };
        let lit = literal_from_f64_clamped(&domain, v).ok_or_else(|| {
            SessionError::OutOfDomain(format!("cannot place {v} into {domain:?}"))
        })?;
        self.apply_binding(t, Binding::Value(lit))
    }

    /// The binding a node falls back to when none is set explicitly
    /// (mirrors the lowering defaults: first `Any` child, `Opt` included,
    /// `Hole` default).
    fn default_binding(&self, t: Target) -> Result<Binding, SessionError> {
        Ok(match self.node_kind(t)? {
            NodeKind::Any => Binding::Pick(0),
            NodeKind::Opt => Binding::Include(true),
            NodeKind::Hole { default, .. } => Binding::Value(default),
            other => {
                return Err(SessionError::Internal(format!(
                    "target {t:?} is {other:?}, not a choice node"
                )))
            }
        })
    }

    /// Set `t`'s binding, returning whether the *effective* value changed.
    /// Restating the current value (explicit or default) is a no-op, so
    /// dispatch can skip re-executing charts whose queries cannot have
    /// changed.
    fn apply_binding(&mut self, t: Target, b: Binding) -> Result<bool, SessionError> {
        let current = match self.tree_bindings(t.tree)?.get(t.node) {
            Some(cur) => cur.clone(),
            None => self.default_binding(t)?,
        };
        if current == b {
            return Ok(false);
        }
        self.tree_bindings_mut(t.tree)?.set(t.node, b);
        Ok(true)
    }

    // ---- event application ----------------------------------------------------

    fn apply_widget(
        &mut self,
        id: WidgetId,
        value: &WidgetValue,
    ) -> Result<BTreeSet<usize>, SessionError> {
        let widget = self
            .interface
            .widgets
            .iter()
            .find(|w| w.id == id)
            .ok_or(SessionError::UnknownWidget(id))?
            .clone();
        let mut changed = BTreeSet::new();
        match (&widget.kind, value) {
            (
                WidgetKind::Radio { options }
                | WidgetKind::ButtonGroup { options }
                | WidgetKind::Dropdown { options }
                | WidgetKind::Tabs { options },
                WidgetValue::Pick(i),
            ) => {
                if *i >= options.len() {
                    return Err(SessionError::WrongValue(format!(
                        "pick {i} out of {} options",
                        options.len()
                    )));
                }
                let target = Self::widget_target(&widget, 0)?;
                let binding = match self.node_kind(target)? {
                    NodeKind::Any => Binding::Pick(*i),
                    NodeKind::Hole { domain: Domain::Discrete(items), .. } => {
                        let lit = items.get(*i).ok_or_else(|| {
                            SessionError::WrongValue(format!("pick {i} outside domain"))
                        })?;
                        Binding::Value(lit.clone())
                    }
                    other => {
                        return Err(SessionError::Internal(format!(
                            "discrete widget bound to {other:?}"
                        )))
                    }
                };
                if self.apply_binding(target, binding)? {
                    changed.insert(target.tree);
                }
            }
            (WidgetKind::Toggle, WidgetValue::Bool(b)) => {
                let target = Self::widget_target(&widget, 0)?;
                if self.apply_binding(target, Binding::Include(*b))? {
                    changed.insert(target.tree);
                }
            }
            (WidgetKind::Slider { .. }, WidgetValue::Scalar(v)) => {
                let target = Self::widget_target(&widget, 0)?;
                if self.bind_hole_f64(target, *v)? {
                    changed.insert(target.tree);
                }
            }
            (WidgetKind::RangeSlider { .. }, WidgetValue::Range(lo, hi)) => {
                let (lo, hi) = if lo <= hi { (*lo, *hi) } else { (*hi, *lo) };
                let (tl, th) = (Self::widget_target(&widget, 0)?, Self::widget_target(&widget, 1)?);
                if self.bind_hole_f64(tl, lo)? {
                    changed.insert(tl.tree);
                }
                if self.bind_hole_f64(th, hi)? {
                    changed.insert(th.tree);
                }
            }
            (WidgetKind::MultiSelect { options }, WidgetValue::Multi(flags)) => {
                if flags.len() != options.len() || flags.len() != widget.targets.len() {
                    return Err(SessionError::WrongValue(format!(
                        "multi-select expects {} flags, got {}",
                        options.len(),
                        flags.len()
                    )));
                }
                for (t, flag) in widget.targets.iter().zip(flags) {
                    if self.apply_binding(*t, Binding::Include(*flag))? {
                        changed.insert(t.tree);
                    }
                }
            }
            (WidgetKind::TextInput, WidgetValue::Literal(l)) => {
                let target = Self::widget_target(&widget, 0)?;
                let NodeKind::Hole { domain, .. } = self.node_kind(target)? else {
                    return Err(SessionError::Internal("text input without hole".into()));
                };
                if !domain.contains(l) {
                    return Err(SessionError::OutOfDomain(format!("{l} not in {domain:?}")));
                }
                if self.apply_binding(target, Binding::Value(l.clone()))? {
                    changed.insert(target.tree);
                }
            }
            (kind, v) => {
                return Err(SessionError::WrongValue(format!(
                    "widget {} cannot take {v:?}",
                    kind.kind_name()
                )))
            }
        }
        Ok(changed)
    }

    fn apply_brush(
        &mut self,
        chart: ChartId,
        low: f64,
        high: f64,
    ) -> Result<BTreeSet<usize>, SessionError> {
        let c = self
            .interface
            .charts
            .iter()
            .find(|c| c.id == chart)
            .ok_or(SessionError::UnknownChart(chart))?;
        let brushes: Vec<(Target, Target)> = c
            .interactions
            .iter()
            .filter_map(|i| match i {
                VizInteraction::BrushX { low, high, .. } => Some((*low, *high)),
                _ => None,
            })
            .collect();
        if brushes.is_empty() {
            return Err(SessionError::NoInteraction(chart, "brush"));
        }
        let (lo, hi) = if low <= high { (low, high) } else { (high, low) };
        let mut changed = BTreeSet::new();
        for (tl, th) in brushes {
            if self.bind_hole_f64(tl, lo)? {
                changed.insert(tl.tree);
            }
            if self.bind_hole_f64(th, hi)? {
                changed.insert(th.tree);
            }
        }
        Ok(changed)
    }

    fn apply_click(
        &mut self,
        chart: ChartId,
        value: &Literal,
    ) -> Result<BTreeSet<usize>, SessionError> {
        let c = self
            .interface
            .charts
            .iter()
            .find(|c| c.id == chart)
            .ok_or(SessionError::UnknownChart(chart))?;
        let targets: Vec<Target> = c
            .interactions
            .iter()
            .filter_map(|i| match i {
                VizInteraction::ClickBind { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        if targets.is_empty() {
            return Err(SessionError::NoInteraction(chart, "click"));
        }
        let mut changed = BTreeSet::new();
        for t in targets {
            let NodeKind::Hole { domain, .. } = self.node_kind(t)? else {
                return Err(SessionError::Internal("click target is not a hole".into()));
            };
            if !domain.contains(value) {
                return Err(SessionError::OutOfDomain(format!("{value} not in {domain:?}")));
            }
            if self.apply_binding(t, Binding::Value(value.clone()))? {
                changed.insert(t.tree);
            }
        }
        Ok(changed)
    }

    fn apply_panzoom(
        &mut self,
        chart: ChartId,
        gesture: Gesture,
    ) -> Result<BTreeSet<usize>, SessionError> {
        let c = self
            .interface
            .charts
            .iter()
            .find(|c| c.id == chart)
            .ok_or(SessionError::UnknownChart(chart))?;
        type AxisPair = Option<(Target, Target)>;
        let pz: Vec<(AxisPair, AxisPair)> = c
            .interactions
            .iter()
            .filter_map(|i| match i {
                VizInteraction::PanZoom { x, y, .. } => Some((*x, *y)),
                _ => None,
            })
            .collect();
        if pz.is_empty() {
            return Err(SessionError::NoInteraction(chart, "pan-zoom"));
        }
        let mut changed = BTreeSet::new();
        for (x, y) in pz {
            for (axis_pair, delta) in [(x, gesture.dx()), (y, gesture.dy())] {
                let Some((tl, th)) = axis_pair else { continue };
                let lo = self.hole_value_f64(tl)?;
                let hi = self.hole_value_f64(th)?;
                let (new_lo, new_hi) = match gesture {
                    Gesture::Pan(..) => (lo + delta, hi + delta),
                    Gesture::Zoom(factor) => {
                        let center = (lo + hi) / 2.0;
                        let half = (hi - lo) / 2.0 * factor;
                        (center - half, center + half)
                    }
                };
                // Clamp into the hole's domain, preserving the window width
                // under pan where possible.
                let NodeKind::Hole { domain, .. } = self.node_kind(tl)? else {
                    return Err(SessionError::Internal("pan target is not a hole".into()));
                };
                let (new_lo, new_hi) =
                    clamp_window(&domain, new_lo, new_hi, matches!(gesture, Gesture::Pan(..)));
                if self.bind_hole_f64(tl, new_lo)? {
                    changed.insert(tl.tree);
                }
                if self.bind_hole_f64(th, new_hi)? {
                    changed.insert(th.tree);
                }
            }
        }
        Ok(changed)
    }
}

#[derive(Clone, Copy)]
enum Gesture {
    Pan(f64, f64),
    Zoom(f64),
}

impl Gesture {
    fn dx(self) -> f64 {
        match self {
            Gesture::Pan(dx, _) => dx,
            Gesture::Zoom(_) => 0.0,
        }
    }
    fn dy(self) -> f64 {
        match self {
            Gesture::Pan(_, dy) => dy,
            Gesture::Zoom(_) => 0.0,
        }
    }
}

/// Domain bounds as f64, for continuous domains.
fn domain_bounds(domain: &Domain) -> Option<(f64, f64)> {
    match domain {
        Domain::IntRange { min, max } => Some((*min as f64, *max as f64)),
        Domain::FloatRange { min, max } => Some((min.0, max.0)),
        Domain::DateRange { min, max } => Some((min.0 as f64, max.0 as f64)),
        Domain::Discrete(_) => None,
    }
}

/// Clamp a (lo, hi) window into the domain; when `preserve_width`, slide
/// the whole window instead of shrinking it.
fn clamp_window(domain: &Domain, lo: f64, hi: f64, preserve_width: bool) -> (f64, f64) {
    let Some((dmin, dmax)) = domain_bounds(domain) else { return (lo, hi) };
    let width = (hi - lo).min(dmax - dmin);
    if preserve_width {
        let mut lo = lo;
        if lo < dmin {
            lo = dmin;
        }
        if lo + width > dmax {
            lo = dmax - width;
        }
        (lo, lo + width)
    } else {
        (lo.max(dmin), hi.min(dmax))
    }
}

fn literal_to_f64(l: &Literal) -> Option<f64> {
    match l {
        Literal::Int(v) => Some(*v as f64),
        Literal::Float(f) => Some(f.0),
        Literal::Date(d) => Some(d.0 as f64),
        _ => None,
    }
}

/// Convert an f64 back into a literal of the domain's type, clamped into
/// the domain.
fn literal_from_f64_clamped(domain: &Domain, v: f64) -> Option<Literal> {
    match domain {
        Domain::IntRange { min, max } => Some(Literal::Int((v.round() as i64).clamp(*min, *max))),
        Domain::FloatRange { min, max } => {
            Some(Literal::Float(pi2_sql::F64(v.clamp(min.0, max.0))))
        }
        Domain::DateRange { min, max } => {
            Some(Literal::Date(Date((v.round() as i32).clamp(min.0, max.0))))
        }
        Domain::Discrete(items) => {
            // Nearest numeric item, if the domain is numeric.
            items
                .iter()
                .filter_map(|l| literal_to_f64(l).map(|f| (l, f)))
                .min_by(|a, b| (a.1 - v).abs().total_cmp(&(b.1 - v).abs()))
                .map(|(l, _)| l.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pi2, SearchStrategy};

    fn sdss_session() -> (Pi2, crate::pipeline::GeneratedInterface) {
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 400, seed: 3 });
        let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
        let queries: Vec<String> =
            pi2_datasets::sdss::demo_queries().iter().map(|q| q.to_string()).collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let g = pi2.generate_sql(&refs).unwrap();
        (pi2, g)
    }

    #[test]
    fn panzoom_updates_region_query() {
        let (pi2, g) = sdss_session();
        let mut s = pi2.session(&g);
        let before = s.query_for_chart(0).unwrap().to_string();
        let updates = s.dispatch(Event::Pan { chart: 0, dx: 1.0, dy: 0.5 }).unwrap();
        assert_eq!(updates.len(), 1);
        let after = updates[0].query.to_string();
        assert_ne!(before, after, "pan did not change the query");
        // Zoom out widens the window.
        let u2 = s.dispatch(Event::Zoom { chart: 0, factor: 2.0 }).unwrap();
        assert_ne!(u2[0].query.to_string(), after);
    }

    #[test]
    fn pan_clamps_to_domain() {
        let (pi2, g) = sdss_session();
        let mut s = pi2.session(&g);
        // A huge pan must clamp, not error, and still produce a valid query.
        let updates = s.dispatch(Event::Pan { chart: 0, dx: 1e9, dy: -1e9 }).unwrap();
        assert_eq!(updates.len(), 1);
    }

    #[test]
    fn history_records_events() {
        let (pi2, g) = sdss_session();
        let mut s = pi2.session(&g);
        s.dispatch(Event::Pan { chart: 0, dx: 0.1, dy: 0.0 }).unwrap();
        s.dispatch(Event::Zoom { chart: 0, factor: 0.5 }).unwrap();
        assert_eq!(s.history().len(), 2);
    }

    #[test]
    fn toggle_and_buttons_drive_fig4_interface() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
                "SELECT a, count(*) FROM t GROUP BY a",
            ])
            .unwrap();
        let mut s = pi2.session(&g);
        // Find a toggle; switch it off — the WHERE clause disappears.
        let toggle = g
            .interface
            .widgets
            .iter()
            .find(|w| matches!(w.kind, WidgetKind::Toggle))
            .expect("toggle widget")
            .id;
        let updates = s
            .dispatch(Event::SetWidget { widget: toggle, value: WidgetValue::Bool(false) })
            .unwrap();
        assert!(!updates.is_empty());
        assert!(
            !updates[0].query.to_string().contains("WHERE"),
            "toggle off should drop the filter: {}",
            updates[0].query
        );
        let updates = s
            .dispatch(Event::SetWidget { widget: toggle, value: WidgetValue::Bool(true) })
            .unwrap();
        assert!(updates[0].query.to_string().contains("WHERE"));
    }

    #[test]
    fn wrong_widget_value_is_error() {
        let (pi2, g) = sdss_session();
        let mut s = pi2.session(&g);
        if let Some(w) = g.interface.widgets.first() {
            let r = s.dispatch(Event::SetWidget { widget: w.id, value: WidgetValue::Bool(true) });
            // SDSS interface has sliders in the widget variant or none at all.
            let _ = r;
        }
        assert!(matches!(
            s.dispatch(Event::Brush { chart: 999, low: 0.0, high: 1.0 }),
            Err(SessionError::UnknownChart(999))
        ));
        assert!(matches!(
            s.dispatch(Event::SetWidget { widget: 999, value: WidgetValue::Bool(true) }),
            Err(SessionError::UnknownWidget(999))
        ));
    }

    /// The Figure 5 scenario built by hand: two trees, one chart with a
    /// click binding. Returns the session and the clickable chart's id.
    fn fig5_click_session() -> (InterfaceSession, ChartId) {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig5_queries();
        let merged = pi2_difftree::DiffForest::fully_merged(&queries[..2]);
        let single = pi2_difftree::DiffForest::singletons(&queries[2..]);
        let mut forest = pi2_difftree::DiffForest {
            trees: vec![merged.trees[0].clone(), single.trees[0].clone()],
        };
        for t in &mut forest.trees {
            *t = pi2_difftree::rules::canonicalize(t, Some(&catalog));
        }
        let ifaces = pi2_interface::map_forest(
            &forest,
            &catalog,
            &queries,
            &pi2_interface::MapperConfig::default(),
        )
        .unwrap();
        let iface = ifaces
            .into_iter()
            .find(|i| {
                i.charts.iter().any(|c| {
                    c.interactions.iter().any(|x| matches!(x, VizInteraction::ClickBind { .. }))
                })
            })
            .expect("click-bind interface");
        let click_chart = iface
            .charts
            .iter()
            .find(|c| c.interactions.iter().any(|x| matches!(x, VizInteraction::ClickBind { .. })))
            .unwrap()
            .id;
        (SessionBuilder::new(catalog, forest, iface).build(), click_chart)
    }

    #[test]
    fn click_binding_roundtrip() {
        let (mut s, click_chart) = fig5_click_session();
        let updates =
            s.dispatch(Event::Click { chart: click_chart, value: Literal::Int(3) }).unwrap();
        assert!(!updates.is_empty());
        assert!(
            updates.iter().any(|u| u.query.to_string().contains("a = 3")),
            "{:?}",
            updates.iter().map(|u| u.query.to_string()).collect::<Vec<_>>()
        );
    }

    /// The COVID overview/detail scenario: brushing chart 0 drives the
    /// detail chart's date window.
    fn covid_brush_session() -> InterfaceSession {
        let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
            state_limit: Some(6),
            ..Default::default()
        });
        let queries = pi2_datasets::covid::demo_queries_step(3);
        let overview = pi2_difftree::DiffForest::singletons(&queries[..1]);
        let detail = pi2_difftree::DiffForest::fully_merged(&queries[1..3]);
        let mut forest = pi2_difftree::DiffForest {
            trees: vec![overview.trees[0].clone(), detail.trees[0].clone()],
        };
        for t in &mut forest.trees {
            *t = pi2_difftree::rules::canonicalize(t, Some(&catalog));
        }
        let ifaces = pi2_interface::map_forest(
            &forest,
            &catalog,
            &queries,
            &pi2_interface::MapperConfig::default(),
        )
        .unwrap();
        let iface = ifaces
            .into_iter()
            .find(|i| {
                i.charts.iter().any(|c| {
                    c.interactions.iter().any(|x| matches!(x, VizInteraction::BrushX { .. }))
                })
            })
            .expect("brush interface");
        SessionBuilder::new(catalog, forest, iface).build()
    }

    #[test]
    fn brush_on_overview_updates_detail() {
        let mut s = covid_brush_session();
        // Brush 2021-12-05 .. 2021-12-10 on the overview (chart 0).
        let lo = pi2_sql::Date::parse("2021-12-05").unwrap().0 as f64;
        let hi = pi2_sql::Date::parse("2021-12-10").unwrap().0 as f64;
        let updates = s.dispatch(Event::Brush { chart: 0, low: lo, high: hi }).unwrap();
        // Only the detail chart updates.
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].chart, 1);
        let q = updates[0].query.to_string();
        assert!(q.contains("2021-12-05") && q.contains("2021-12-10"), "{q}");
        // The returned data is confined to the brushed window.
        for row in &updates[0].result.rows {
            if let pi2_engine::Value::Date(d) = &row[0] {
                assert!(d.0 >= lo as i32 && d.0 <= hi as i32);
            }
        }
    }

    // ---- result cache / dependency tracking -------------------------------

    #[test]
    fn zero_delta_pan_skips_all_charts() {
        let (pi2, g) = sdss_session();
        let mut s = pi2.session(&g);
        s.dispatch(Event::Pan { chart: 0, dx: 0.25, dy: 0.125 }).unwrap();
        let updates = s.dispatch(Event::Pan { chart: 0, dx: 0.0, dy: 0.0 }).unwrap();
        assert!(updates.is_empty(), "zero-delta pan must not re-execute charts");
        let st = s.stats();
        assert_eq!(st.dispatches, 2);
        assert!(st.charts_skipped >= 1, "{st:?}");
    }

    #[test]
    fn pan_cycle_hits_result_cache_and_query_memo() {
        let (pi2, g) = sdss_session();
        let mut s = pi2.session(&g);
        s.refresh_all().unwrap();
        let st0 = s.stats();
        s.dispatch(Event::Pan { chart: 0, dx: 0.25, dy: 0.0 }).unwrap();
        s.dispatch(Event::Pan { chart: 0, dx: -0.25, dy: 0.0 }).unwrap();
        let st = s.stats();
        assert!(st.cache_hits > st0.cache_hits, "panning back must hit the result cache: {st:?}");
        assert!(
            st.query_memo_hits > st0.query_memo_hits,
            "panning back must hit the query memo: {st:?}"
        );
    }

    #[test]
    fn zoom_invalidates_cached_result() {
        let (pi2, g) = sdss_session();
        let mut s = pi2.session(&g);
        s.refresh_all().unwrap();
        let miss0 = s.stats().cache_misses;
        let updates = s.dispatch(Event::Zoom { chart: 0, factor: 2.0 }).unwrap();
        assert!(!updates.is_empty());
        assert!(s.stats().cache_misses > miss0, "zoom must miss the cache and re-execute");
    }

    #[test]
    fn toggle_cycle_hits_result_cache_and_restating_skips() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
                "SELECT a, count(*) FROM t GROUP BY a",
            ])
            .unwrap();
        let mut s = pi2.session(&g);
        s.refresh_all().unwrap();
        let toggle = g
            .interface
            .widgets
            .iter()
            .find(|w| matches!(w.kind, WidgetKind::Toggle))
            .expect("toggle widget")
            .id;
        s.dispatch(Event::SetWidget { widget: toggle, value: WidgetValue::Bool(false) }).unwrap();
        let st1 = s.stats();
        let updates = s
            .dispatch(Event::SetWidget { widget: toggle, value: WidgetValue::Bool(true) })
            .unwrap();
        assert!(!updates.is_empty());
        let st2 = s.stats();
        assert!(st2.cache_hits > st1.cache_hits, "toggling back must hit the result cache");
        // Restating the current toggle state updates nothing.
        let updates = s
            .dispatch(Event::SetWidget { widget: toggle, value: WidgetValue::Bool(true) })
            .unwrap();
        assert!(updates.is_empty(), "same-value toggle must not re-execute charts");
    }

    #[test]
    fn brush_cycle_hits_result_cache_and_rebrush_skips() {
        let mut s = covid_brush_session();
        let day = |d: &str| pi2_sql::Date::parse(d).unwrap().0 as f64;
        let (a, b) = (day("2021-12-05"), day("2021-12-10"));
        s.dispatch(Event::Brush { chart: 0, low: a, high: b }).unwrap();
        let st1 = s.stats();
        s.dispatch(Event::Brush { chart: 0, low: day("2021-12-12"), high: day("2021-12-20") })
            .unwrap();
        let st2 = s.stats();
        assert!(st2.cache_misses > st1.cache_misses, "new brush window must miss the cache");
        s.dispatch(Event::Brush { chart: 0, low: a, high: b }).unwrap();
        let st3 = s.stats();
        assert!(st3.cache_hits > st2.cache_hits, "returning brush window must hit the cache");
        let updates = s.dispatch(Event::Brush { chart: 0, low: a, high: b }).unwrap();
        assert!(updates.is_empty(), "re-brushing the same window must not re-execute charts");
    }

    #[test]
    fn click_cycle_hits_result_cache_and_reclick_skips() {
        let (mut s, chart) = fig5_click_session();
        s.dispatch(Event::Click { chart, value: Literal::Int(3) }).unwrap();
        let st1 = s.stats();
        s.dispatch(Event::Click { chart, value: Literal::Int(4) }).unwrap();
        let st2 = s.stats();
        assert!(st2.cache_misses > st1.cache_misses, "new click value must miss the cache");
        s.dispatch(Event::Click { chart, value: Literal::Int(3) }).unwrap();
        let st3 = s.stats();
        assert!(st3.cache_hits > st2.cache_hits, "returning click value must hit the cache");
        let updates = s.dispatch(Event::Click { chart, value: Literal::Int(3) }).unwrap();
        assert!(updates.is_empty(), "re-clicking the same value must not re-execute charts");
    }

    #[test]
    fn exec_modes_agree_and_uncached_modes_skip_cache() {
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 400, seed: 3 });
        let pi2 = Pi2::builder(catalog.clone()).strategy(SearchStrategy::FullMerge).build();
        let queries: Vec<String> =
            pi2_datasets::sdss::demo_queries().iter().map(|q| q.to_string()).collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let g = pi2.generate_sql(&refs).unwrap();
        let mut per_mode = Vec::new();
        for mode in [ExecMode::Cached, ExecMode::ColumnarUncached, ExecMode::ReferenceUncached] {
            let mut s = SessionBuilder::new(catalog.clone(), g.forest.clone(), g.interface.clone())
                .queries(&g.queries)
                .exec_mode(mode)
                .build();
            assert_eq!(s.exec_mode(), mode);
            s.refresh_all().unwrap();
            let updates = s.dispatch(Event::Pan { chart: 0, dx: 0.25, dy: 0.125 }).unwrap();
            let st = s.stats();
            if mode == ExecMode::Cached {
                assert!(st.cache_misses > 0);
            } else {
                assert_eq!((st.cache_hits, st.cache_misses), (0, 0), "{mode:?} must not cache");
            }
            let shape: Vec<(String, Vec<Vec<pi2_engine::Value>>)> =
                updates.iter().map(|u| (u.query.to_string(), u.result.rows.clone())).collect();
            per_mode.push(shape);
        }
        assert_eq!(per_mode[0], per_mode[1], "cached vs columnar-uncached disagree");
        assert_eq!(per_mode[0], per_mode[2], "cached vs reference-uncached disagree");
    }

    #[test]
    fn stats_json_has_counters_and_latency() {
        let (pi2, g) = sdss_session();
        let mut s = pi2.session(&g);
        s.dispatch(Event::Pan { chart: 0, dx: 0.25, dy: 0.0 }).unwrap();
        let json = s.stats().to_json();
        assert!(json.contains("\"dispatches\":1"), "{json}");
        assert!(json.contains("\"pan\":{\"count\":1"), "{json}");
        assert!(json.contains("\"cache_misses\""), "{json}");
    }
}
