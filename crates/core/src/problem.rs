//! The interface-search problem: DiffTree forests as MCTS states.
//!
//! States are [`DiffForest`]s (partitions of the query log into merged
//! trees); actions are forest-level merges/splits and tree-level
//! transformation rules; the reward is the negated cost of the best
//! interface candidate the mapper produces for the state. Collapse and
//! domain-generalization rules are applied eagerly after every action
//! (they are always beneficial — see [`pi2_difftree::rules::canonicalize`]),
//! which keeps the searched space to the decisions that actually trade off
//! against each other: partitioning and structural factoring.

use pi2_cost::{choose_best, CostWeights};
use pi2_difftree::rules::{self, Rule};
use pi2_difftree::{DiffForest, NodeId};
use pi2_engine::Catalog;
use pi2_interface::{map_forest, MapperConfig};
use pi2_mcts::SearchProblem;
use pi2_sql::Query;

/// An action on a forest state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestAction {
    /// Apply transformation rule `rule` at node `loc` of tree `tree`.
    Rule {
        /// Index of the DiffTree this element binds into.
        tree: usize,
        /// Rule.
        rule: usize,
        /// Node id the rule applies at.
        loc: NodeId,
    },
    /// Merge trees `i` and `j`.
    Merge(usize, usize),
    /// Split tree `i` back into per-query trees.
    Split(usize),
}

/// The search problem over DiffTree forests.
pub struct InterfaceSearch<'a> {
    /// The input query log.
    pub queries: &'a [Query],
    /// Catalog.
    pub catalog: &'a Catalog,
    /// Mapper cfg.
    pub mapper_cfg: MapperConfig,
    /// Weights.
    pub weights: CostWeights,
    rules: Vec<Box<dyn Rule>>,
}

impl<'a> InterfaceSearch<'a> {
    /// Construct from parts.
    pub fn new(
        queries: &'a [Query],
        catalog: &'a Catalog,
        mapper_cfg: MapperConfig,
        weights: CostWeights,
    ) -> Self {
        let rules = rules::all_rules(Some(catalog.clone()));
        Self { queries, catalog, mapper_cfg, weights, rules }
    }

    /// Canonicalize every tree of a forest (collapse + generalize).
    pub fn canonicalized(&self, mut forest: DiffForest) -> DiffForest {
        for tree in &mut forest.trees {
            *tree = rules::canonicalize(tree, Some(self.catalog));
        }
        forest
    }

    /// The searched rule subset: structural rules only (normalization rules
    /// run eagerly instead).
    fn searched_rules(&self) -> impl Iterator<Item = (usize, &Box<dyn Rule>)> {
        self.rules.iter().enumerate().filter(|(_, r)| {
            r.name() != "collapse-literal-any" && r.name() != "generalize-hole-domain"
        })
    }
}

impl<'a> SearchProblem for InterfaceSearch<'a> {
    type State = DiffForest;
    type Action = ForestAction;

    fn initial(&self) -> DiffForest {
        // Paper Figure 6 step ①: parse the log into (singleton) DiffTrees.
        self.canonicalized(DiffForest::singletons(self.queries))
    }

    fn actions(&self, state: &DiffForest) -> Vec<ForestAction> {
        let mut out = Vec::new();
        for i in 0..state.trees.len() {
            for j in (i + 1)..state.trees.len() {
                out.push(ForestAction::Merge(i, j));
            }
        }
        for (ti, tree) in state.trees.iter().enumerate() {
            if tree.source_queries.len() > 1 {
                out.push(ForestAction::Split(ti));
            }
            for (ri, rule) in self.searched_rules() {
                for loc in rule.applications(tree) {
                    out.push(ForestAction::Rule { tree: ti, rule: ri, loc });
                }
            }
        }
        out
    }

    fn apply(&self, state: &DiffForest, action: &ForestAction) -> Option<DiffForest> {
        match action {
            ForestAction::Merge(i, j) => {
                state.merge_pair(*i, *j).map(|f| self.canonicalized(f))
            }
            ForestAction::Split(i) => state.split_tree(*i, self.queries),
            ForestAction::Rule { tree, rule, loc } => {
                let t = state.trees.get(*tree)?;
                let new_tree = self.rules.get(*rule)?.apply(t, *loc)?;
                let mut f = state.clone();
                f.trees[*tree] = rules::canonicalize(&new_tree, Some(self.catalog));
                Some(f)
            }
        }
    }

    fn reward(&self, state: &DiffForest) -> f64 {
        let Ok(candidates) = map_forest(state, self.catalog, self.queries, &self.mapper_cfg) else {
            return f64::NEG_INFINITY;
        };
        match choose_best(&candidates, state, self.queries, self.catalog, &self.weights) {
            Some((_, breakdown)) if breakdown.total.is_finite() => -breakdown.total,
            _ => f64::NEG_INFINITY,
        }
    }

    fn state_key(&self, state: &DiffForest) -> u64 {
        state.structural_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_mcts::{greedy, mcts, MctsConfig};

    fn search_for<'a>(queries: &'a [Query], catalog: &'a Catalog) -> InterfaceSearch<'a> {
        // Borrow lifetimes force constructing in the caller; helper kept for
        // readability at call sites.
        InterfaceSearch::new(queries, catalog, MapperConfig::default(), CostWeights::default())
    }

    #[test]
    fn initial_state_is_canonicalized_singletons() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = InterfaceSearch::new(&queries, &catalog, MapperConfig::default(), CostWeights::default());
        let s = p.initial();
        assert_eq!(s.trees.len(), 3);
    }

    #[test]
    fn actions_include_merges_and_rules() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = search_for(&queries, &catalog);
        let s = p.initial();
        let actions = p.actions(&s);
        let merges = actions.iter().filter(|a| matches!(a, ForestAction::Merge(..))).count();
        assert_eq!(merges, 3); // C(3,2)
    }

    #[test]
    fn mcts_finds_better_state_than_initial() {
        // SDSS region queries: two identically-shaped windows. The paper's
        // Figure 1(c) answer — one merged pan/zoom chart — should beat the
        // two redundant static charts of the initial singleton state.
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 300, seed: 9 });
        let queries = pi2_datasets::sdss::demo_queries();
        let p = search_for(&queries, &catalog);
        let initial_reward = p.reward(&p.initial());
        let (best, stats) = mcts(
            &p,
            &MctsConfig { iterations: 40, seed: 11, rollout_depth: 3, ..Default::default() },
        );
        assert!(stats.best_reward > initial_reward, "{} <= {}", stats.best_reward, initial_reward);
        assert_eq!(best.trees.len(), 1, "expected merged forest");
    }

    #[test]
    fn greedy_also_improves() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig3_queries();
        let p = search_for(&queries, &catalog);
        let initial_reward = p.reward(&p.initial());
        let (_, stats) = greedy(&p, 50);
        assert!(stats.best_reward >= initial_reward);
    }

    #[test]
    fn all_reachable_states_stay_expressive() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = search_for(&queries, &catalog);
        let mut state = p.initial();
        for step in 0..5 {
            let actions = p.actions(&state);
            let Some(a) = actions.get(step % actions.len().max(1)) else { break };
            if let Some(next) = p.apply(&state, a) {
                assert!(next.expresses_all(&queries), "action {a:?} lost expressiveness");
                state = next;
            }
        }
    }
}
