//! The interface-search problem: DiffTree forests as MCTS states.
//!
//! States are [`DiffForest`]s (partitions of the query log into merged
//! trees); actions are forest-level merges/splits and tree-level
//! transformation rules; the reward is the negated cost of the best
//! interface candidate the mapper produces for the state. Collapse and
//! domain-generalization rules are applied eagerly after every action
//! (they are always beneficial — see [`pi2_difftree::rules::canonicalize`]),
//! which keeps the searched space to the decisions that actually trade off
//! against each other: partitioning and structural factoring.
//!
//! Reward evaluation is memoized in a shared [`CostMemo`] keyed by the
//! forest's `structural_hash` plus a context fingerprint of everything
//! else the cost depends on (queries, weights, screen). The memo is
//! shared across MCTS iterations, across parallel worker trees, and —
//! via [`crate::Pi2`] — across successive `generate` calls, so a forest
//! is mapped and costed at most once per context. To keep memoized
//! interfaces valid (charts reference trees by index), every state is
//! *normalized*: trees canonicalized and sorted by earliest source query.

use pi2_cost::{choose_best, weights_fingerprint, CostMemo, CostWeights, CostedChoice};
use pi2_difftree::rules::{self, Rule};
use pi2_difftree::{DiffForest, NodeId};
use pi2_engine::Catalog;
use pi2_interface::{map_forest, MapperConfig};
use pi2_mcts::SearchProblem;
use pi2_sql::Query;
use pi2_telemetry::Registry;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An action on a forest state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestAction {
    /// Apply transformation rule `rule` at node `loc` of tree `tree`.
    Rule {
        /// Index of the DiffTree this element binds into.
        tree: usize,
        /// Rule.
        rule: usize,
        /// Node id the rule applies at.
        loc: NodeId,
    },
    /// Merge trees `i` and `j`.
    Merge(usize, usize),
    /// Split tree `i` back into per-query trees.
    Split(usize),
}

/// The search problem over DiffTree forests.
pub struct InterfaceSearch<'a> {
    /// The input query log.
    pub queries: &'a [Query],
    /// Catalog.
    pub catalog: &'a Catalog,
    /// Mapper cfg.
    pub mapper_cfg: MapperConfig,
    /// Weights.
    pub weights: CostWeights,
    rules: Vec<Box<dyn Rule>>,
    memo: Arc<CostMemo>,
    telemetry: Arc<Registry>,
    context: u64,
}

impl<'a> InterfaceSearch<'a> {
    /// Construct from parts with a private memo and telemetry registry.
    pub fn new(
        queries: &'a [Query],
        catalog: &'a Catalog,
        mapper_cfg: MapperConfig,
        weights: CostWeights,
    ) -> Self {
        Self::with_memo(
            queries,
            catalog,
            mapper_cfg,
            weights,
            Arc::new(CostMemo::new()),
            Arc::new(Registry::new()),
        )
    }

    /// Construct sharing an existing memo (for cross-run reuse) and
    /// telemetry registry (for per-phase timings).
    pub fn with_memo(
        queries: &'a [Query],
        catalog: &'a Catalog,
        mapper_cfg: MapperConfig,
        weights: CostWeights,
        memo: Arc<CostMemo>,
        telemetry: Arc<Registry>,
    ) -> Self {
        let rules = rules::all_rules(Some(catalog.clone()));
        let context = context_fingerprint(queries, &weights, &mapper_cfg);
        Self { queries, catalog, mapper_cfg, weights, rules, memo, telemetry, context }
    }

    /// The shared cost memo.
    pub fn memo(&self) -> &Arc<CostMemo> {
        &self.memo
    }

    /// The context fingerprint this search memoizes under.
    pub fn context(&self) -> u64 {
        self.context
    }

    /// Normalize a forest into the searched state space: canonicalize
    /// every tree (collapse + generalize) and sort trees by earliest
    /// source query. The sort gives every structurally-equal state one
    /// canonical tree order, so memoized interfaces (which reference
    /// trees by index) remain valid wherever the state reappears.
    pub fn canonicalized(&self, mut forest: DiffForest) -> DiffForest {
        for tree in &mut forest.trees {
            *tree = rules::canonicalize(tree, Some(self.catalog));
        }
        forest.trees.sort_by_key(|t| t.source_queries.iter().min().copied().unwrap_or(usize::MAX));
        forest
    }

    /// Map a forest and choose its best candidate, memoized by
    /// `(context, structural_hash)`. `None` means mapping failed or no
    /// candidate was produced.
    pub fn best_choice(&self, state: &DiffForest) -> Option<Arc<CostedChoice>> {
        // Keyed by indexed_hash, not structural_hash: the stored interface
        // references trees by index, so tree order must be part of the key
        // (structurally-equal forests can order their trees differently
        // when the log contains duplicate queries).
        self.memo.get_or_compute(self.context, state.indexed_hash(), || {
            let candidates = self
                .telemetry
                .time("phase.map", || {
                    map_forest(state, self.catalog, self.queries, &self.mapper_cfg)
                })
                .ok()?;
            let candidates_considered = candidates.len();
            let (best_idx, breakdown) = self.telemetry.time("phase.cost", || {
                choose_best(&candidates, state, self.queries, self.catalog, &self.weights)
            })?;
            let interface = candidates.into_iter().nth(best_idx)?;
            Some(CostedChoice { interface, breakdown, candidates_considered })
        })
    }

    /// The searched rule subset: structural rules only (normalization rules
    /// run eagerly instead).
    fn searched_rules(&self) -> impl Iterator<Item = (usize, &Box<dyn Rule>)> {
        self.rules.iter().enumerate().filter(|(_, r)| {
            r.name() != "collapse-literal-any" && r.name() != "generalize-hole-domain"
        })
    }
}

/// Fingerprint of everything a memoized cost depends on besides the
/// forest: the query log, the cost weights, and the mapper configuration.
fn context_fingerprint(queries: &[Query], weights: &CostWeights, cfg: &MapperConfig) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    queries.len().hash(&mut h);
    for q in queries {
        q.to_string().hash(&mut h);
    }
    weights_fingerprint(weights).hash(&mut h);
    cfg.screen.width.hash(&mut h);
    cfg.screen.height.hash(&mut h);
    cfg.enumerate_variants.hash(&mut h);
    h.finish()
}

impl<'a> SearchProblem for InterfaceSearch<'a> {
    type State = DiffForest;
    type Action = ForestAction;

    fn initial(&self) -> DiffForest {
        // Paper Figure 6 step ①: parse the log into (singleton) DiffTrees.
        self.canonicalized(DiffForest::singletons(self.queries))
    }

    fn actions(&self, state: &DiffForest) -> Vec<ForestAction> {
        let mut out = Vec::new();
        for i in 0..state.trees.len() {
            for j in (i + 1)..state.trees.len() {
                out.push(ForestAction::Merge(i, j));
            }
        }
        for (ti, tree) in state.trees.iter().enumerate() {
            if tree.source_queries.len() > 1 {
                out.push(ForestAction::Split(ti));
            }
            for (ri, rule) in self.searched_rules() {
                for loc in rule.applications(tree) {
                    out.push(ForestAction::Rule { tree: ti, rule: ri, loc });
                }
            }
        }
        out
    }

    fn apply(&self, state: &DiffForest, action: &ForestAction) -> Option<DiffForest> {
        match action {
            ForestAction::Merge(i, j) => state.merge_pair(*i, *j).map(|f| self.canonicalized(f)),
            ForestAction::Split(i) => {
                state.split_tree(*i, self.queries).map(|f| self.canonicalized(f))
            }
            ForestAction::Rule { tree, rule, loc } => {
                let t = state.trees.get(*tree)?;
                let new_tree = self.rules.get(*rule)?.apply(t, *loc)?;
                let mut f = state.clone();
                f.trees[*tree] = rules::canonicalize(&new_tree, Some(self.catalog));
                Some(f)
            }
        }
    }

    fn reward(&self, state: &DiffForest) -> f64 {
        match self.best_choice(state) {
            Some(choice) if choice.breakdown.total.is_finite() => -choice.breakdown.total,
            _ => f64::NEG_INFINITY,
        }
    }

    fn state_key(&self, state: &DiffForest) -> u64 {
        state.structural_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_mcts::{greedy, mcts, MctsConfig};

    fn search_for<'a>(queries: &'a [Query], catalog: &'a Catalog) -> InterfaceSearch<'a> {
        // Borrow lifetimes force constructing in the caller; helper kept for
        // readability at call sites.
        InterfaceSearch::new(queries, catalog, MapperConfig::default(), CostWeights::default())
    }

    #[test]
    fn initial_state_is_canonicalized_singletons() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = InterfaceSearch::new(
            &queries,
            &catalog,
            MapperConfig::default(),
            CostWeights::default(),
        );
        let s = p.initial();
        assert_eq!(s.trees.len(), 3);
    }

    #[test]
    fn actions_include_merges_and_rules() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = search_for(&queries, &catalog);
        let s = p.initial();
        let actions = p.actions(&s);
        let merges = actions.iter().filter(|a| matches!(a, ForestAction::Merge(..))).count();
        assert_eq!(merges, 3); // C(3,2)
    }

    #[test]
    fn mcts_finds_better_state_than_initial() {
        // SDSS region queries: two identically-shaped windows. The paper's
        // Figure 1(c) answer — one merged pan/zoom chart — should beat the
        // two redundant static charts of the initial singleton state.
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 300, seed: 9 });
        let queries = pi2_datasets::sdss::demo_queries();
        let p = search_for(&queries, &catalog);
        let initial_reward = p.reward(&p.initial());
        let (best, stats) = mcts(
            &p,
            &MctsConfig { iterations: 40, seed: 11, rollout_depth: 3, ..Default::default() },
        );
        assert!(stats.best_reward > initial_reward, "{} <= {}", stats.best_reward, initial_reward);
        assert_eq!(best.trees.len(), 1, "expected merged forest");
    }

    #[test]
    fn greedy_also_improves() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig3_queries();
        let p = search_for(&queries, &catalog);
        let initial_reward = p.reward(&p.initial());
        let (_, stats) = greedy(&p, 50);
        assert!(stats.best_reward >= initial_reward);
    }

    #[test]
    fn all_reachable_states_stay_expressive() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = search_for(&queries, &catalog);
        let mut state = p.initial();
        for step in 0..5 {
            let actions = p.actions(&state);
            let Some(a) = actions.get(step % actions.len().max(1)) else { break };
            if let Some(next) = p.apply(&state, a) {
                assert!(next.expresses_all(&queries), "action {a:?} lost expressiveness");
                state = next;
            }
        }
    }

    #[test]
    fn repeated_rewards_hit_the_memo() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = search_for(&queries, &catalog);
        let s = p.initial();
        let r1 = p.reward(&s);
        let r2 = p.reward(&s);
        assert_eq!(r1, r2);
        assert_eq!(p.memo().misses(), 1);
        assert_eq!(p.memo().hits(), 1);
    }

    #[test]
    fn memoized_cost_equals_fresh_cost() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = search_for(&queries, &catalog);
        let s = p.initial();
        let memoized = p.best_choice(&s).expect("choice");
        // Fresh, unmemoized computation of the same state.
        let candidates = map_forest(&s, &catalog, &queries, &p.mapper_cfg).expect("map");
        let (idx, fresh) =
            choose_best(&candidates, &s, &queries, &catalog, &p.weights).expect("best");
        assert_eq!(memoized.breakdown, fresh);
        assert_eq!(memoized.interface, candidates[idx]);
        assert_eq!(memoized.candidates_considered, candidates.len());
    }

    #[test]
    fn states_are_sorted_by_earliest_source_query() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let p = search_for(&queries, &catalog);
        let mut state = p.initial();
        // Merge the last two trees, then check canonical order everywhere.
        if let Some(next) = p.apply(&state, &ForestAction::Merge(1, 2)) {
            state = next;
        }
        let mins: Vec<usize> =
            state.trees.iter().map(|t| t.source_queries.iter().min().copied().unwrap()).collect();
        let mut sorted = mins.clone();
        sorted.sort_unstable();
        assert_eq!(mins, sorted);
    }
}
