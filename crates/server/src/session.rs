//! Server-side session state: a notebook plus live interface sessions,
//! behind a bounded event queue that coalesces rapid-fire gestures.
//!
//! # Concurrency model
//!
//! A session's state is inherently serial (one analyst, one notebook), so
//! all mutation happens under the entry's `core` mutex. What the server
//! adds is *admission control in front of that lock*: gesture events are
//! first pushed onto a bounded queue (rejecting with `overloaded` when
//! full — that is the backpressure signal), and whichever request thread
//! holds the core lock drains the queue, **coalesces** runs of events
//! that target the same widget/chart (a pan storm collapses to one pan
//! with summed deltas), and dispatches the survivors. A client hammering
//! one session therefore costs bounded memory and the dispatch work of
//! the coalesced stream, never an unbounded backlog.

use pi2_core::prelude::{ChartUpdate, Event, InterfaceSession, SessionError};
use pi2_notebook::{Notebook, NotebookError};
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// Maximum pending (version, event) pairs per session. Beyond this the
/// server answers `overloaded` and the client must retry after backoff.
pub const QUEUE_CAP: usize = 64;

/// How many recent `req_id`s (and their responses) a session remembers
/// for idempotent replay. A reconnecting client only ever retries its
/// most recent unacknowledged request, so a short window suffices.
pub const DEDUPE_WINDOW: usize = 128;

/// Lock a mutex, recovering the data from a poisoned lock (a panic in
/// another handler must not wedge the whole session).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The serial part of a session: the notebook plus one live
/// [`InterfaceSession`] per generated version, opened lazily.
pub struct SessionCore {
    /// The notebook backing this session.
    pub notebook: Notebook,
    /// Live interface sessions keyed by version number.
    pub live: HashMap<usize, InterfaceSession>,
}

impl SessionCore {
    /// The live session for `version`, opening it from the notebook on
    /// first use.
    pub fn live_session(&mut self, version: usize) -> Result<&mut InterfaceSession, NotebookError> {
        if !self.live.contains_key(&version) {
            let session = self.notebook.open_session(version)?;
            self.live.insert(version, session);
        }
        Ok(self.live.get_mut(&version).expect("just inserted"))
    }
}

/// Monotone per-session counters, readable without any lock.
#[derive(Default)]
pub struct SessionCounters {
    /// Events accepted onto the queue.
    pub enqueued: AtomicU64,
    /// Events dropped by coalescing (merged into a neighbor).
    pub coalesced: AtomicU64,
    /// Events actually dispatched to an interface session.
    pub dispatched: AtomicU64,
    /// Gesture requests rejected with `overloaded`.
    pub overloaded: AtomicU64,
}

/// One notebook-level mutation in a session's durable history. Cell and
/// generate ops must replay in their original interleaving: a `generate`
/// sees exactly the cells that preceded it, so aggregating them would
/// rebuild different interfaces.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableOp {
    /// `run_cell` with this SQL (failed cells included — replay re-fails
    /// them deterministically).
    Cell(String),
    /// One accepted `generate`.
    Generate,
}

/// The durable replay state of a session: everything needed to rebuild
/// the notebook and its live interfaces deterministically, snapshotted
/// into checkpoints. Maintained only while a journal is attached.
#[derive(Default)]
pub struct Durable {
    /// The original `open` request in wire form (scenario + options).
    pub open_req: Value,
    /// Cell and generate ops in acceptance order.
    pub ops: Vec<DurableOp>,
    /// Successfully dispatched (version, event) pairs, coalesced on
    /// append so storms collapse exactly as the live queue collapses.
    /// Replayable after all generates: a version's widget state depends
    /// only on the events that targeted it, in order.
    pub applied: Vec<(usize, Event)>,
    /// Journaled mutations since the last checkpoint.
    pub mutations_since_ckpt: u64,
    /// The journal LSN the latest checkpoint covers (frames at or below
    /// it are redundant for this session).
    pub last_ckpt_lsn: u64,
}

/// An idempotency window: recent `req_id`s mapped to the response each
/// produced, bounded to a fixed capacity ([`DEDUPE_WINDOW`] by default).
/// Sessions use one per entry; the server keeps a larger one for `open`
/// (which has no session to look up yet).
pub struct DedupeWindow {
    order: VecDeque<String>,
    responses: HashMap<String, Value>,
    cap: usize,
}

impl Default for DedupeWindow {
    fn default() -> Self {
        Self::with_capacity(DEDUPE_WINDOW)
    }
}

impl DedupeWindow {
    /// A window remembering at most `cap` ids.
    pub fn with_capacity(cap: usize) -> Self {
        Self { order: VecDeque::new(), responses: HashMap::new(), cap: cap.max(1) }
    }

    /// The cached response for `req_id`, if still in the window.
    pub fn get(&self, req_id: &str) -> Option<&Value> {
        self.responses.get(req_id)
    }

    /// Remember `response` for `req_id`, evicting the oldest entry past
    /// the cap. Re-inserting an existing id refreshes its response.
    pub fn put(&mut self, req_id: &str, response: Value) {
        if self.responses.insert(req_id.to_string(), response).is_none() {
            self.order.push_back(req_id.to_string());
            if self.order.len() > self.cap {
                if let Some(evicted) = self.order.pop_front() {
                    self.responses.remove(&evicted);
                }
            }
        }
    }

    /// The ids currently in the window, oldest first (checkpointed so a
    /// recovered session still answers retries idempotently).
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }
}

/// One server-side session.
pub struct SessionEntry {
    /// The session id (allocated by the registry, never reused).
    pub id: u64,
    /// Scenario name the session was opened on.
    pub scenario: String,
    /// The resume token `open` handed the client.
    pub token: String,
    /// Whether this session was rebuilt by crash recovery.
    pub recovered: bool,
    /// Serial state; hold only while dispatching or mutating.
    pub core: Mutex<SessionCore>,
    /// Pending events awaiting dispatch; never hold while taking `core`.
    queue: Mutex<VecDeque<(usize, Event)>>,
    /// Highest generated version number (0 = none yet), maintained by
    /// `generate` so enqueue can resolve "latest" without the core lock.
    pub latest_version: AtomicUsize,
    /// Counters.
    pub counters: SessionCounters,
    /// Replay state for checkpoints; populated only while a journal is
    /// attached (the dispatcher records each journaled mutation here).
    pub durable: Mutex<Durable>,
    /// Recent `req_id` → response pairs for idempotent retries. Always
    /// maintained (dedupe is a protocol property, not a journal one).
    pub dedupe: Mutex<DedupeWindow>,
    /// Serializes this session's whole mutation pipeline — dedupe
    /// check, execution, journal append, dedupe publish — so journal
    /// frame order always matches execution order and a concurrently
    /// retried `req_id` can never execute twice. Held *around* `core`,
    /// never acquired while holding it.
    order: Mutex<()>,
}

/// Outcome of [`SessionEntry::enqueue`].
pub enum Enqueue {
    /// All events accepted; queue depth after the push.
    Accepted(usize),
    /// Queue would overflow; nothing was pushed. Carries current depth.
    Overloaded(usize),
}

/// Outcome of one drain-and-dispatch pass.
pub struct DrainOutcome {
    /// Final update per chart, in first-touched order.
    pub updates: Vec<ChartUpdate>,
    /// Events dispatched (after coalescing).
    pub applied: usize,
    /// Events dropped by coalescing.
    pub coalesced: usize,
    /// Per-event dispatch errors (dispatching continued past them).
    pub errors: Vec<SessionError>,
}

impl SessionEntry {
    /// A fresh entry wrapping `notebook`.
    pub fn new(id: u64, scenario: String, token: String, notebook: Notebook) -> Self {
        Self {
            id,
            scenario,
            token,
            recovered: false,
            core: Mutex::new(SessionCore { notebook, live: HashMap::new() }),
            queue: Mutex::new(VecDeque::new()),
            latest_version: AtomicUsize::new(0),
            counters: SessionCounters::default(),
            durable: Mutex::new(Durable::default()),
            dedupe: Mutex::new(DedupeWindow::default()),
            order: Mutex::new(()),
        }
    }

    /// Lock the mutation-order guard: the holder's execute → journal →
    /// dedupe-publish sequence is atomic with respect to every other
    /// mutating request on this session.
    pub fn lock_order(&self) -> MutexGuard<'_, ()> {
        lock(&self.order)
    }

    /// Mark this entry as rebuilt by crash recovery.
    pub fn mark_recovered(mut self) -> Self {
        self.recovered = true;
        self
    }

    /// Lock the durable replay state.
    pub fn lock_durable(&self) -> MutexGuard<'_, Durable> {
        lock(&self.durable)
    }

    /// The cached response for a retried `req_id`, with the dedupe
    /// marker added so clients can tell a replay from a first effect.
    pub fn dedupe_get(&self, req_id: &str) -> Option<Value> {
        lock(&self.dedupe).get(req_id).cloned().map(|mut v| {
            v["deduped"] = Value::Bool(true);
            v
        })
    }

    /// Remember the response an accepted `req_id` produced.
    pub fn dedupe_put(&self, req_id: &str, response: Value) {
        lock(&self.dedupe).put(req_id, response);
    }

    /// The `req_id`s currently in the dedupe window, oldest first
    /// (checkpointed so a recovered session still dedupes retries).
    pub fn dedupe_ids(&self) -> Vec<String> {
        lock(&self.dedupe).ids().map(str::to_string).collect()
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Push `events` (all for `version`) onto the bounded queue.
    pub fn enqueue(&self, version: usize, events: Vec<Event>) -> Enqueue {
        let mut queue = lock(&self.queue);
        if queue.len() + events.len() > QUEUE_CAP {
            self.counters.overloaded.fetch_add(1, Ordering::Relaxed);
            return Enqueue::Overloaded(queue.len());
        }
        let n = events.len() as u64;
        queue.extend(events.into_iter().map(|e| (version, e)));
        self.counters.enqueued.fetch_add(n, Ordering::Relaxed);
        Enqueue::Accepted(queue.len())
    }

    /// Acquire the core lock and drain the queue until it stays empty:
    /// each pass swaps the queue out, coalesces it, and dispatches the
    /// survivors. Events enqueued by other threads mid-pass are picked up
    /// by the next pass, so a successful return means the queue was
    /// observed empty *while still holding the core lock*.
    pub fn drain_and_dispatch(&self) -> Result<DrainOutcome, NotebookError> {
        let mut core = lock(&self.core);
        self.drain_locked(&mut core)
    }

    /// As [`drain_and_dispatch`](Self::drain_and_dispatch), but gives up
    /// immediately when another thread holds the core lock (that thread's
    /// drain loop will dispatch our queued events).
    pub fn try_drain_and_dispatch(&self) -> Option<Result<DrainOutcome, NotebookError>> {
        match self.core.try_lock() {
            Ok(mut core) => Some(self.drain_locked(&mut core)),
            Err(TryLockError::Poisoned(p)) => Some(self.drain_locked(&mut p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Swap out the pending queue and coalesce it, **without**
    /// dispatching: returns the surviving events and how many were
    /// merged away. This is the exact pre-dispatch step of
    /// [`drain_and_dispatch`](Self::drain_and_dispatch), exposed so the
    /// coalescing property tests can drive the real session queue.
    pub fn drain_coalesced(&self) -> (Vec<(usize, Event)>, usize) {
        let batch: Vec<(usize, Event)> = lock(&self.queue).drain(..).collect();
        let before = batch.len();
        let batch = coalesce(batch);
        let dropped = before - batch.len();
        self.counters.coalesced.fetch_add(dropped as u64, Ordering::Relaxed);
        (batch, dropped)
    }

    fn drain_locked(&self, core: &mut SessionCore) -> Result<DrainOutcome, NotebookError> {
        let mut outcome =
            DrainOutcome { updates: Vec::new(), applied: 0, coalesced: 0, errors: Vec::new() };
        // Final update per chart: later events supersede earlier ones.
        let mut by_chart: HashMap<usize, usize> = HashMap::new();
        loop {
            let (batch, dropped) = self.drain_coalesced();
            if batch.is_empty() && dropped == 0 {
                return Ok(outcome);
            }
            outcome.coalesced += dropped;
            for (version, event) in batch {
                let session = core.live_session(version)?;
                // Once a client has opened the scene stream (render_delta
                // initialized the retained scene), every dispatch must
                // record its damage delta so catch-up stays contiguous;
                // sessions without a scene consumer skip that work.
                let dispatched = if session.scene_version() > 0 {
                    session.dispatch_with_delta(event).map(|(updates, _delta)| updates)
                } else {
                    session.dispatch(event)
                };
                match dispatched {
                    Ok(updates) => {
                        outcome.applied += 1;
                        self.counters.dispatched.fetch_add(1, Ordering::Relaxed);
                        for update in updates {
                            match by_chart.get(&update.chart) {
                                Some(&slot) => outcome.updates[slot] = update,
                                None => {
                                    by_chart.insert(update.chart, outcome.updates.len());
                                    outcome.updates.push(update);
                                }
                            }
                        }
                    }
                    Err(e) => outcome.errors.push(e),
                }
            }
        }
    }
}

/// Merge runs of events that address the same target, preserving order:
///
/// * consecutive **pans** of one chart sum their deltas;
/// * consecutive **zooms** of one chart multiply their factors;
/// * consecutive **brushes** of one chart keep only the last range;
/// * consecutive **set-widget** events on one widget keep only the last
///   value;
/// * **clicks** never merge (each click is a distinct selection).
///
/// Only *adjacent* events (within the same interface version) merge, so
/// interleaved targets keep their relative order and semantics.
pub fn coalesce(events: Vec<(usize, Event)>) -> Vec<(usize, Event)> {
    let mut out: Vec<(usize, Event)> = Vec::with_capacity(events.len());
    for (version, event) in events {
        if let Some((last_version, last)) = out.last_mut() {
            if *last_version == version {
                match (last, &event) {
                    (
                        Event::Pan { chart: c1, dx, dy },
                        Event::Pan { chart: c2, dx: dx2, dy: dy2 },
                    ) if c1 == c2 => {
                        *dx += dx2;
                        *dy += dy2;
                        continue;
                    }
                    (Event::Zoom { chart: c1, factor }, Event::Zoom { chart: c2, factor: f2 })
                        if c1 == c2 =>
                    {
                        *factor *= f2;
                        continue;
                    }
                    (
                        Event::Brush { chart: c1, low, high },
                        Event::Brush { chart: c2, low: l2, high: h2 },
                    ) if c1 == c2 => {
                        *low = *l2;
                        *high = *h2;
                        continue;
                    }
                    (
                        Event::SetWidget { widget: w1, value },
                        Event::SetWidget { widget: w2, value: v2 },
                    ) if w1 == w2 => {
                        *value = v2.clone();
                        continue;
                    }
                    _ => {}
                }
            }
        }
        out.push((version, event));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_core::prelude::WidgetValue;

    fn pan(chart: usize, dx: f64) -> Event {
        Event::Pan { chart, dx, dy: 0.0 }
    }

    #[test]
    fn pans_sum_zooms_multiply_brushes_last_win() {
        let out = coalesce(vec![
            (1, pan(0, 1.0)),
            (1, pan(0, 2.0)),
            (1, Event::Zoom { chart: 0, factor: 2.0 }),
            (1, Event::Zoom { chart: 0, factor: 0.25 }),
            (1, Event::Brush { chart: 1, low: 0.0, high: 1.0 }),
            (1, Event::Brush { chart: 1, low: 5.0, high: 9.0 }),
            (1, Event::SetWidget { widget: 3, value: WidgetValue::Pick(0) }),
            (1, Event::SetWidget { widget: 3, value: WidgetValue::Pick(2) }),
        ]);
        assert_eq!(
            out,
            vec![
                (1, pan(0, 3.0)),
                (1, Event::Zoom { chart: 0, factor: 0.5 }),
                (1, Event::Brush { chart: 1, low: 5.0, high: 9.0 }),
                (1, Event::SetWidget { widget: 3, value: WidgetValue::Pick(2) }),
            ]
        );
    }

    #[test]
    fn different_targets_versions_and_clicks_do_not_merge() {
        let click = Event::Click { chart: 0, value: pi2_sql::Literal::Int(1) };
        let input = vec![
            (1, pan(0, 1.0)),
            (1, pan(1, 1.0)), // different chart
            (2, pan(1, 1.0)), // different version
            (2, click.clone()),
            (2, click.clone()), // clicks never merge
            (2, Event::SetWidget { widget: 0, value: WidgetValue::Bool(true) }),
            (2, Event::SetWidget { widget: 1, value: WidgetValue::Bool(true) }), // different widget
        ];
        assert_eq!(coalesce(input.clone()), input);
    }

    #[test]
    fn interleaved_targets_preserve_order() {
        let input = vec![(1, pan(0, 1.0)), (1, pan(1, 1.0)), (1, pan(0, 1.0))];
        // The interleaving chart-1 pan prevents merging the chart-0 pans.
        assert_eq!(coalesce(input.clone()), input);
    }

    #[test]
    fn dedupe_window_is_bounded_and_replays_responses() {
        let mut window = DedupeWindow::default();
        for i in 0..DEDUPE_WINDOW + 10 {
            window.put(&format!("r{i}"), serde_json::json!({"ok": true, "n": i}));
        }
        // The oldest ten fell out; the newest are replayable.
        assert!(window.get("r0").is_none());
        assert!(window.get("r9").is_none());
        assert_eq!(window.get("r10").unwrap()["n"].as_u64(), Some(10));
        let last = format!("r{}", DEDUPE_WINDOW + 9);
        assert_eq!(window.get(&last).unwrap()["ok"].as_bool(), Some(true));
        assert_eq!(window.ids().count(), DEDUPE_WINDOW);
        // Refreshing an id replaces its response without growing the window.
        window.put("r10", serde_json::json!({"ok": true, "n": 999}));
        assert_eq!(window.get("r10").unwrap()["n"].as_u64(), Some(999));
        assert_eq!(window.ids().count(), DEDUPE_WINDOW);
    }
}
