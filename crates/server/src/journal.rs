//! The write-ahead session journal and its checkpoint store.
//!
//! # Format
//!
//! One append-only file, `journal.log`, shared by every session in the
//! process. Each frame is `[u32 len][u32 crc32][payload]` (little-endian
//! header): `len` is the payload byte count, `crc32` its IEEE checksum,
//! and the payload a JSON object `{"lsn", "session", "token"?, "req"}`
//! where `req` is the accepted request in its wire form (gestures are
//! journaled *after* coalescing). LSNs are monotone per file, so replay
//! order is total even though sessions interleave.
//!
//! Alongside the log live per-session checkpoints, `ckpt-<id>.json`:
//! a full snapshot (scenario, open options, token, cell SQL, generate
//! count, coalesced applied-event history, recent `req_id`s, and the
//! `last_lsn` the snapshot covers). Checkpoints are written to a tmp
//! file, fsynced, then renamed, so a crash never publishes a torn one.
//! A `clean` marker file records a graceful shutdown: recovery after a
//! planned restart loads checkpoints only and skips tail replay.
//!
//! # Corruption policy
//!
//! Recovery never panics on a bad journal. A frame whose checksum
//! mismatches but whose length header is intact is *skipped* (the scan
//! continues at the next frame); a torn tail — header or payload cut
//! short by a crash mid-write — ends the scan. Both increment structured
//! counters ([`ScanReport`]) that surface in `stats`. `.tmp` checkpoint
//! leftovers from a mid-crash checkpoint are ignored.

use serde_json::{json, Value};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Largest payload a frame may carry; a length header beyond this is
/// treated as corruption (the scan cannot trust the framing past it).
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

const JOURNAL_FILE: &str = "journal.log";
const CLEAN_MARKER: &str = "clean";

/// Tuning knobs for the durability layer.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding `journal.log`, checkpoints, and the clean
    /// marker. Created if absent.
    pub dir: PathBuf,
    /// Checkpoint a session after this many journaled mutations since
    /// its last checkpoint.
    pub checkpoint_every: u64,
    /// Rewrite the journal, dropping frames already covered by
    /// checkpoints (or belonging to closed sessions), once it exceeds
    /// this many bytes.
    pub compact_bytes: u64,
    /// fsync the journal after every append. Off by default: the
    /// dedupe/resume protocol tolerates a lost tail (the client retries
    /// the unacknowledged request), so throughput need not pay an fsync
    /// per gesture.
    pub fsync_every_append: bool,
}

impl JournalConfig {
    /// Defaults for `dir`: checkpoint every 8 mutations, compact at 8 MiB.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_every: 8,
            compact_bytes: 8 << 20,
            fsync_every_append: false,
        }
    }

    /// Set the per-session checkpoint cadence (minimum 1).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Set the journal-size compaction threshold in bytes.
    pub fn compact_bytes(mut self, bytes: u64) -> Self {
        self.compact_bytes = bytes;
        self
    }

    /// fsync the journal after every append.
    pub fn fsync_every_append(mut self, yes: bool) -> Self {
        self.fsync_every_append = yes;
        self
    }
}

/// One decoded journal frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Monotone log sequence number (per journal file).
    pub lsn: u64,
    /// The session the request addressed (or opened).
    pub session: u64,
    /// Session token, present on `open` frames.
    pub token: Option<String>,
    /// The accepted request in wire form (including any `req_id`).
    pub req: Value,
}

/// What a journal scan found, beyond the frames themselves.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Frames dropped for checksum mismatch or unparseable payload.
    pub frames_skipped: u64,
    /// Human-readable corruption/irregularity notes.
    pub warnings: Vec<String>,
    /// The scan ended at a torn tail (crash mid-append).
    pub truncated_tail: bool,
    /// Highest LSN observed in any intact frame.
    pub max_lsn: u64,
    /// Bytes of journal scanned.
    pub bytes: u64,
}

fn io_err(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

// ---- CRC32 (IEEE), table-driven; no external dependency ---------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the frame checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---- fault shims -------------------------------------------------------------

#[cfg(feature = "faults")]
fn fault_torn_write() -> bool {
    pi2_faults::journal_torn_write()
}
#[cfg(not(feature = "faults"))]
fn fault_torn_write() -> bool {
    false
}

#[cfg(feature = "faults")]
fn fault_checkpoint_crash() -> bool {
    pi2_faults::checkpoint_crash()
}
#[cfg(not(feature = "faults"))]
fn fault_checkpoint_crash() -> bool {
    false
}

#[cfg(feature = "faults")]
fn fault_fsync_error() -> bool {
    pi2_faults::recovery_fsync_error()
}
#[cfg(not(feature = "faults"))]
fn fault_fsync_error() -> bool {
    false
}

/// fsync `file`, honoring the injected recovery-fsync fault.
fn sync_file(file: &File) -> std::io::Result<()> {
    if fault_fsync_error() {
        return Err(io_err("injected fsync error"));
    }
    file.sync_data()
}

// ---- the journal -------------------------------------------------------------

struct Inner {
    file: File,
    bytes: u64,
    next_lsn: u64,
}

/// The process-wide append handle: serializes appends, checkpoints, and
/// compaction over one journal directory.
pub struct Journal {
    config: JournalConfig,
    inner: Mutex<Inner>,
}

fn lock_inner(journal: &Journal) -> std::sync::MutexGuard<'_, Inner> {
    journal.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Journal {
    /// Open (creating if needed) the journal in `config.dir` for append.
    /// `next_lsn` continues past the highest LSN already in the file.
    pub fn open(config: JournalConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let path = config.dir.join(JOURNAL_FILE);
        let (frames, report) = scan_frames(&path)?;
        let max_lsn = frames.iter().map(|f| f.lsn).max().unwrap_or(report.max_lsn);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(Self { config, inner: Mutex::new(Inner { file, bytes, next_lsn: max_lsn + 1 }) })
    }

    /// The configuration this journal was opened with.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// Current journal size in bytes.
    pub fn bytes(&self) -> u64 {
        lock_inner(self).bytes
    }

    /// The highest LSN handed out so far (0 if none).
    pub fn last_lsn(&self) -> u64 {
        lock_inner(self).next_lsn.saturating_sub(1)
    }

    /// Append one frame for `session` and return its LSN. With the
    /// torn-write fault armed, only a prefix of the frame reaches the
    /// file (and no fsync happens) while the append still reports
    /// success — exactly the window a crash mid-write leaves.
    pub fn append(&self, session: u64, token: Option<&str>, req: &Value) -> std::io::Result<u64> {
        let mut inner = lock_inner(self);
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let mut payload = serde_json::Map::new();
        payload.insert("lsn".into(), json!(lsn));
        payload.insert("session".into(), json!(session));
        if let Some(token) = token {
            payload.insert("token".into(), json!(token));
        }
        payload.insert("req".into(), req.clone());
        let body = serde_json::to_vec(&Value::Object(payload)).map_err(io_err)?;
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        if fault_torn_write() {
            let torn = 8 + body.len() / 2;
            inner.file.write_all(&frame[..torn])?;
            inner.file.flush()?;
            inner.bytes += torn as u64;
            return Ok(lsn);
        }
        inner.file.write_all(&frame)?;
        inner.bytes += frame.len() as u64;
        if self.config.fsync_every_append {
            sync_file(&inner.file)?;
        }
        Ok(lsn)
    }

    /// fsync the journal file (used before dropping a session's
    /// checkpoint: the tombstone frame must be durable first).
    pub fn sync(&self) -> std::io::Result<()> {
        sync_file(&lock_inner(self).file)
    }

    /// Raise `next_lsn` to at least `min_next`. Recovery calls this with
    /// one past the highest checkpoint-covered LSN: after a clean
    /// shutdown (or a post-recovery truncate) the journal file is empty,
    /// so a plain reopen would restart LSNs *below* the checkpoints'
    /// `last_lsn` and the next recovery would wrongly treat fresh frames
    /// as already covered.
    pub fn ensure_lsn_at_least(&self, min_next: u64) {
        let mut inner = lock_inner(self);
        inner.next_lsn = inner.next_lsn.max(min_next);
    }

    /// Truncate the journal to empty (every live session must have a
    /// fresh checkpoint first). LSNs keep counting up.
    pub fn truncate(&self) -> std::io::Result<()> {
        let mut inner = lock_inner(self);
        inner.file.set_len(0)?;
        inner.file.seek(SeekFrom::Start(0))?;
        inner.bytes = 0;
        sync_file(&inner.file)
    }

    /// Rewrite the journal keeping only frames for which `keep(session,
    /// lsn)` is true (frames made redundant by checkpoints, and frames of
    /// closed sessions, are dropped). Unreadable frames are dropped too.
    pub fn compact(&self, keep: &dyn Fn(u64, u64) -> bool) -> std::io::Result<()> {
        let mut inner = lock_inner(self);
        let path = self.config.dir.join(JOURNAL_FILE);
        let (frames, _report) = scan_frames(&path)?;
        let tmp = self.config.dir.join("journal.log.tmp");
        let mut out = File::create(&tmp)?;
        let mut bytes = 0u64;
        for frame in frames.iter().filter(|f| keep(f.session, f.lsn)) {
            let mut payload = serde_json::Map::new();
            payload.insert("lsn".into(), json!(frame.lsn));
            payload.insert("session".into(), json!(frame.session));
            if let Some(token) = &frame.token {
                payload.insert("token".into(), json!(token.as_str()));
            }
            payload.insert("req".into(), frame.req.clone());
            let body = serde_json::to_vec(&Value::Object(payload)).map_err(io_err)?;
            out.write_all(&(body.len() as u32).to_le_bytes())?;
            out.write_all(&crc32(&body).to_le_bytes())?;
            out.write_all(&body)?;
            bytes += 8 + body.len() as u64;
        }
        sync_file(&out)?;
        drop(out);
        std::fs::rename(&tmp, &path)?;
        // Reopen the append handle on the compacted file.
        inner.file = OpenOptions::new().append(true).open(&path)?;
        inner.bytes = bytes;
        Ok(())
    }

    /// Whether the journal has outgrown its compaction threshold.
    pub fn wants_compaction(&self) -> bool {
        self.bytes() > self.config.compact_bytes
    }

    fn checkpoint_path(&self, session: u64) -> PathBuf {
        self.config.dir.join(format!("ckpt-{session}.json"))
    }

    /// Atomically publish a session checkpoint (tmp + fsync + rename).
    /// With the checkpoint-crash fault armed, a partial tmp file is left
    /// behind and nothing is published — recovery must ignore it.
    pub fn write_checkpoint(&self, session: u64, doc: &Value) -> std::io::Result<()> {
        let body = serde_json::to_vec(doc).map_err(io_err)?;
        let path = self.checkpoint_path(session);
        let tmp = self.config.dir.join(format!("ckpt-{session}.json.tmp"));
        let mut out = File::create(&tmp)?;
        if fault_checkpoint_crash() {
            out.write_all(&body[..body.len() / 2])?;
            out.flush()?;
            return Ok(());
        }
        out.write_all(&body)?;
        sync_file(&out)?;
        drop(out);
        std::fs::rename(&tmp, &path)
    }

    /// Remove a closed session's checkpoint (after its tombstone frame
    /// is durable). Missing files are fine.
    pub fn remove_checkpoint(&self, session: u64) -> std::io::Result<()> {
        match std::fs::remove_file(self.checkpoint_path(session)) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Write the clean-shutdown marker: the next recovery may trust the
    /// checkpoints alone and skip tail replay.
    pub fn mark_clean(&self) -> std::io::Result<()> {
        let path = self.config.dir.join(CLEAN_MARKER);
        let mut out = File::create(path)?;
        out.write_all(b"clean\n")?;
        sync_file(&out)
    }
}

/// Consume the clean-shutdown marker in `dir`, returning whether it was
/// present. Recovery calls this first: a recovered process that crashes
/// later must not be mistaken for a clean shutdown.
pub fn take_clean_marker(dir: &Path) -> bool {
    let path = dir.join(CLEAN_MARKER);
    std::fs::remove_file(path).is_ok()
}

/// Scan every journal frame in `dir`, skipping corrupt frames where the
/// framing allows and stopping at a torn tail. Never errors on content —
/// only on inability to read the directory/file at all (a missing
/// journal is an empty one).
pub fn scan(dir: &Path) -> std::io::Result<(Vec<Frame>, ScanReport)> {
    scan_frames(&dir.join(JOURNAL_FILE))
}

fn scan_frames(path: &Path) -> std::io::Result<(Vec<Frame>, ScanReport)> {
    let mut report = ScanReport::default();
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), report)),
        Err(e) => return Err(e),
    };
    report.bytes = bytes.len() as u64;
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            report.truncated_tail = true;
            report.warnings.push(format!("torn frame header at byte {pos}"));
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        if len > MAX_FRAME_BYTES {
            // The length header itself is garbage: framing is lost.
            report.truncated_tail = true;
            report.warnings.push(format!("implausible frame length {len} at byte {pos}"));
            break;
        }
        let body_start = pos + 8;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            report.truncated_tail = true;
            report.warnings.push(format!("torn frame payload at byte {pos}"));
            break;
        }
        let body = &bytes[body_start..body_end];
        pos = body_end;
        if crc32(body) != crc {
            report.frames_skipped += 1;
            report.warnings.push(format!("checksum mismatch in frame ending at byte {pos}"));
            continue;
        }
        let doc: Value = match serde_json::from_slice(body) {
            Ok(v) => v,
            Err(e) => {
                report.frames_skipped += 1;
                report.warnings.push(format!("unparseable frame payload: {e}"));
                continue;
            }
        };
        let (Some(lsn), Some(session)) =
            (doc.get("lsn").and_then(Value::as_u64), doc.get("session").and_then(Value::as_u64))
        else {
            report.frames_skipped += 1;
            report.warnings.push("frame payload missing lsn/session".to_string());
            continue;
        };
        report.max_lsn = report.max_lsn.max(lsn);
        frames.push(Frame {
            lsn,
            session,
            token: doc.get("token").and_then(Value::as_str).map(str::to_string),
            req: doc.get("req").cloned().unwrap_or(Value::Null),
        });
    }
    Ok((frames, report))
}

/// Load every published checkpoint in `dir` (ignoring `.tmp` leftovers),
/// recording unreadable ones as warnings rather than failing.
pub fn load_checkpoints(dir: &Path, report: &mut ScanReport) -> Vec<(u64, Value)> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(id) = name.strip_prefix("ckpt-").and_then(|n| n.strip_suffix(".json")) else {
            continue;
        };
        let Ok(session) = id.parse::<u64>() else { continue };
        match std::fs::read(entry.path())
            .map_err(|e| e.to_string())
            .and_then(|b| serde_json::from_slice(&b).map_err(|e| e.to_string()))
        {
            Ok(doc) => out.push((session, doc)),
            Err(e) => {
                report.warnings.push(format!("unreadable checkpoint for session {session}: {e}"));
            }
        }
    }
    out.sort_by_key(|(id, _)| *id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pi2-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_lsns_are_monotone() {
        let dir = temp_dir("roundtrip");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        let a = journal.append(1, Some("tok-a"), &json!({"cmd": "open"})).unwrap();
        let b = journal.append(1, None, &json!({"cmd": "run_cell", "sql": "SELECT 1"})).unwrap();
        let c = journal.append(2, None, &json!({"cmd": "close"})).unwrap();
        assert!(a < b && b < c);
        let (frames, report) = scan(&dir).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(report.frames_skipped, 0);
        assert!(!report.truncated_tail);
        assert_eq!(frames[0].token.as_deref(), Some("tok-a"));
        assert_eq!(frames[1].req["sql"], "SELECT 1");
        assert_eq!(frames[2].session, 2);
        // Reopening continues the LSN sequence.
        drop(journal);
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        let d = journal.append(3, None, &json!({"cmd": "close"})).unwrap();
        assert!(d > c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_skips_one_frame_and_keeps_the_rest() {
        let dir = temp_dir("bitflip");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append(1, None, &json!({"cmd": "a"})).unwrap();
        journal.append(1, None, &json!({"cmd": "b"})).unwrap();
        journal.append(1, None, &json!({"cmd": "c"})).unwrap();
        drop(journal);
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the middle frame's payload.
        let frame_len = 8 + serde_json::to_vec(&json!({
            "lsn": 1u64, "session": 1u64, "req": {"cmd": "a"}
        }))
        .unwrap()
        .len();
        bytes[frame_len + 12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (frames, report) = scan(&dir).unwrap();
        assert_eq!(frames.len(), 2, "{report:?}");
        assert_eq!(report.frames_skipped, 1);
        assert!(!report.truncated_tail);
        assert_eq!(frames[0].req["cmd"], "a");
        assert_eq!(frames[1].req["cmd"], "c");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_the_scan_without_losing_the_prefix() {
        let dir = temp_dir("torn");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append(1, None, &json!({"cmd": "a"})).unwrap();
        journal.append(1, None, &json!({"cmd": "b"})).unwrap();
        drop(journal);
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (frames, report) = scan(&dir).unwrap();
        assert_eq!(frames.len(), 1);
        assert!(report.truncated_tail);
        assert_eq!(frames[0].req["cmd"], "a");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_publish_atomically_and_tmp_files_are_ignored() {
        let dir = temp_dir("ckpt");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.write_checkpoint(7, &json!({"session": 7, "cells": []})).unwrap();
        std::fs::write(dir.join("ckpt-9.json.tmp"), b"{\"partial").unwrap();
        let mut report = ScanReport::default();
        let ckpts = load_checkpoints(&dir, &mut report);
        assert_eq!(ckpts.len(), 1);
        assert_eq!(ckpts[0].0, 7);
        assert!(report.warnings.is_empty());
        journal.remove_checkpoint(7).unwrap();
        journal.remove_checkpoint(7).unwrap(); // idempotent
        assert!(load_checkpoints(&dir, &mut report).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_and_clean_marker() {
        let dir = temp_dir("clean");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append(1, None, &json!({"cmd": "a"})).unwrap();
        assert!(journal.bytes() > 0);
        journal.truncate().unwrap();
        assert_eq!(journal.bytes(), 0);
        journal.mark_clean().unwrap();
        assert!(take_clean_marker(&dir));
        assert!(!take_clean_marker(&dir), "marker must be consumed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ensure_lsn_at_least_only_raises() {
        let dir = temp_dir("lsn");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.ensure_lsn_at_least(100);
        assert_eq!(journal.append(1, None, &json!({"cmd": "a"})).unwrap(), 100);
        journal.ensure_lsn_at_least(5); // never lowers
        assert_eq!(journal.append(1, None, &json!({"cmd": "b"})).unwrap(), 101);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_keeps_only_selected_frames() {
        let dir = temp_dir("compact");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append(1, None, &json!({"cmd": "a"})).unwrap();
        journal.append(2, None, &json!({"cmd": "b"})).unwrap();
        let keep_lsn = journal.append(1, None, &json!({"cmd": "c"})).unwrap();
        journal.compact(&|session, lsn| session == 1 && lsn >= keep_lsn).unwrap();
        let (frames, _) = scan(&dir).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].req["cmd"], "c");
        // Appends continue to work on the compacted file.
        journal.append(3, None, &json!({"cmd": "d"})).unwrap();
        let (frames, _) = scan(&dir).unwrap();
        assert_eq!(frames.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
