// Same policy as the library: the binary reports errors, it never panics.
#![deny(clippy::unwrap_used)]

//! The `pi2-server` binary: serve the line-delimited JSON protocol over
//! TCP (optionally journaled via `--journal-dir`), or run a
//! self-contained check — `--smoke` (bind an ephemeral port, drive one
//! session over real TCP, shut down cleanly) or `--recovery-smoke`
//! (spawn a journaled child server, drive a session, `kill -9` it,
//! restart on the same journal, and assert `resume` renders the
//! identical interface).

use pi2_core::prelude::FleetConfig;
use pi2_server::{JournalConfig, Server, ServerConfig, ServerState, TcpClient};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    addr: String,
    scenario: String,
    smoke: bool,
    recovery_smoke: bool,
    workers: usize,
    journal_dir: Option<PathBuf>,
    checkpoint_every: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        scenario: "sdss".to_string(),
        smoke: false,
        recovery_smoke: false,
        workers: 0,
        journal_dir: None,
        checkpoint_every: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs a value")?,
            "--scenario" => args.scenario = it.next().ok_or("--scenario needs a value")?,
            "--smoke" => args.smoke = true,
            "--recovery-smoke" => args.recovery_smoke = true,
            "--journal-dir" => {
                args.journal_dir =
                    Some(PathBuf::from(it.next().ok_or("--journal-dir needs a value")?));
            }
            "--checkpoint-every" => {
                args.checkpoint_every = it
                    .next()
                    .ok_or("--checkpoint-every needs a value")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--workers" => {
                args.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: pi2-server [--addr HOST:PORT] [--scenario {}] [--workers N] \
                     [--journal-dir DIR] [--checkpoint-every N] [--smoke] [--recovery-smoke]",
                    ServerState::scenario_names().join("|")
                ))
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if !ServerState::scenario_names().contains(&args.scenario.as_str()) {
        return Err(format!(
            "unknown scenario `{}` (expected {})",
            args.scenario,
            ServerState::scenario_names().join("|")
        ));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = if args.recovery_smoke {
        recovery_smoke()
    } else if args.smoke {
        smoke(&args.scenario)
    } else {
        serve(&args)
    };
    if let Err(e) = result {
        eprintln!("pi2-server: {e}");
        std::process::exit(1);
    }
}

fn serve(args: &Args) -> Result<(), String> {
    let state = match &args.journal_dir {
        Some(dir) => {
            let config = JournalConfig::new(dir).checkpoint_every(args.checkpoint_every);
            let (state, report) = ServerState::with_journal(FleetConfig::default(), config)
                .map_err(|e| format!("journal recovery in {}: {e}", dir.display()))?;
            for warning in &report.warnings {
                eprintln!("pi2-server: recovery: {warning}");
            }
            if report.clean {
                println!(
                    "pi2-server: clean journal, {} session(s) restored from checkpoints",
                    report.sessions_recovered
                );
            } else {
                println!(
                    "pi2-server: recovered {} session(s) ({} frame(s) replayed, {} skipped, {} warning(s))",
                    report.sessions_recovered,
                    report.frames_replayed,
                    report.frames_skipped,
                    report.warnings.len()
                );
            }
            Arc::new(state)
        }
        None => Arc::new(ServerState::new()),
    };
    let config = ServerConfig::new().workers(args.workers);
    let server = Server::bind_with(&args.addr, state, config).map_err(|e| e.to_string())?;
    println!("pi2-server listening on {}", server.local_addr());
    println!("open a session with: {{\"cmd\": \"open\", \"scenario\": \"{}\"}}", args.scenario);
    server.join();
    println!("pi2-server stopped");
    Ok(())
}

/// A spawned child `pi2-server` process whose listening address was
/// parsed off its stdout. The stdout handle is kept open so the child
/// never sees a broken pipe on its own shutdown messages.
struct ChildServer {
    child: std::process::Child,
    addr: String,
    _stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl ChildServer {
    fn spawn(journal_dir: &std::path::Path) -> Result<Self, String> {
        use std::io::BufRead;
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut child = std::process::Command::new(exe)
            .args(["--addr", "127.0.0.1:0", "--scenario", "toy", "--checkpoint-every", "2"])
            .arg("--journal-dir")
            .arg(journal_dir)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn child server: {e}"))?;
        let stdout = child.stdout.take().ok_or("child stdout not captured")?;
        let mut reader = std::io::BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line).map_err(|e| format!("child stdout: {e}"))?;
            if n == 0 {
                let _ = child.kill();
                return Err("child exited before listening".to_string());
            }
            if let Some(addr) = line.trim().strip_prefix("pi2-server listening on ") {
                return Ok(Self { child, addr: addr.to_string(), _stdout: reader });
            }
        }
    }

    /// `kill -9`: no drain, no final checkpoint, no clean marker.
    fn kill(mut self) -> Result<(), String> {
        self.child.kill().map_err(|e| format!("kill child: {e}"))?;
        self.child.wait().map_err(|e| format!("wait child: {e}"))?;
        Ok(())
    }

    /// Ask the server to drain via the protocol, then reap the process.
    fn shutdown(mut self, client: &mut TcpClient) -> Result<(), String> {
        ok(client, json!({"cmd": "shutdown"}))?;
        self.child.wait().map_err(|e| format!("wait child: {e}"))?;
        Ok(())
    }
}

/// End-to-end crash/recovery check: a journaled child server is driven
/// through open → cells → generate → gesture → render, killed with
/// SIGKILL mid-flight, restarted on the same journal directory, and the
/// resumed session must render byte-identically. A clean shutdown and a
/// third restart then verify the closed session stays closed.
fn recovery_smoke() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("pi2-recovery-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = recovery_smoke_in(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn recovery_smoke_in(dir: &std::path::Path) -> Result<(), String> {
    // Phase 1: drive a session, then SIGKILL the server mid-life.
    let server = ChildServer::spawn(dir)?;
    let mut client = TcpClient::connect(&server.addr).map_err(|e| e.to_string())?;
    let opened =
        ok(&mut client, json!({"cmd": "open", "scenario": "toy", "req_id": "rsmoke-open"}))?;
    let session = opened["session"].as_u64().ok_or("open returned no session id")?;
    let token =
        opened["session_token"].as_str().ok_or("open returned no session_token")?.to_string();
    for (i, sql) in [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    ]
    .iter()
    .enumerate()
    {
        ok(
            &mut client,
            json!({
                "cmd": "run_cell", "session": session, "sql": *sql,
                "req_id": format!("rsmoke-cell-{i}"),
            }),
        )?;
    }
    let generated =
        ok(&mut client, json!({"cmd": "generate", "session": session, "req_id": "rsmoke-gen"}))?;
    let version = generated["version"].as_i64().ok_or("generate returned no version")?;
    ok(
        &mut client,
        json!({
            "cmd": "gesture", "session": session, "version": version, "req_id": "rsmoke-gesture",
            "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
        }),
    )?;
    let rendered = ok(&mut client, json!({"cmd": "render", "session": session}))?;
    let before = rendered["text"].as_str().ok_or("render returned no text")?.to_string();
    drop(client);
    server.kill()?;

    // Phase 2: restart on the same journal; resume must reach the same
    // interface, byte for byte.
    let server = ChildServer::spawn(dir)?;
    let mut client = TcpClient::connect(&server.addr).map_err(|e| e.to_string())?;
    let resumed = ok(&mut client, json!({"cmd": "resume", "token": token.clone()}))?;
    if resumed["session"].as_u64() != Some(session) {
        return Err(format!("resume returned the wrong session: {resumed}"));
    }
    if resumed["recovered"].as_bool() != Some(true) {
        return Err(format!("resumed session was not marked recovered: {resumed}"));
    }
    let rendered = ok(&mut client, json!({"cmd": "render", "session": session}))?;
    let after = rendered["text"].as_str().ok_or("post-recovery render returned no text")?;
    if after != before {
        return Err(format!(
            "post-recovery render diverged:\n--- before crash ---\n{before}\n--- after recovery ---\n{after}"
        ));
    }
    let stats = ok(&mut client, json!({"cmd": "stats"}))?;
    if stats["stats"]["journal"]["sessions_recovered"].as_u64() != Some(1) {
        return Err(format!("stats did not report the recovered session: {stats}"));
    }
    // Phase 3: close the session, shut down cleanly, and confirm a
    // third restart neither resurrects the closed session nor replays.
    ok(&mut client, json!({"cmd": "close", "session": session, "req_id": "rsmoke-close"}))?;
    server.shutdown(&mut client)?;
    drop(client);

    let server = ChildServer::spawn(dir)?;
    let mut client = TcpClient::connect(&server.addr).map_err(|e| e.to_string())?;
    let resumed = client
        .request(json!({"cmd": "resume", "token": token}))
        .map_err(|e| format!("resume after close: {e}"))?;
    if resumed["ok"].as_bool() != Some(false)
        || resumed["error"]["kind"].as_str() != Some("unknown_token")
    {
        return Err(format!("closed session must not be resumable: {resumed}"));
    }
    let stats = ok(&mut client, json!({"cmd": "stats"}))?;
    if stats["stats"]["active_sessions"].as_i64() != Some(0) {
        return Err(format!("closed session leaked through recovery: {stats}"));
    }
    server.shutdown(&mut client)?;
    println!("recovery smoke OK: session {session} survived kill -9 with an identical render");
    Ok(())
}

/// End-to-end check over real TCP: open → run demo cells → generate →
/// gesture → render → stats → shutdown, asserting each step.
fn smoke(scenario: &str) -> Result<(), String> {
    let state = Arc::new(ServerState::new());
    let server = Server::bind("127.0.0.1:0", state).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let mut client = TcpClient::connect(addr).map_err(|e| e.to_string())?;

    let opened = ok(&mut client, json!({"cmd": "open", "scenario": scenario, "id": 1}))?;
    let session = opened["session"].as_i64().ok_or("open returned no session id")?;
    if opened["id"].as_i64() != Some(1) {
        return Err("request id was not echoed".to_string());
    }

    // Demo scenarios replay their paper query logs; `toy` uses a
    // two-literal log whose interface grows a slider. The gesture pair is
    // scenario-appropriate (each generated interface exposes different
    // interactions) but always two coalescable events on one target.
    let demo = match pi2_datasets::demo_scenarios().into_iter().find(|s| s.name == scenario) {
        Some(s) => s.queries.iter().map(|q| q.to_string()).collect::<Vec<_>>(),
        None => vec![
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p".to_string(),
            "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p".to_string(),
        ],
    };
    let gestures = match scenario {
        // Celestial / time-series charts with pan-zoom interactions.
        "sdss" | "covid" => json!([
            {"type": "pan", "chart": 0, "dx": 0.25, "dy": 0.0},
            {"type": "pan", "chart": 0, "dx": 0.25, "dy": 0.0},
        ]),
        // Column/table button group over the ticker facets.
        "sp500" => json!([
            {"type": "set_widget", "widget": 0, "value": {"pick": 1}},
            {"type": "set_widget", "widget": 0, "value": {"pick": 0}},
        ]),
        // The toy log's literal slider.
        _ => json!([
            {"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}},
            {"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}},
        ]),
    };
    for sql in &demo {
        ok(&mut client, json!({"cmd": "run_cell", "session": session, "sql": sql.clone()}))?;
    }

    let generated = ok(&mut client, json!({"cmd": "generate", "session": session}))?;
    let version = generated["version"].as_i64().ok_or("generate returned no version")?;
    let updated = ok(
        &mut client,
        json!({
            "cmd": "gesture", "session": session, "version": version,
            "events": gestures,
        }),
    )?;
    if updated["applied"].as_i64() != Some(1) || updated["coalesced"].as_i64() != Some(1) {
        return Err(format!("expected the two gestures to coalesce into one: {updated}"));
    }

    let rendered = ok(&mut client, json!({"cmd": "render", "session": session}))?;
    if rendered["text"].as_str().is_none_or(str::is_empty) {
        return Err("render returned no text".to_string());
    }

    let stats = ok(&mut client, json!({"cmd": "stats"}))?;
    if stats["stats"]["active_sessions"].as_i64() != Some(1) {
        return Err(format!("expected 1 active session: {stats}"));
    }

    ok(&mut client, json!({"cmd": "close", "session": session}))?;
    let bye = ok(&mut client, json!({"cmd": "shutdown"}))?;
    if bye["draining"].as_bool() != Some(true) {
        return Err(format!("shutdown did not start draining: {bye}"));
    }
    server.join();
    println!("server smoke OK: scenario={scenario} cells={} version={version}", demo.len());
    Ok(())
}

fn ok(client: &mut TcpClient, request: Value) -> Result<Value, String> {
    let what = request["cmd"].as_str().unwrap_or("?").to_string();
    let response = client.request(request).map_err(|e| format!("{what}: {e}"))?;
    if response["ok"].as_bool() != Some(true) {
        return Err(format!("{what} failed: {response}"));
    }
    Ok(response)
}
