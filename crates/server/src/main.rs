// Same policy as the library: the binary reports errors, it never panics.
#![deny(clippy::unwrap_used)]

//! The `pi2-server` binary: serve the line-delimited JSON protocol over
//! TCP, or run a self-contained `--smoke` check (bind an ephemeral port,
//! drive one session over real TCP, shut down cleanly).

use pi2_server::{Server, ServerConfig, ServerState, TcpClient};
use serde_json::{json, Value};
use std::sync::Arc;

struct Args {
    addr: String,
    scenario: String,
    smoke: bool,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        scenario: "sdss".to_string(),
        smoke: false,
        workers: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs a value")?,
            "--scenario" => args.scenario = it.next().ok_or("--scenario needs a value")?,
            "--smoke" => args.smoke = true,
            "--workers" => {
                args.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: pi2-server [--addr HOST:PORT] [--scenario {}] [--workers N] [--smoke]",
                    ServerState::scenario_names().join("|")
                ))
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if !ServerState::scenario_names().contains(&args.scenario.as_str()) {
        return Err(format!(
            "unknown scenario `{}` (expected {})",
            args.scenario,
            ServerState::scenario_names().join("|")
        ));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = if args.smoke { smoke(&args.scenario) } else { serve(&args) };
    if let Err(e) = result {
        eprintln!("pi2-server: {e}");
        std::process::exit(1);
    }
}

fn serve(args: &Args) -> Result<(), String> {
    let state = Arc::new(ServerState::new());
    let config = ServerConfig::new().workers(args.workers);
    let server = Server::bind_with(&args.addr, state, config).map_err(|e| e.to_string())?;
    println!("pi2-server listening on {}", server.local_addr());
    println!("open a session with: {{\"cmd\": \"open\", \"scenario\": \"{}\"}}", args.scenario);
    server.join();
    println!("pi2-server stopped");
    Ok(())
}

/// End-to-end check over real TCP: open → run demo cells → generate →
/// gesture → render → stats → shutdown, asserting each step.
fn smoke(scenario: &str) -> Result<(), String> {
    let state = Arc::new(ServerState::new());
    let server = Server::bind("127.0.0.1:0", state).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let mut client = TcpClient::connect(addr).map_err(|e| e.to_string())?;

    let opened = ok(&mut client, json!({"cmd": "open", "scenario": scenario, "id": 1}))?;
    let session = opened["session"].as_i64().ok_or("open returned no session id")?;
    if opened["id"].as_i64() != Some(1) {
        return Err("request id was not echoed".to_string());
    }

    // Demo scenarios replay their paper query logs; `toy` uses a
    // two-literal log whose interface grows a slider. The gesture pair is
    // scenario-appropriate (each generated interface exposes different
    // interactions) but always two coalescable events on one target.
    let demo = match pi2_datasets::demo_scenarios().into_iter().find(|s| s.name == scenario) {
        Some(s) => s.queries.iter().map(|q| q.to_string()).collect::<Vec<_>>(),
        None => vec![
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p".to_string(),
            "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p".to_string(),
        ],
    };
    let gestures = match scenario {
        // Celestial / time-series charts with pan-zoom interactions.
        "sdss" | "covid" => json!([
            {"type": "pan", "chart": 0, "dx": 0.25, "dy": 0.0},
            {"type": "pan", "chart": 0, "dx": 0.25, "dy": 0.0},
        ]),
        // Column/table button group over the ticker facets.
        "sp500" => json!([
            {"type": "set_widget", "widget": 0, "value": {"pick": 1}},
            {"type": "set_widget", "widget": 0, "value": {"pick": 0}},
        ]),
        // The toy log's literal slider.
        _ => json!([
            {"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}},
            {"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}},
        ]),
    };
    for sql in &demo {
        ok(&mut client, json!({"cmd": "run_cell", "session": session, "sql": sql.clone()}))?;
    }

    let generated = ok(&mut client, json!({"cmd": "generate", "session": session}))?;
    let version = generated["version"].as_i64().ok_or("generate returned no version")?;
    let updated = ok(
        &mut client,
        json!({
            "cmd": "gesture", "session": session, "version": version,
            "events": gestures,
        }),
    )?;
    if updated["applied"].as_i64() != Some(1) || updated["coalesced"].as_i64() != Some(1) {
        return Err(format!("expected the two gestures to coalesce into one: {updated}"));
    }

    let rendered = ok(&mut client, json!({"cmd": "render", "session": session}))?;
    if rendered["text"].as_str().is_none_or(str::is_empty) {
        return Err("render returned no text".to_string());
    }

    let stats = ok(&mut client, json!({"cmd": "stats"}))?;
    if stats["stats"]["active_sessions"].as_i64() != Some(1) {
        return Err(format!("expected 1 active session: {stats}"));
    }

    ok(&mut client, json!({"cmd": "close", "session": session}))?;
    let bye = ok(&mut client, json!({"cmd": "shutdown"}))?;
    if bye["draining"].as_bool() != Some(true) {
        return Err(format!("shutdown did not start draining: {bye}"));
    }
    server.join();
    println!("server smoke OK: scenario={scenario} cells={} version={version}", demo.len());
    Ok(())
}

fn ok(client: &mut TcpClient, request: Value) -> Result<Value, String> {
    let what = request["cmd"].as_str().unwrap_or("?").to_string();
    let response = client.request(request).map_err(|e| format!("{what}: {e}"))?;
    if response["ok"].as_bool() != Some(true) {
        return Err(format!("{what} failed: {response}"));
    }
    Ok(response)
}
