#![warn(missing_docs)]
// The server must degrade to structured error responses, never panic on
// user input: `unwrap()` is denied in non-test code (tests may unwrap).
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pi2-server
//!
//! A concurrent session server for PI2: many analysts' notebook sessions
//! multiplexed over shared, immutable catalogs, driven through a
//! line-delimited JSON protocol — over TCP or fully in-process.
//!
//! The paper demonstrates PI2 inside a single Jupyter notebook; this
//! crate is the piece a hosted deployment needs on top: one resident
//! server holding each scenario's columnar tables **once** (sessions get
//! `Arc`-sharing catalog clones), a **readiness-driven reactor** (a small
//! fixed pool of worker threads, each multiplexing many nonblocking
//! connections — fleet size is bounded by sockets, not threads), a
//! sharded registry so concurrent dispatches to different sessions never
//! contend on one lock, per-session **gesture coalescing** (a pan storm
//! collapses before dispatch), bounded queues with structured
//! `overloaded` backpressure, per-endpoint latency telemetry, and
//! graceful drain on shutdown.
//!
//! ```
//! use pi2_server::LocalClient;
//! use serde_json::json;
//!
//! let client = LocalClient::standalone();
//! let opened = client.request(json!({"cmd": "open", "scenario": "toy"}));
//! let session = opened["session"].as_i64().unwrap();
//! for sql in [
//!     "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
//!     "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
//! ] {
//!     client.request(json!({"cmd": "run_cell", "session": session, "sql": sql}));
//! }
//! let generated = client.request(json!({"cmd": "generate", "session": session}));
//! assert_eq!(generated["ok"].as_bool(), Some(true));
//! // Operate the generated slider: the chart's WHERE literal follows it.
//! let updated = client.request(json!({
//!     "cmd": "gesture", "session": session,
//!     "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
//! }));
//! assert_eq!(updated["applied"].as_i64(), Some(1));
//! assert!(updated["updates"][0]["sql"].as_str().unwrap().contains("a = 2"));
//! ```
//!
//! See `DESIGN.md` ("Serving") for the protocol reference and the
//! concurrency model.

pub mod client;
pub mod journal;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod session;
pub mod state;

pub use client::{LocalClient, RetryPolicy, TcpClient};
pub use journal::{Journal, JournalConfig};
pub use protocol::{CacheMode, CacheOptions, ErrorKind, OpenOptions, Request, Strategy};
pub use registry::Registry;
pub use server::{Server, ServerConfig};
pub use session::{coalesce, Enqueue, SessionEntry, DEDUPE_WINDOW, QUEUE_CAP};
pub use state::{JournalCounters, RecoveryReport, ServerCounters, ServerState};
