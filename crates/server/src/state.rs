//! Shared server state and the request dispatcher.
//!
//! [`ServerState::handle_line`] is the transport-independent heart of the
//! server: the TCP loop and the in-process [`LocalClient`](crate::LocalClient)
//! both feed request lines through it, so they observe byte-identical
//! behavior.

use crate::protocol::{
    self, defaults, error_response, CacheMode, ErrorKind, OpenOptions, Request, Strategy,
};
use crate::registry::Registry;
use crate::session::{Enqueue, SessionEntry};
use pi2_core::prelude::{
    Catalog, Event, ExecLimits, FleetConfig, FleetHandle, GenerationBudget, Pi2, SearchStrategy,
    WidgetValue,
};
use pi2_notebook::{Notebook, NotebookError};
use pi2_telemetry::LatencyHistogram;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server-wide request counters.
#[derive(Default)]
pub struct ServerCounters {
    /// Request lines handled (any verb, any outcome).
    pub requests: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Gesture requests rejected with `overloaded`.
    pub overloaded: AtomicU64,
    /// Sessions opened.
    pub opened: AtomicU64,
    /// Sessions closed.
    pub closed: AtomicU64,
    /// TCP connections accepted by the reactor.
    pub connections_accepted: AtomicU64,
    /// TCP connections closed by the reactor (peer hangup, fatal error,
    /// write-cap breach, or drain).
    pub connections_closed: AtomicU64,
}

/// All state shared between connections (and with [`LocalClient`]s).
///
/// Catalogs are built once per scenario and cached; a session's catalog is
/// a cheap clone whose tables are `Arc`-shared with every other session on
/// the same scenario, so N sessions cost N notebooks but one dataset.
pub struct ServerState {
    registry: Registry,
    catalogs: Mutex<BTreeMap<String, Catalog>>,
    fleet: FleetHandle,
    draining: AtomicBool,
    endpoint_latency: Mutex<BTreeMap<&'static str, LatencyHistogram>>,
    counters: ServerCounters,
}

impl Default for ServerState {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerState {
    /// Fresh state with no sessions and no cached catalogs, using the
    /// default fleet configuration.
    pub fn new() -> Self {
        Self::with_fleet(FleetConfig::default())
    }

    /// Fresh state whose fleet-wide generation cache, single-flight
    /// table, and admission limiter use `fleet` (see
    /// [`FleetConfig`]).
    pub fn with_fleet(fleet: FleetConfig) -> Self {
        Self {
            registry: Registry::new(),
            catalogs: Mutex::new(BTreeMap::new()),
            fleet: FleetHandle::new(fleet),
            draining: AtomicBool::new(false),
            endpoint_latency: Mutex::new(BTreeMap::new()),
            counters: ServerCounters::default(),
        }
    }

    /// The session registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Server-wide request/session/connection counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// The process-wide fleet handle shared by every `shared`-mode
    /// session.
    pub fn fleet(&self) -> &FleetHandle {
        &self.fleet
    }

    /// Whether graceful shutdown has begun.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begin graceful shutdown: new non-`stats` requests are refused while
    /// in-flight dispatches finish.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// The scenario names this server can open sessions on.
    pub fn scenario_names() -> &'static [&'static str] {
        &["toy", "covid", "sdss", "sp500"]
    }

    /// The shared catalog for `scenario`, building and caching it on first
    /// use. Clones share the underlying tables via `Arc`.
    fn catalog_for(&self, scenario: &str) -> Option<Catalog> {
        let mut cache = lock(&self.catalogs);
        if let Some(c) = cache.get(scenario) {
            return Some(c.clone());
        }
        let built = match scenario {
            "toy" => pi2_datasets::toy::default_catalog(),
            "covid" => pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default()),
            "sdss" => pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default()),
            "sp500" => pi2_datasets::sp500::catalog(&pi2_datasets::sp500::Config::default()),
            _ => return None,
        };
        cache.insert(scenario.to_string(), built.clone());
        Some(built)
    }

    /// Handle one request line; returns the response (without newline).
    /// This is the single entry point for every transport.
    pub fn handle_line(&self, line: &str) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (request, id) = match protocol::parse_request(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                return to_line(&e);
            }
        };
        let endpoint = endpoint_name(&request);
        let start = Instant::now();
        let mut response = self.handle_request(request);
        lock(&self.endpoint_latency).entry(endpoint).or_default().record(start.elapsed());
        if response["ok"].as_bool() != Some(true) {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(id) = id {
            response["id"] = id;
        }
        to_line(&response)
    }

    /// The response for a request line that was not valid UTF-8 (counted
    /// like any other bad request; no id can be recovered from it).
    pub fn handle_line_invalid_utf8(&self) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        to_line(&error_response(ErrorKind::BadRequest, "request line is not valid UTF-8"))
    }

    /// The response for a request line that exceeded the transport's
    /// line-length cap; the transport discards the rest of the line.
    pub fn handle_line_too_long(&self, cap: usize) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        to_line(&error_response(
            ErrorKind::TooLarge,
            format!("request line exceeds {cap} bytes; discarded to next newline"),
        ))
    }

    /// Handle a parsed request.
    pub fn handle_request(&self, request: Request) -> Value {
        if self.draining() && !matches!(request, Request::Stats { .. } | Request::Shutdown) {
            return error_response(ErrorKind::ShuttingDown, "server is draining");
        }
        match request {
            Request::Open { scenario, options } => self.open(&scenario, options),
            Request::Close { session } => self.close(session),
            Request::RunCell { session, sql } => self.run_cell(session, &sql),
            Request::Generate { session } => self.generate(session),
            Request::ApplyBinding { session, version, widget, value } => {
                self.apply_binding(session, version, widget, value)
            }
            Request::Gesture { session, version, events, include_data } => {
                self.gesture(session, version, events, include_data)
            }
            Request::Render { session, version } => self.render(session, version),
            Request::Stats { session } => self.stats(session),
            Request::Shutdown => {
                self.begin_drain();
                json!({"ok": true, "draining": true})
            }
        }
    }

    fn open(&self, scenario: &str, options: OpenOptions) -> Value {
        let Some(mut catalog) = self.catalog_for(scenario) else {
            return error_response(
                ErrorKind::UnknownScenario,
                format!("unknown scenario `{scenario}` ({})", Self::scenario_names().join("|")),
            );
        };
        catalog.set_limits(ExecLimits {
            max_rows: options.max_rows.filter(|&n| n > 0),
            timeout: match options.timeout_ms {
                None => Some(defaults::EXEC_TIMEOUT),
                Some(0) => None,
                Some(ms) => Some(Duration::from_millis(ms)),
            },
        });
        let budget = GenerationBudget {
            deadline: match options.deadline_ms {
                None => Some(defaults::GENERATION_DEADLINE),
                Some(0) => None,
                Some(ms) => Some(Duration::from_millis(ms)),
            },
            max_iterations: options.max_iterations,
            max_states: None,
        };
        let strategy = match options.strategy {
            Strategy::FullMerge => SearchStrategy::FullMerge,
            Strategy::Mcts => SearchStrategy::default(),
            Strategy::Greedy => SearchStrategy::Greedy { max_evaluations: 200 },
        };
        let mut builder = Pi2::builder(catalog).strategy(strategy).budget(budget);
        if options.cache.mode == CacheMode::Shared {
            // One fleet handle per process; a per-session `wait_ms` only
            // overrides how long this session waits on another session's
            // in-flight generation, not the shared state itself.
            let handle = match options.cache.wait_ms {
                None => self.fleet.clone(),
                Some(0) => self.fleet.clone().with_follower_wait(Some(Duration::ZERO)),
                Some(ms) => self.fleet.clone().with_follower_wait(Some(Duration::from_millis(ms))),
            };
            builder = builder.fleet(&handle);
        }
        let pi2 = builder.build();
        let id = self.registry.allocate_id();
        let entry = Arc::new(SessionEntry::new(id, scenario.to_string(), Notebook::with_pi2(pi2)));
        self.registry.insert(entry);
        self.counters.opened.fetch_add(1, Ordering::Relaxed);
        json!({"ok": true, "session": id, "scenario": scenario})
    }

    fn close(&self, session: u64) -> Value {
        match self.registry.remove(session) {
            Some(_) => {
                self.counters.closed.fetch_add(1, Ordering::Relaxed);
                json!({"ok": true, "closed": session})
            }
            None => unknown_session(session),
        }
    }

    fn entry(&self, session: u64) -> Result<Arc<SessionEntry>, Value> {
        self.registry.get(session).ok_or_else(|| unknown_session(session))
    }

    fn run_cell(&self, session: u64, sql: &str) -> Value {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let mut core = entry.lock_core();
        let cell = core.notebook.add_cell(sql);
        match core.notebook.run_cell(cell) {
            Ok(result) => {
                let columns: Vec<Value> =
                    result.schema.fields.iter().map(|f| json!(f.name.clone())).collect();
                json!({"ok": true, "cell": cell, "rows": result.rows.len(), "columns": columns})
            }
            Err(e) => notebook_error(&e),
        }
    }

    fn generate(&self, session: u64) -> Value {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let mut core = entry.lock_core();
        match core.notebook.generate_interface() {
            Ok(version) => {
                entry.latest_version.fetch_max(version, Ordering::SeqCst);
                let mut resp = json!({"ok": true, "version": version});
                if let Some(v) = core.notebook.versions().last() {
                    resp["charts"] = json!(v.generated.interface.charts.len());
                    resp["widgets"] = json!(v.generated.interface.widgets.len());
                    // Truthful quality label (full|anytime|fallback) and,
                    // for shared-cache sessions, how the fleet served it
                    // (hit|rebind|miss|join|join-timeout|shed).
                    resp["degradation"] = json!(v.generated.stats.degradation.to_string());
                    if let Some(outcome) = v.generated.stats.fleet {
                        resp["fleet"] = json!(outcome.to_string());
                    }
                } else {
                    resp["charts"] = json!(0);
                    resp["widgets"] = json!(0);
                }
                resp
            }
            Err(e) => notebook_error(&e),
        }
    }

    /// Resolve an optional wire version against the session's latest.
    fn resolve_version(entry: &SessionEntry, version: Option<usize>) -> Result<usize, Value> {
        let latest = entry.latest_version.load(Ordering::SeqCst);
        match version {
            None if latest == 0 => Err(error_response(
                ErrorKind::UnknownVersion,
                "no interface generated yet (call generate first)",
            )),
            None => Ok(latest),
            Some(v) if v == 0 || v > latest => Err(error_response(
                ErrorKind::UnknownVersion,
                format!("unknown interface version {v} (latest is {latest})"),
            )),
            Some(v) => Ok(v),
        }
    }

    fn apply_binding(
        &self,
        session: u64,
        version: Option<usize>,
        widget: usize,
        value: WidgetValue,
    ) -> Value {
        self.gesture(session, version, vec![Event::SetWidget { widget, value }], false)
    }

    fn gesture(
        &self,
        session: u64,
        version: Option<usize>,
        events: Vec<Event>,
        include_data: bool,
    ) -> Value {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let version = match Self::resolve_version(&entry, version) {
            Ok(v) => v,
            Err(e) => return e,
        };
        let single = events.len() == 1;
        match entry.enqueue(version, events) {
            Enqueue::Overloaded(depth) => {
                self.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                let mut e = error_response(
                    ErrorKind::Overloaded,
                    format!("session {session} queue is full ({depth} pending)"),
                );
                e["error"]["queue_depth"] = json!(depth);
                e
            }
            Enqueue::Accepted(_) => match entry.drain_and_dispatch() {
                Err(e) => notebook_error(&e),
                Ok(outcome) => {
                    if single && outcome.applied == 0 && !outcome.errors.is_empty() {
                        return error_response(ErrorKind::Session, &outcome.errors[0]);
                    }
                    let updates: Vec<Value> = outcome
                        .updates
                        .iter()
                        .map(|u| {
                            let mut obj = json!({
                                "chart": u.chart,
                                "sql": u.query.to_string(),
                                "rows": u.result.rows.len(),
                            });
                            if include_data {
                                obj["data"] = result_rows(&u.result);
                            }
                            obj
                        })
                        .collect();
                    let mut resp = json!({
                        "ok": true,
                        "version": version,
                        "applied": outcome.applied,
                        "coalesced": outcome.coalesced,
                        "updates": updates,
                    });
                    if !outcome.errors.is_empty() {
                        resp["errors"] = Value::Array(
                            outcome.errors.iter().map(|e| json!(e.to_string())).collect(),
                        );
                    }
                    resp
                }
            },
        }
    }

    fn render(&self, session: u64, version: Option<usize>) -> Value {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let version = match Self::resolve_version(&entry, version) {
            Ok(v) => v,
            Err(e) => return e,
        };
        let mut core = entry.lock_core();
        let live = match core.live_session(version) {
            Ok(s) => s,
            Err(e) => return notebook_error(&e),
        };
        match pi2_render::render_session(live) {
            Ok(text) => json!({"ok": true, "version": version, "text": text}),
            Err(e) => error_response(ErrorKind::Session, e),
        }
    }

    fn stats(&self, session: Option<u64>) -> Value {
        match session {
            Some(id) => {
                let entry = match self.entry(id) {
                    Ok(e) => e,
                    Err(e) => return e,
                };
                let mut per_version = serde_json::Map::new();
                {
                    let core = entry.lock_core();
                    for (version, live) in &core.live {
                        per_version
                            .insert(format!("v{version}"), parse_json(&live.stats().to_json()));
                    }
                }
                json!({
                    "ok": true,
                    "session": id,
                    "scenario": entry.scenario.clone(),
                    "queue_depth": entry.queue_depth(),
                    "enqueued": entry.counters.enqueued.load(Ordering::Relaxed),
                    "coalesced": entry.counters.coalesced.load(Ordering::Relaxed),
                    "dispatched": entry.counters.dispatched.load(Ordering::Relaxed),
                    "overloaded": entry.counters.overloaded.load(Ordering::Relaxed),
                    "versions": Value::Object(per_version),
                })
            }
            None => json!({"ok": true, "stats": self.stats_json()}),
        }
    }

    /// How many per-session detail rows `stats` will list before
    /// switching to totals only: a 10k-session fleet must not serialize
    /// 10k objects per stats call.
    pub const STATS_SESSION_DETAIL_CAP: usize = 32;

    /// Server-wide stats as a JSON object: counters, gauges (active
    /// sessions, queue depths), and per-endpoint latency histograms.
    ///
    /// Per-session counters are always *aggregated* in `session_totals`;
    /// the per-session `sessions` list is included only while the fleet
    /// is small (≤ [`Self::STATS_SESSION_DETAIL_CAP`] sessions) —
    /// `sessions_omitted` reports how many were elided.
    pub fn stats_json(&self) -> Value {
        let endpoints: serde_json::Map = lock(&self.endpoint_latency)
            .iter()
            .map(|(name, h)| ((*name).to_string(), parse_json(&h.to_json())))
            .collect();
        let mut active = 0u64;
        let (mut queued, mut enqueued, mut coalesced, mut dispatched, mut overloaded) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        self.registry.for_each(|e| {
            active += 1;
            queued += e.queue_depth() as u64;
            enqueued += e.counters.enqueued.load(Ordering::Relaxed);
            coalesced += e.counters.coalesced.load(Ordering::Relaxed);
            dispatched += e.counters.dispatched.load(Ordering::Relaxed);
            overloaded += e.counters.overloaded.load(Ordering::Relaxed);
        });
        let detailed = active as usize <= Self::STATS_SESSION_DETAIL_CAP;
        let sessions: Vec<Value> = if detailed {
            self.registry
                .entries()
                .iter()
                .map(|e| {
                    json!({
                        "id": e.id,
                        "scenario": e.scenario.clone(),
                        "queue_depth": e.queue_depth(),
                        "enqueued": e.counters.enqueued.load(Ordering::Relaxed),
                        "coalesced": e.counters.coalesced.load(Ordering::Relaxed),
                        "dispatched": e.counters.dispatched.load(Ordering::Relaxed),
                        "overloaded": e.counters.overloaded.load(Ordering::Relaxed),
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let fleet = self.fleet.counters();
        json!({
            "active_sessions": active,
            "draining": self.draining(),
            "requests": self.counters.requests.load(Ordering::Relaxed),
            "errors": self.counters.errors.load(Ordering::Relaxed),
            "overloaded": self.counters.overloaded.load(Ordering::Relaxed),
            "opened": self.counters.opened.load(Ordering::Relaxed),
            "closed": self.counters.closed.load(Ordering::Relaxed),
            "connections_accepted":
                self.counters.connections_accepted.load(Ordering::Relaxed),
            "connections_closed": self.counters.connections_closed.load(Ordering::Relaxed),
            "session_totals": {
                "queue_depth": queued,
                "enqueued": enqueued,
                "coalesced": coalesced,
                "dispatched": dispatched,
                "overloaded": overloaded,
            },
            "sessions_omitted": if detailed { 0 } else { active },
            "fleet": {
                "hits": fleet.hits,
                "misses": fleet.misses,
                "joins": fleet.joins,
                "sheds": fleet.sheds,
                "rebinds": fleet.rebinds,
                "join_timeouts": fleet.join_timeouts,
                "entries": fleet.entries,
            },
            "endpoints": Value::Object(endpoints),
            "sessions": sessions,
        })
    }
}

impl SessionEntry {
    /// Lock the serial core, recovering from poisoning.
    pub fn lock_core(&self) -> std::sync::MutexGuard<'_, crate::session::SessionCore> {
        self.core.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn endpoint_name(request: &Request) -> &'static str {
    match request {
        Request::Open { .. } => "open",
        Request::Close { .. } => "close",
        Request::RunCell { .. } => "run_cell",
        Request::Generate { .. } => "generate",
        Request::ApplyBinding { .. } => "apply_binding",
        Request::Gesture { .. } => "gesture",
        Request::Render { .. } => "render",
        Request::Stats { .. } => "stats",
        Request::Shutdown => "shutdown",
    }
}

fn unknown_session(id: u64) -> Value {
    error_response(ErrorKind::UnknownSession, format!("no session {id}"))
}

fn notebook_error(e: &NotebookError) -> Value {
    let kind = match e {
        NotebookError::UnknownVersion(_) => ErrorKind::UnknownVersion,
        NotebookError::Generation(_) => ErrorKind::Generation,
        _ => ErrorKind::Notebook,
    };
    error_response(kind, e)
}

/// Embed a JSON string produced by a `to_json()` helper as a value.
fn parse_json(text: &str) -> Value {
    serde_json::from_str(text).unwrap_or(Value::Null)
}

/// Serialize a response document to one protocol line.
fn to_line(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|e| {
        format!("{{\"ok\":false,\"error\":{{\"kind\":\"internal\",\"message\":\"response serialization failed: {e}\"}}}}")
    })
}

/// Result rows as arrays of JSON values.
fn result_rows(result: &pi2_engine::ResultSet) -> Value {
    Value::Array(
        result
            .rows
            .iter()
            .map(|row| Value::Array(row.iter().map(protocol::engine_value_to_json).collect()))
            .collect(),
    )
}
