//! Shared server state and the request dispatcher.
//!
//! [`ServerState::handle_line`] is the transport-independent heart of the
//! server: the TCP loop and the in-process [`LocalClient`](crate::LocalClient)
//! both feed request lines through it, so they observe byte-identical
//! behavior.

use crate::journal::{self, Journal, JournalConfig};
use crate::protocol::{
    self, defaults, error_response, CacheMode, ErrorKind, OpenOptions, RenderDeltaOptions,
    RenderDeltaResponse, Request, Strategy, PROTOCOL_VERSION,
};
use crate::registry::Registry;
use crate::session::{coalesce, DedupeWindow, DurableOp, Enqueue, SessionEntry};
use pi2_core::prelude::{
    Catalog, Event, ExecLimits, FleetConfig, FleetHandle, GenerationBudget, Pi2, Renderer as _,
    SearchStrategy, WidgetValue,
};
use pi2_notebook::{Notebook, NotebookError};
use pi2_telemetry::LatencyHistogram;
use serde_json::{json, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server-wide request counters.
#[derive(Default)]
pub struct ServerCounters {
    /// Request lines handled (any verb, any outcome).
    pub requests: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Gesture requests rejected with `overloaded`.
    pub overloaded: AtomicU64,
    /// Sessions opened.
    pub opened: AtomicU64,
    /// Sessions closed.
    pub closed: AtomicU64,
    /// TCP connections accepted by the reactor.
    pub connections_accepted: AtomicU64,
    /// TCP connections closed by the reactor (peer hangup, fatal error,
    /// write-cap breach, or drain).
    pub connections_closed: AtomicU64,
}

/// Durability-layer counters, surfaced in `stats` under `"journal"`.
#[derive(Default)]
pub struct JournalCounters {
    /// Sessions rebuilt by the last recovery.
    pub sessions_recovered: AtomicU64,
    /// Journal frames dropped during recovery (corrupt, orphaned,
    /// duplicate `req_id`, or superseded by a newer checkpoint).
    pub frames_skipped: AtomicU64,
    /// Journal frames replayed during recovery.
    pub frames_replayed: AtomicU64,
    /// Structured warnings from recovery and journaling (corruption
    /// skips, failed appends/checkpoints, fsync errors).
    pub warnings: AtomicU64,
}

/// What [`ServerState::recover`] found and rebuilt.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Sessions rebuilt into the registry.
    pub sessions_recovered: u64,
    /// Tail frames replayed on top of checkpoints.
    pub frames_replayed: u64,
    /// Frames dropped (corruption, orphans, tombstoned sessions).
    pub frames_skipped: u64,
    /// Tombstoned (closed-before-crash) sessions whose frames and
    /// checkpoints were discarded.
    pub tombstones: u64,
    /// Human-readable irregularity notes.
    pub warnings: Vec<String>,
    /// The journal carried a clean-shutdown marker: checkpoints were
    /// trusted as-is and no tail replay ran.
    pub clean: bool,
}

/// All state shared between connections (and with [`LocalClient`]s).
///
/// Catalogs are built once per scenario and cached; a session's catalog is
/// a cheap clone whose tables are `Arc`-shared with every other session on
/// the same scenario, so N sessions cost N notebooks but one dataset.
pub struct ServerState {
    registry: Registry,
    catalogs: Mutex<BTreeMap<String, Catalog>>,
    fleet: FleetHandle,
    draining: AtomicBool,
    endpoint_latency: Mutex<BTreeMap<&'static str, LatencyHistogram>>,
    counters: ServerCounters,
    /// The write-ahead journal, attached once (after recovery replay, so
    /// replay itself is never re-journaled).
    journal: OnceLock<Arc<Journal>>,
    journal_counters: JournalCounters,
    /// Server-level `req_id` window for `open` retries: an open carries
    /// no session id, so its dedupe cannot live on a session entry. The
    /// lock is held across the whole open when a `req_id` is present,
    /// making duplicate-open suppression race-free. Reseeded from
    /// journaled open frames on recovery.
    open_dedupe: Mutex<DedupeWindow>,
    /// Sessions a recovery *failed* to rebuild (e.g. a transiently
    /// unreplayable frame). Their journal frames must survive
    /// compaction and truncation so a later restart can retry, instead
    /// of turning a transient replay failure into permanent loss.
    unrecovered: Mutex<HashSet<u64>>,
}

impl Default for ServerState {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerState {
    /// Fresh state with no sessions and no cached catalogs, using the
    /// default fleet configuration.
    pub fn new() -> Self {
        Self::with_fleet(FleetConfig::default())
    }

    /// Fresh state whose fleet-wide generation cache, single-flight
    /// table, and admission limiter use `fleet` (see
    /// [`FleetConfig`]).
    pub fn with_fleet(fleet: FleetConfig) -> Self {
        Self {
            registry: Registry::new(),
            catalogs: Mutex::new(BTreeMap::new()),
            fleet: FleetHandle::new(fleet),
            draining: AtomicBool::new(false),
            endpoint_latency: Mutex::new(BTreeMap::new()),
            counters: ServerCounters::default(),
            journal: OnceLock::new(),
            journal_counters: JournalCounters::default(),
            open_dedupe: Mutex::new(DedupeWindow::with_capacity(Self::OPEN_DEDUPE_WINDOW)),
            unrecovered: Mutex::new(HashSet::new()),
        }
    }

    /// Capacity of the server-level `open` dedupe window. Larger than
    /// the per-session window: every open in the fleet shares it, and a
    /// retry must still find its id after a burst of unrelated opens.
    pub const OPEN_DEDUPE_WINDOW: usize = 1024;

    /// Fresh state journaling to `config.dir` (creating it if needed),
    /// recovering whatever sessions a previous process left there. This
    /// is the durable-server entry point: `pi2-server --journal-dir`.
    pub fn with_journal(
        fleet: FleetConfig,
        config: JournalConfig,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        Self::recover(fleet, config)
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.get()
    }

    /// Durability counters (`sessions_recovered`, `frames_skipped`, …).
    pub fn journal_counters(&self) -> &JournalCounters {
        &self.journal_counters
    }

    /// The session registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Server-wide request/session/connection counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// The process-wide fleet handle shared by every `shared`-mode
    /// session.
    pub fn fleet(&self) -> &FleetHandle {
        &self.fleet
    }

    /// Whether graceful shutdown has begun.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begin graceful shutdown: new non-`stats` requests are refused while
    /// in-flight dispatches finish.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// The scenario names this server can open sessions on.
    pub fn scenario_names() -> &'static [&'static str] {
        &["toy", "covid", "sdss", "sp500"]
    }

    /// The shared catalog for `scenario`, building and caching it on first
    /// use. Clones share the underlying tables via `Arc`.
    fn catalog_for(&self, scenario: &str) -> Option<Catalog> {
        let mut cache = lock(&self.catalogs);
        if let Some(c) = cache.get(scenario) {
            return Some(c.clone());
        }
        let built = match scenario {
            "toy" => pi2_datasets::toy::default_catalog(),
            "covid" => pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default()),
            "sdss" => pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default()),
            "sp500" => pi2_datasets::sp500::catalog(&pi2_datasets::sp500::Config::default()),
            _ => return None,
        };
        cache.insert(scenario.to_string(), built.clone());
        Some(built)
    }

    /// Handle one request line; returns the response (without newline).
    /// This is the single entry point for every transport.
    pub fn handle_line(&self, line: &str) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (request, id, req_id) = match protocol::parse_request_full(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                return to_line(&e);
            }
        };
        let endpoint = endpoint_name(&request);
        let start = Instant::now();
        let mut response = self.handle_request_with(request, req_id.as_deref());
        lock(&self.endpoint_latency).entry(endpoint).or_default().record(start.elapsed());
        if response["ok"].as_bool() != Some(true) {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(id) = id {
            response["id"] = id;
        }
        to_line(&response)
    }

    /// The response for a request line that was not valid UTF-8 (counted
    /// like any other bad request; no id can be recovered from it).
    pub fn handle_line_invalid_utf8(&self) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        to_line(&error_response(ErrorKind::BadRequest, "request line is not valid UTF-8"))
    }

    /// The response for a request line that exceeded the transport's
    /// line-length cap; the transport discards the rest of the line.
    pub fn handle_line_too_long(&self, cap: usize) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        to_line(&error_response(
            ErrorKind::TooLarge,
            format!("request line exceeds {cap} bytes; discarded to next newline"),
        ))
    }

    /// Handle a parsed request (with no idempotency key).
    pub fn handle_request(&self, request: Request) -> Value {
        self.handle_request_with(request, None)
    }

    /// Handle a parsed request carrying an optional client-assigned
    /// `req_id`. A mutating request whose `req_id` was already accepted
    /// is answered from the cached response (marked `"deduped": true`)
    /// without re-executing: delivery is at-least-once, the visible
    /// effect exactly-once. Each session's mutations run under the
    /// entry's order lock, so the dedupe lookup, the execution, the
    /// journal append, and the response caching form one atomic step —
    /// journal replay order always equals live execution order, and a
    /// concurrently retried `req_id` can never execute twice.
    pub fn handle_request_with(&self, request: Request, req_id: Option<&str>) -> Value {
        if self.draining() && !matches!(request, Request::Stats { .. } | Request::Shutdown) {
            return error_response(ErrorKind::ShuttingDown, "server is draining");
        }
        match request {
            Request::Open { scenario, options } => self.open(&scenario, options, req_id),
            Request::Close { session } => self.close(session),
            mutation @ (Request::RunCell { .. }
            | Request::Generate { .. }
            | Request::ApplyBinding { .. }
            | Request::Gesture { .. }) => self.mutate(mutation, req_id),
            Request::Render { session, version } => self.render(session, version),
            Request::RenderDelta { session, options } => self.render_delta(session, options),
            Request::Stats { session } => self.stats(session),
            Request::Resume { token } => self.resume(&token),
            Request::Shutdown => {
                self.begin_drain();
                json!({"ok": true, "draining": true})
            }
        }
    }

    /// Execute a session-targeted mutation under the session's order
    /// lock, serializing it end to end against every other mutation of
    /// the same session.
    fn mutate(&self, request: Request, req_id: Option<&str>) -> Value {
        let Some(session) = request.session() else {
            return error_response(ErrorKind::BadRequest, "mutation without a session");
        };
        let Some(entry) = self.registry.get(session) else { return unknown_session(session) };
        let _order = entry.lock_order();
        if let Some(rid) = req_id {
            if let Some(cached) = entry.dedupe_get(rid) {
                return cached;
            }
        }
        // Capture the wire form before `request` moves into dispatch; the
        // journal frame is written only if the response comes back ok.
        let record = if self.journal.get().is_some() {
            Some(mutation_record(&request, req_id))
        } else {
            None
        };
        let response = match request {
            Request::RunCell { session, sql } => self.run_cell(session, &sql),
            Request::Generate { session } => self.generate(session),
            Request::ApplyBinding { session, version, widget, value } => {
                self.apply_binding(session, version, widget, value)
            }
            Request::Gesture { session, version, events, include_data } => {
                self.gesture(session, version, events, include_data)
            }
            _ => return error_response(ErrorKind::BadRequest, "not a session mutation"),
        };
        if response["ok"].as_bool() == Some(true) {
            // Cache before journaling: a checkpoint triggered by this
            // very mutation must snapshot a dedupe window that already
            // holds its req_id, or the frame (covered by the checkpoint,
            // so never replayed) would leave a post-crash retry free to
            // re-apply the mutation.
            if let Some(rid) = req_id {
                entry.dedupe_put(rid, response.clone());
            }
            if let Some(record) = record {
                if let Some(journal) = self.journal.get().cloned() {
                    self.journal_mutation(&journal, &entry, record, &response);
                }
            }
        }
        response
    }

    fn open(&self, scenario: &str, options: OpenOptions, req_id: Option<&str>) -> Value {
        let Some(rid) = req_id else { return self.open_fresh(scenario, options, None) };
        // Hold the window lock across the whole open: a concurrent or
        // later retry of the same req_id (TcpClient auto-resends `open`
        // after a lost ack) reads the cached response instead of
        // creating a second, orphaned session.
        let mut window = lock(&self.open_dedupe);
        if let Some(cached) = window.get(rid) {
            let mut replay = cached.clone();
            replay["deduped"] = Value::Bool(true);
            return replay;
        }
        let response = self.open_fresh(scenario, options, Some(rid));
        if response["ok"].as_bool() == Some(true) {
            window.put(rid, response.clone());
        }
        response
    }

    fn open_fresh(&self, scenario: &str, options: OpenOptions, req_id: Option<&str>) -> Value {
        let pi2 = match self.build_pi2(scenario, &options) {
            Ok(p) => p,
            Err(e) => return e,
        };
        let id = self.registry.allocate_id();
        let token = session_token(id);
        let entry = Arc::new(SessionEntry::new(
            id,
            scenario.to_string(),
            token.clone(),
            Notebook::with_pi2(pi2),
        ));
        let response = json!({
            "ok": true, "session": id, "scenario": scenario, "session_token": token,
            "protocol": PROTOCOL_VERSION,
        });
        if let Some(rid) = req_id {
            entry.dedupe_put(rid, response.clone());
        }
        // Journal the open frame *before* publishing the entry, so no
        // other connection can journal a frame for this session ahead of
        // the open frame recovery needs to bootstrap it.
        if let Some(journal) = self.journal.get().cloned() {
            let record =
                mutation_record(&Request::Open { scenario: scenario.to_string(), options }, req_id);
            self.journal_mutation(&journal, &entry, record, &response);
        }
        self.registry.insert(entry);
        self.counters.opened.fetch_add(1, Ordering::Relaxed);
        response
    }

    /// Build a session's engine from `open` options. Shared by `open` and
    /// recovery (which replays the journaled open request through this
    /// same path, so a rebuilt session searches with identical budgets).
    fn build_pi2(&self, scenario: &str, options: &OpenOptions) -> Result<Pi2, Value> {
        let Some(mut catalog) = self.catalog_for(scenario) else {
            return Err(error_response(
                ErrorKind::UnknownScenario,
                format!("unknown scenario `{scenario}` ({})", Self::scenario_names().join("|")),
            ));
        };
        catalog.set_limits(ExecLimits {
            max_rows: options.max_rows.filter(|&n| n > 0),
            timeout: match options.timeout_ms {
                None => Some(defaults::EXEC_TIMEOUT),
                Some(0) => None,
                Some(ms) => Some(Duration::from_millis(ms)),
            },
        });
        let budget = GenerationBudget {
            deadline: match options.deadline_ms {
                None => Some(defaults::GENERATION_DEADLINE),
                Some(0) => None,
                Some(ms) => Some(Duration::from_millis(ms)),
            },
            max_iterations: options.max_iterations,
            max_states: None,
        };
        let strategy = match options.strategy {
            Strategy::FullMerge => SearchStrategy::FullMerge,
            Strategy::Mcts => SearchStrategy::default(),
            Strategy::Greedy => SearchStrategy::Greedy { max_evaluations: 200 },
        };
        let mut builder = Pi2::builder(catalog).strategy(strategy).budget(budget);
        if options.cache.mode == CacheMode::Shared {
            // One fleet handle per process; a per-session `wait_ms` only
            // overrides how long this session waits on another session's
            // in-flight generation, not the shared state itself.
            let handle = match options.cache.wait_ms {
                None => self.fleet.clone(),
                Some(0) => self.fleet.clone().with_follower_wait(Some(Duration::ZERO)),
                Some(ms) => self.fleet.clone().with_follower_wait(Some(Duration::from_millis(ms))),
            };
            builder = builder.fleet(&handle);
        }
        Ok(builder.build())
    }

    fn close(&self, session: u64) -> Value {
        let Some(entry) = self.registry.get(session) else { return unknown_session(session) };
        // Take the order lock so an in-flight mutation journals its frame
        // before the tombstone; a retried close has nothing to dedupe
        // against (the entry and its window are gone) and reads
        // `unknown_session`, which is the documented contract.
        let _order = entry.lock_order();
        if self.registry.remove(session).is_none() {
            return unknown_session(session); // lost a close/close race
        }
        self.counters.closed.fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = self.journal.get() {
            // Tombstone ordering: the close frame must be durable
            // *before* the checkpoint disappears, otherwise a crash in
            // between resurrects the closed session on recovery.
            match journal.append(session, None, &json!({"cmd": "close", "session": session})) {
                Ok(_) => {
                    if let Err(e) = journal.sync() {
                        self.journal_warn(format!("tombstone fsync for session {session}: {e}"));
                    }
                    if let Err(e) = journal.remove_checkpoint(session) {
                        self.journal_warn(format!("checkpoint removal for session {session}: {e}"));
                    }
                }
                Err(e) => self.journal_warn(format!("tombstone append for session {session}: {e}")),
            }
        }
        json!({"ok": true, "closed": session})
    }

    /// Reattach to a live (or crash-recovered) session by its token.
    fn resume(&self, token: &str) -> Value {
        match self.registry.get_by_token(token) {
            Some(entry) => json!({
                "ok": true,
                "session": entry.id,
                "scenario": entry.scenario.clone(),
                "latest_version": entry.latest_version.load(Ordering::SeqCst),
                "session_token": entry.token.clone(),
                "recovered": entry.recovered,
                "protocol": PROTOCOL_VERSION,
            }),
            None => error_response(
                ErrorKind::UnknownToken,
                "no live or recovered session with that token",
            ),
        }
    }

    fn entry(&self, session: u64) -> Result<Arc<SessionEntry>, Value> {
        self.registry.get(session).ok_or_else(|| unknown_session(session))
    }

    fn run_cell(&self, session: u64, sql: &str) -> Value {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let mut core = entry.lock_core();
        let cell = core.notebook.add_cell(sql);
        match core.notebook.run_cell(cell) {
            Ok(result) => {
                let columns: Vec<Value> =
                    result.schema.fields.iter().map(|f| json!(f.name.clone())).collect();
                json!({"ok": true, "cell": cell, "rows": result.rows.len(), "columns": columns})
            }
            Err(e) => notebook_error(&e),
        }
    }

    fn generate(&self, session: u64) -> Value {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let mut core = entry.lock_core();
        match core.notebook.generate_interface() {
            Ok(version) => {
                entry.latest_version.fetch_max(version, Ordering::SeqCst);
                let mut resp = json!({"ok": true, "version": version});
                if let Some(v) = core.notebook.versions().last() {
                    resp["charts"] = json!(v.generated.interface.charts.len());
                    resp["widgets"] = json!(v.generated.interface.widgets.len());
                    // Truthful quality label (full|anytime|fallback) and,
                    // for shared-cache sessions, how the fleet served it
                    // (hit|rebind|miss|join|join-timeout|shed).
                    resp["degradation"] = json!(v.generated.stats.degradation.to_string());
                    if let Some(outcome) = v.generated.stats.fleet {
                        resp["fleet"] = json!(outcome.to_string());
                    }
                } else {
                    resp["charts"] = json!(0);
                    resp["widgets"] = json!(0);
                }
                resp
            }
            Err(e) => notebook_error(&e),
        }
    }

    /// Resolve an optional wire version against the session's latest.
    fn resolve_version(entry: &SessionEntry, version: Option<usize>) -> Result<usize, Value> {
        let latest = entry.latest_version.load(Ordering::SeqCst);
        match version {
            None if latest == 0 => Err(error_response(
                ErrorKind::UnknownVersion,
                "no interface generated yet (call generate first)",
            )),
            None => Ok(latest),
            Some(v) if v == 0 || v > latest => Err(error_response(
                ErrorKind::UnknownVersion,
                format!("unknown interface version {v} (latest is {latest})"),
            )),
            Some(v) => Ok(v),
        }
    }

    fn apply_binding(
        &self,
        session: u64,
        version: Option<usize>,
        widget: usize,
        value: WidgetValue,
    ) -> Value {
        self.gesture(session, version, vec![Event::SetWidget { widget, value }], false)
    }

    fn gesture(
        &self,
        session: u64,
        version: Option<usize>,
        events: Vec<Event>,
        include_data: bool,
    ) -> Value {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let version = match Self::resolve_version(&entry, version) {
            Ok(v) => v,
            Err(e) => return e,
        };
        let single = events.len() == 1;
        match entry.enqueue(version, events) {
            Enqueue::Overloaded(depth) => {
                self.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                let mut e = error_response(
                    ErrorKind::Overloaded,
                    format!("session {session} queue is full ({depth} pending)"),
                );
                e["error"]["queue_depth"] = json!(depth);
                e
            }
            Enqueue::Accepted(_) => match entry.drain_and_dispatch() {
                Err(e) => notebook_error(&e),
                Ok(outcome) => {
                    if single && outcome.applied == 0 && !outcome.errors.is_empty() {
                        return error_response(ErrorKind::Session, &outcome.errors[0]);
                    }
                    let updates: Vec<Value> = outcome
                        .updates
                        .iter()
                        .map(|u| {
                            let mut obj = json!({
                                "chart": u.chart,
                                "sql": u.query.to_string(),
                                "rows": u.result.rows.len(),
                            });
                            if include_data {
                                obj["data"] = result_rows(&u.result);
                            }
                            obj
                        })
                        .collect();
                    let mut resp = json!({
                        "ok": true,
                        "version": version,
                        "applied": outcome.applied,
                        "coalesced": outcome.coalesced,
                        "updates": updates,
                    });
                    if !outcome.errors.is_empty() {
                        resp["errors"] = Value::Array(
                            outcome.errors.iter().map(|e| json!(e.to_string())).collect(),
                        );
                    }
                    resp
                }
            },
        }
    }

    fn render(&self, session: u64, version: Option<usize>) -> Value {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let version = match Self::resolve_version(&entry, version) {
            Ok(v) => v,
            Err(e) => return e,
        };
        let mut core = entry.lock_core();
        let live = match core.live_session(version) {
            Ok(s) => s,
            Err(e) => return notebook_error(&e),
        };
        match pi2_render::AsciiRenderer.render_live(live) {
            Ok(text) => json!({"ok": true, "version": version, "text": text}),
            Err(e) => error_response(ErrorKind::Session, e),
        }
    }

    /// Scene-graph streaming: frames since the client's scene version, or
    /// a full-snapshot resync when the client has no scene (`since`
    /// absent), asks from a stale version, or has fallen behind the
    /// delta-history ring. Read-only — never journaled — so replaying a
    /// crashed session rebuilds the identical scene from its mutations.
    fn render_delta(&self, session: u64, options: RenderDeltaOptions) -> Value {
        use pi2_core::scene::{delta_to_json, scene_to_json, SceneCatchup};
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(e) => return e,
        };
        let version = match Self::resolve_version(&entry, options.version) {
            Ok(v) => v,
            Err(e) => return e,
        };
        let mut core = entry.lock_core();
        let live = match core.live_session(version) {
            Ok(s) => s,
            Err(e) => return notebook_error(&e),
        };
        let body = match options.since {
            None => match live.scene_snapshot() {
                Ok((scene, v)) => RenderDeltaResponse::new(v).resync(scene_to_json(&scene)),
                Err(e) => return error_response(ErrorKind::Session, e),
            },
            Some(since) => match live.scene_deltas_since(since) {
                Ok(SceneCatchup::UpToDate) => RenderDeltaResponse::new(live.scene_version()),
                Ok(SceneCatchup::Deltas(chain)) => {
                    let to = chain.last().map(|d| d.to_version).unwrap_or(since);
                    RenderDeltaResponse::new(to).frames(chain.iter().map(delta_to_json).collect())
                }
                Ok(SceneCatchup::Resync(scene, v)) => {
                    RenderDeltaResponse::new(v).resync(scene_to_json(&scene))
                }
                Err(e) => return error_response(ErrorKind::Session, e),
            },
        };
        let mut resp = body.to_json();
        resp["version"] = json!(version);
        resp
    }

    fn stats(&self, session: Option<u64>) -> Value {
        match session {
            Some(id) => {
                let entry = match self.entry(id) {
                    Ok(e) => e,
                    Err(e) => return e,
                };
                let mut per_version = serde_json::Map::new();
                {
                    let core = entry.lock_core();
                    for (version, live) in &core.live {
                        per_version
                            .insert(format!("v{version}"), parse_json(&live.stats().to_json()));
                    }
                }
                json!({
                    "ok": true,
                    "session": id,
                    "scenario": entry.scenario.clone(),
                    "queue_depth": entry.queue_depth(),
                    "enqueued": entry.counters.enqueued.load(Ordering::Relaxed),
                    "coalesced": entry.counters.coalesced.load(Ordering::Relaxed),
                    "dispatched": entry.counters.dispatched.load(Ordering::Relaxed),
                    "overloaded": entry.counters.overloaded.load(Ordering::Relaxed),
                    "versions": Value::Object(per_version),
                })
            }
            None => json!({"ok": true, "stats": self.stats_json()}),
        }
    }

    /// How many per-session detail rows `stats` will list before
    /// switching to totals only: a 10k-session fleet must not serialize
    /// 10k objects per stats call.
    pub const STATS_SESSION_DETAIL_CAP: usize = 32;

    /// Server-wide stats as a JSON object: counters, gauges (active
    /// sessions, queue depths), and per-endpoint latency histograms.
    ///
    /// Per-session counters are always *aggregated* in `session_totals`;
    /// the per-session `sessions` list is included only while the fleet
    /// is small (≤ [`Self::STATS_SESSION_DETAIL_CAP`] sessions) —
    /// `sessions_omitted` reports how many were elided.
    pub fn stats_json(&self) -> Value {
        let endpoints: serde_json::Map = lock(&self.endpoint_latency)
            .iter()
            .map(|(name, h)| ((*name).to_string(), parse_json(&h.to_json())))
            .collect();
        let mut active = 0u64;
        let (mut queued, mut enqueued, mut coalesced, mut dispatched, mut overloaded) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        self.registry.for_each(|e| {
            active += 1;
            queued += e.queue_depth() as u64;
            enqueued += e.counters.enqueued.load(Ordering::Relaxed);
            coalesced += e.counters.coalesced.load(Ordering::Relaxed);
            dispatched += e.counters.dispatched.load(Ordering::Relaxed);
            overloaded += e.counters.overloaded.load(Ordering::Relaxed);
        });
        let detailed = active as usize <= Self::STATS_SESSION_DETAIL_CAP;
        let sessions: Vec<Value> = if detailed {
            self.registry
                .entries()
                .iter()
                .map(|e| {
                    json!({
                        "id": e.id,
                        "scenario": e.scenario.clone(),
                        "queue_depth": e.queue_depth(),
                        "enqueued": e.counters.enqueued.load(Ordering::Relaxed),
                        "coalesced": e.counters.coalesced.load(Ordering::Relaxed),
                        "dispatched": e.counters.dispatched.load(Ordering::Relaxed),
                        "overloaded": e.counters.overloaded.load(Ordering::Relaxed),
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let fleet = self.fleet.counters();
        json!({
            "active_sessions": active,
            "draining": self.draining(),
            "requests": self.counters.requests.load(Ordering::Relaxed),
            "errors": self.counters.errors.load(Ordering::Relaxed),
            "overloaded": self.counters.overloaded.load(Ordering::Relaxed),
            "opened": self.counters.opened.load(Ordering::Relaxed),
            "closed": self.counters.closed.load(Ordering::Relaxed),
            "connections_accepted":
                self.counters.connections_accepted.load(Ordering::Relaxed),
            "connections_closed": self.counters.connections_closed.load(Ordering::Relaxed),
            "session_totals": {
                "queue_depth": queued,
                "enqueued": enqueued,
                "coalesced": coalesced,
                "dispatched": dispatched,
                "overloaded": overloaded,
            },
            "sessions_omitted": if detailed { 0 } else { active },
            "fleet": {
                "hits": fleet.hits,
                "misses": fleet.misses,
                "joins": fleet.joins,
                "sheds": fleet.sheds,
                "rebinds": fleet.rebinds,
                "join_timeouts": fleet.join_timeouts,
                "entries": fleet.entries,
            },
            "engine": self.engine_stats_json(),
            "endpoints": Value::Object(endpoints),
            "sessions": sessions,
            "journal": self.journal_stats_json(),
        })
    }

    /// Per-scenario engine counters. Sessions clone their catalog from the
    /// shared per-scenario cache, and the scan / exec-path tallies live
    /// behind `Arc`s those clones share — so the cached catalog's counters
    /// aggregate every session's executions on that scenario. Delta-path
    /// counters (`delta_hits`/`delta_seeds`) are per-session state and
    /// appear in the per-session `stats` response instead.
    fn engine_stats_json(&self) -> Value {
        let mut scenarios = serde_json::Map::new();
        for (name, catalog) in lock(&self.catalogs).iter() {
            let (scanned, pruned) = catalog.scan_counts();
            let (columnar, reference) = catalog.exec_path_counts();
            scenarios.insert(
                name.clone(),
                json!({
                    "blocks_scanned": scanned,
                    "blocks_pruned": pruned,
                    "exec_columnar": columnar,
                    "exec_reference": reference,
                    "columnar_build_ms": catalog.columnar_build_nanos() as f64 / 1e6,
                }),
            );
        }
        Value::Object(scenarios)
    }

    fn journal_stats_json(&self) -> Value {
        match self.journal.get() {
            None => json!({"enabled": false}),
            Some(journal) => json!({
                "enabled": true,
                "journal_bytes": journal.bytes(),
                "sessions_recovered":
                    self.journal_counters.sessions_recovered.load(Ordering::Relaxed),
                "frames_replayed": self.journal_counters.frames_replayed.load(Ordering::Relaxed),
                "frames_skipped": self.journal_counters.frames_skipped.load(Ordering::Relaxed),
                "warnings": self.journal_counters.warnings.load(Ordering::Relaxed),
            }),
        }
    }

    /// Count (and log) a journal irregularity. Journal IO failures never
    /// fail the request that triggered them — the mutation already
    /// executed and the client deserves its response; the cost is only
    /// weaker durability, which the counter makes observable.
    fn journal_warn(&self, msg: impl std::fmt::Display) {
        self.journal_counters.warnings.fetch_add(1, Ordering::Relaxed);
        eprintln!("pi2-server: journal: {msg}");
    }

    /// Record one successful mutation in the journal: append its frame,
    /// fold it into the session's durable replay state, and checkpoint /
    /// compact when cadence or size thresholds say so. The caller holds
    /// the session's order lock (or, for `open`, the entry is not yet
    /// published), so frames always append in execution order.
    fn journal_mutation(
        &self,
        journal: &Arc<Journal>,
        entry: &SessionEntry,
        mut record: MutationRecord,
        response: &Value,
    ) {
        let session = entry.id;
        let token = response["session_token"].as_str().map(str::to_string);
        if matches!(record.kind, MutationKind::Applied) {
            // Pin the version the server resolved: a replayed `latest`
            // would resolve against the *final* version count, not the
            // one this gesture actually addressed.
            if let Some(v) = response["version"].as_u64() {
                record.req["version"] = json!(v);
            }
        }
        let mut durable = entry.lock_durable();
        let lsn = match journal.append(session, token.as_deref(), &record.req) {
            Ok(lsn) => lsn,
            Err(e) => {
                drop(durable);
                self.journal_warn(format!("append for session {session}: {e}"));
                return;
            }
        };
        match record.kind {
            MutationKind::Open => durable.open_req = record.req.clone(),
            MutationKind::Cell(sql) => durable.ops.push(DurableOp::Cell(sql)),
            MutationKind::Generate => durable.ops.push(DurableOp::Generate),
            MutationKind::Applied => {
                let version = record.req["version"].as_u64().unwrap_or(0) as usize;
                let pairs: Vec<(usize, Event)> = match protocol::parse_request_value(&record.req) {
                    Ok(Request::Gesture { events, .. }) => {
                        events.into_iter().map(|e| (version, e)).collect()
                    }
                    Ok(Request::ApplyBinding { widget, value, .. }) => {
                        vec![(version, Event::SetWidget { widget, value })]
                    }
                    _ => Vec::new(),
                };
                let mut merged = std::mem::take(&mut durable.applied);
                merged.extend(pairs);
                durable.applied = coalesce(merged);
            }
        }
        durable.mutations_since_ckpt += 1;
        if durable.mutations_since_ckpt >= journal.config().checkpoint_every {
            self.checkpoint_locked(journal, entry, &mut durable, lsn);
        }
        drop(durable);
        if journal.wants_compaction() {
            self.compact_journal(journal);
        }
    }

    /// Write a checkpoint for `entry` covering frames up to `cover_lsn`,
    /// with its durable state already locked by the caller.
    fn checkpoint_locked(
        &self,
        journal: &Journal,
        entry: &SessionEntry,
        durable: &mut crate::session::Durable,
        cover_lsn: u64,
    ) {
        let doc = checkpoint_doc(entry, durable, cover_lsn);
        match journal.write_checkpoint(entry.id, &doc) {
            Ok(()) => {
                durable.last_ckpt_lsn = cover_lsn;
                durable.mutations_since_ckpt = 0;
            }
            Err(e) => self.journal_warn(format!("checkpoint for session {}: {e}", entry.id)),
        }
    }

    /// Rewrite the journal, dropping frames already covered by a live
    /// session's checkpoint and frames of sessions that no longer exist.
    /// The keep-map is snapshotted *before* the journal lock is taken
    /// (lock order: session durable → journal, never the reverse).
    fn compact_journal(&self, journal: &Journal) {
        let mut keep: HashMap<u64, u64> = HashMap::new();
        self.registry.for_each(|e| {
            keep.insert(e.id, e.lock_durable().last_ckpt_lsn);
        });
        let unrecovered = lock(&self.unrecovered).clone();
        if let Err(e) = journal.compact(&|session, lsn| match keep.get(&session) {
            Some(&covered) => lsn > covered,
            // Not in the registry: frames of sessions a recovery failed
            // to rebuild are their only surviving state — keep them so a
            // later restart can retry; everything else (closed or
            // unknown) is dropped.
            None => unrecovered.contains(&session),
        }) {
            self.journal_warn(format!("compaction: {e}"));
        }
    }

    /// Graceful-shutdown hook: checkpoint every live session, truncate
    /// the journal, and write the clean marker so the next start trusts
    /// the checkpoints alone and skips tail replay. No-op when no journal
    /// is attached. If any checkpoint fails the journal is left intact —
    /// the next start simply runs a normal (tail-replaying) recovery.
    pub fn journal_clean_close(&self) {
        let Some(journal) = self.journal.get() else { return };
        let cover = journal.last_lsn();
        let mut all_ok = true;
        for entry in self.registry.entries() {
            let mut durable = entry.lock_durable();
            let doc = checkpoint_doc(&entry, &durable, cover);
            match journal.write_checkpoint(entry.id, &doc) {
                Ok(()) => {
                    durable.last_ckpt_lsn = cover;
                    durable.mutations_since_ckpt = 0;
                }
                Err(e) => {
                    all_ok = false;
                    self.journal_warn(format!("shutdown checkpoint for session {}: {e}", entry.id));
                }
            }
        }
        if !all_ok {
            return;
        }
        if !lock(&self.unrecovered).is_empty() {
            // Sessions the last recovery failed to rebuild live only in
            // journal frames; truncating (or letting a clean marker skip
            // tail replay) would erase them for good. Leave the journal
            // for the next recovery to retry.
            self.journal_warn(
                "clean close kept the journal: unrecovered sessions live only in its frames",
            );
            return;
        }
        if let Err(e) = journal.truncate() {
            self.journal_warn(format!("shutdown truncate: {e}"));
            return;
        }
        if let Err(e) = journal.mark_clean() {
            self.journal_warn(format!("clean marker: {e}"));
        }
    }

    /// Rebuild server state from a journal directory, then attach the
    /// journal for new writes. See the module docs of [`crate::journal`]
    /// for the format and the corruption policy; the shape here is:
    ///
    /// 1. consume the clean marker, scan frames, load checkpoints;
    /// 2. collect tombstones (`close` frames) — neither their frames nor
    ///    leftover checkpoints may resurrect a closed session;
    /// 3. plan per session: checkpoint + newer tail frames, or (never
    ///    checkpointed) an `open` frame plus its tail; orphan frames with
    ///    neither are dropped with a warning;
    /// 4. rebuild sessions **in parallel** — replay is deterministic and
    ///    the fleet cache single-flights identical regenerations, so a
    ///    1k-session recovery pays one cold search per unique
    ///    fingerprint;
    /// 5. bump the id allocator past every rebuilt id, raise the journal
    ///    LSN past every checkpoint, and (unless the shutdown was clean)
    ///    re-checkpoint everything and truncate so the next recovery
    ///    starts from a compact prefix.
    fn recover(
        fleet: FleetConfig,
        config: JournalConfig,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(&config.dir)?;
        let state = Self::with_fleet(fleet);
        let mut report =
            RecoveryReport { clean: journal::take_clean_marker(&config.dir), ..Default::default() };
        let (frames, scan) = journal::scan(&config.dir)?;
        report.frames_skipped += scan.frames_skipped;
        report.warnings.extend(scan.warnings);
        let mut ckpt_scan = journal::ScanReport::default();
        let checkpoints = journal::load_checkpoints(&config.dir, &mut ckpt_scan);
        report.warnings.extend(ckpt_scan.warnings);

        let tombstoned: HashSet<u64> =
            frames.iter().filter(|f| f.req["cmd"] == "close").map(|f| f.session).collect();
        report.tombstones = tombstoned.len() as u64;

        let mut plans: BTreeMap<u64, RecoveryPlan> = BTreeMap::new();
        let mut max_ckpt_lsn = 0u64;
        for (id, doc) in checkpoints {
            max_ckpt_lsn = max_ckpt_lsn.max(doc["last_lsn"].as_u64().unwrap_or(0));
            if tombstoned.contains(&id) {
                continue; // closed before the crash; cleaned up below
            }
            let token = doc["token"].as_str().map(str::to_string);
            plans.insert(id, RecoveryPlan { token, ckpt: Some(doc), tail: Vec::new() });
        }
        if report.clean {
            // Planned restart: the checkpoints are complete by contract;
            // any leftover frames are redundant, not lost work.
            report.frames_skipped +=
                frames.iter().filter(|f| f.req["cmd"] != "close").count() as u64;
        } else {
            for frame in frames {
                if frame.req["cmd"] == "close" {
                    continue; // the tombstone itself
                }
                if tombstoned.contains(&frame.session) {
                    report.frames_skipped += 1;
                    continue;
                }
                match plans.get_mut(&frame.session) {
                    Some(plan) => {
                        let covered =
                            plan.ckpt.as_ref().and_then(|c| c["last_lsn"].as_u64()).unwrap_or(0);
                        if frame.lsn <= covered {
                            report.frames_skipped += 1;
                        } else {
                            plan.tail.push(frame);
                        }
                    }
                    None if frame.req["cmd"] == "open" => {
                        plans.insert(
                            frame.session,
                            RecoveryPlan {
                                token: frame.token.clone(),
                                ckpt: None,
                                tail: vec![frame],
                            },
                        );
                    }
                    None => {
                        report.frames_skipped += 1;
                        report.warnings.push(format!(
                            "orphan frame for session {} dropped (no checkpoint or open frame)",
                            frame.session
                        ));
                    }
                }
            }
        }

        let plan_list: Vec<(u64, RecoveryPlan)> = plans.into_iter().collect();
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .min(plan_list.len().max(1));
        let results: Mutex<Vec<(u64, Result<Rebuilt, String>)>> = Mutex::new(Vec::new());
        let next = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    let Some((id, plan)) = plan_list.get(i) else { break };
                    let rebuilt = state.rebuild_session(*id, plan);
                    lock(&results).push((*id, rebuilt));
                });
            }
        });
        let mut results = results.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        results.sort_by_key(|(id, _)| *id);
        let mut max_id = 0u64;
        let mut failed: HashSet<u64> = HashSet::new();
        for (id, rebuilt) in results {
            max_id = max_id.max(id);
            match rebuilt {
                Ok(rebuilt) => {
                    report.sessions_recovered += 1;
                    report.frames_replayed += rebuilt.frames_replayed;
                    report.frames_skipped += rebuilt.frames_skipped;
                    report.warnings.extend(rebuilt.warnings);
                    // Reseed the server-level open window: a client whose
                    // open ack died with the old process retries the same
                    // req_id and must reattach to this session, not open
                    // a second one.
                    if let Some(rid) = rebuilt.entry.lock_durable().open_req["req_id"].as_str() {
                        lock(&state.open_dedupe).put(
                            rid,
                            json!({
                                "ok": true,
                                "session": rebuilt.entry.id,
                                "scenario": rebuilt.entry.scenario.clone(),
                                "session_token": rebuilt.entry.token.clone(),
                                "protocol": PROTOCOL_VERSION,
                            }),
                        );
                    }
                    state.registry.insert(rebuilt.entry);
                }
                Err(e) => {
                    failed.insert(id);
                    report.warnings.push(format!("session {id} not recovered: {e}"));
                }
            }
        }
        state.registry.bump_next_id(max_id + 1);

        let journal = Arc::new(Journal::open(config)?);
        // LSNs must clear every checkpoint even when the journal file is
        // freshly empty, or the next recovery would see "new" frames
        // below `last_lsn` and wrongly skip them as already covered.
        journal.ensure_lsn_at_least(max_ckpt_lsn.max(scan.max_lsn) + 1);
        for id in &tombstoned {
            if let Err(e) = journal.remove_checkpoint(*id) {
                report.warnings.push(format!("stale checkpoint removal for session {id}: {e}"));
            }
        }
        if !report.clean {
            // Fold the tail into fresh checkpoints and truncate: recovery
            // is idempotent and the next one starts from a compact prefix.
            let cover = max_ckpt_lsn.max(scan.max_lsn);
            let mut all_ok = true;
            for entry in state.registry.entries() {
                let mut durable = entry.lock_durable();
                let doc = checkpoint_doc(&entry, &durable, cover);
                match journal.write_checkpoint(entry.id, &doc) {
                    Ok(()) => {
                        durable.last_ckpt_lsn = cover;
                        durable.mutations_since_ckpt = 0;
                    }
                    Err(e) => {
                        all_ok = false;
                        report.warnings.push(format!(
                            "post-recovery checkpoint for session {}: {e}",
                            entry.id
                        ));
                    }
                }
            }
            if all_ok && failed.is_empty() {
                if let Err(e) = journal.truncate() {
                    report.warnings.push(format!("post-recovery truncate: {e}"));
                }
            } else if !failed.is_empty() {
                // The failed sessions exist only as journal frames;
                // truncating would turn a possibly transient replay
                // failure into unrecoverable loss. Keep the tail so the
                // next restart can retry them.
                report.warnings.push(format!(
                    "journal retained: {} session(s) failed to rebuild and live only in its frames",
                    failed.len()
                ));
            }
        }
        *lock(&state.unrecovered) = failed;
        let _ = state.journal.set(journal);
        let c = &state.journal_counters;
        c.sessions_recovered.store(report.sessions_recovered, Ordering::Relaxed);
        c.frames_replayed.store(report.frames_replayed, Ordering::Relaxed);
        c.frames_skipped.store(report.frames_skipped, Ordering::Relaxed);
        c.warnings.store(report.warnings.len() as u64, Ordering::Relaxed);
        Ok((state, report))
    }

    /// Rebuild one session from its recovery plan: re-open the engine
    /// through [`Self::build_pi2`], replay checkpointed ops, replay tail
    /// frames (skipping duplicate `req_id`s), then dispatch the applied
    /// gesture history. Cell/generate interleaving is preserved exactly;
    /// gesture events replay after all generates, which is sound because
    /// a version's widget state depends only on its own events, in order.
    fn rebuild_session(&self, id: u64, plan: &RecoveryPlan) -> Result<Rebuilt, String> {
        let open_req = match &plan.ckpt {
            Some(ckpt) => ckpt["open_req"].clone(),
            None => plan.tail.first().map(|f| f.req.clone()).ok_or("empty recovery plan")?,
        };
        let parsed = protocol::parse_request_value(&open_req)
            .map_err(|e| format!("unreplayable open request: {}", error_message(&e)))?;
        let Request::Open { scenario, options } = parsed else {
            return Err("stored open request is not an `open`".to_string());
        };
        let pi2 = self
            .build_pi2(&scenario, &options)
            .map_err(|e| format!("engine rebuild failed: {}", error_message(&e)))?;
        let token = plan.token.clone().unwrap_or_else(|| session_token(id));
        let entry = Arc::new(
            SessionEntry::new(id, scenario, token, Notebook::with_pi2(pi2)).mark_recovered(),
        );
        let mut warnings = Vec::new();
        let mut durable = crate::session::Durable { open_req, ..Default::default() };
        let mut applied: Vec<(usize, Event)> = Vec::new();
        let mut req_ids: Vec<String> = Vec::new();

        if let Some(ckpt) = &plan.ckpt {
            durable.last_ckpt_lsn = ckpt["last_lsn"].as_u64().unwrap_or(0);
            for op in ckpt["ops"].as_array().map(Vec::as_slice).unwrap_or_default() {
                match op["op"].as_str() {
                    Some("cell") => {
                        let sql = op["sql"].as_str().unwrap_or_default().to_string();
                        replay_cell(&entry, &sql);
                        durable.ops.push(DurableOp::Cell(sql));
                    }
                    Some("generate") => {
                        replay_generate(&entry)
                            .map_err(|e| format!("checkpointed generate replay: {e}"))?;
                        durable.ops.push(DurableOp::Generate);
                    }
                    other => {
                        warnings.push(format!("session {id}: unknown checkpoint op {other:?}"))
                    }
                }
            }
            for item in ckpt["applied"].as_array().map(Vec::as_slice).unwrap_or_default() {
                let version = item["version"].as_u64().unwrap_or(0) as usize;
                match protocol::parse_event(&item["event"]) {
                    Ok(event) => applied.push((version, event)),
                    Err(e) => warnings.push(format!(
                        "session {id}: unreplayable checkpointed event: {}",
                        error_message(&e)
                    )),
                }
            }
            for rid in ckpt["req_ids"].as_array().map(Vec::as_slice).unwrap_or_default() {
                if let Some(rid) = rid.as_str() {
                    req_ids.push(rid.to_string());
                }
            }
        }

        let mut frames_replayed = 0u64;
        let mut frames_skipped = 0u64;
        let mut seen: HashSet<String> = req_ids.iter().cloned().collect();
        for frame in &plan.tail {
            if let Some(rid) = frame.req["req_id"].as_str() {
                if !seen.insert(rid.to_string()) {
                    // The retry's effect was already deduped live; replay
                    // must not apply it a second time.
                    frames_skipped += 1;
                    warnings.push(format!("session {id}: duplicate req_id `{rid}` frame skipped"));
                    continue;
                }
                req_ids.push(rid.to_string());
            }
            let request = match protocol::parse_request_value(&frame.req) {
                Ok(r) => r,
                Err(e) => {
                    frames_skipped += 1;
                    warnings.push(format!(
                        "session {id}: unreplayable frame at lsn {}: {}",
                        frame.lsn,
                        error_message(&e)
                    ));
                    continue;
                }
            };
            match request {
                Request::Open { .. } => {} // the bootstrap frame itself
                Request::RunCell { sql, .. } => {
                    replay_cell(&entry, &sql);
                    durable.ops.push(DurableOp::Cell(sql));
                }
                Request::Generate { .. } => {
                    replay_generate(&entry).map_err(|e| format!("generate replay: {e}"))?;
                    durable.ops.push(DurableOp::Generate);
                }
                Request::Gesture { version, events, .. } => {
                    let version = version.unwrap_or(0);
                    applied.extend(events.into_iter().map(|e| (version, e)));
                }
                Request::ApplyBinding { version, widget, value, .. } => {
                    applied.push((version.unwrap_or(0), Event::SetWidget { widget, value }));
                }
                _ => {
                    frames_skipped += 1;
                    warnings.push(format!(
                        "session {id}: non-mutating frame at lsn {} skipped",
                        frame.lsn
                    ));
                    continue;
                }
            }
            frames_replayed += 1;
        }

        let applied = coalesce(applied);
        for (version, event) in &applied {
            let mut core = entry.lock_core();
            match core.live_session(*version) {
                Ok(live) => {
                    if let Err(e) = live.dispatch(event.clone()) {
                        warnings.push(format!("session {id}: replayed event rejected: {e}"));
                    }
                }
                Err(e) => warnings
                    .push(format!("session {id}: version {version} unavailable at replay: {e}")),
            }
        }
        durable.applied = applied;
        *entry.lock_durable() = durable;
        for rid in req_ids {
            // The original responses died with the old process; a retry
            // of an already-applied request gets a bare ok (the effect is
            // present, which is the contract — not the original body).
            entry.dedupe_put(&rid, json!({"ok": true}));
        }
        Ok(Rebuilt { entry, frames_replayed, frames_skipped, warnings })
    }
}

impl SessionEntry {
    /// Lock the serial core, recovering from poisoning.
    pub fn lock_core(&self) -> std::sync::MutexGuard<'_, crate::session::SessionCore> {
        self.core.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The durable-op flavor of a mutating request, captured pre-dispatch so
/// [`ServerState::after_mutation`] knows how to fold the frame into the
/// session's replay state without re-classifying the JSON.
enum MutationKind {
    Open,
    Cell(String),
    Generate,
    /// `gesture` / `apply_binding`: the journaled frame carries the
    /// (coalesced, version-pinned) events themselves.
    Applied,
}

/// A mutating request's wire form plus its durable-op classification.
struct MutationRecord {
    kind: MutationKind,
    req: Value,
}

/// Capture `request` for journaling. Gestures are recorded *after*
/// request-local coalescing — replay dispatches the same merged stream
/// the live queue would have produced for this request — and the
/// client's `req_id`, if any, rides along inside the frame so recovery
/// can skip duplicate-delivery frames. `close` never comes through here:
/// its tombstone frame is appended directly by [`ServerState::close`].
fn mutation_record(request: &Request, req_id: Option<&str>) -> MutationRecord {
    let kind = match request {
        Request::Open { .. } => MutationKind::Open,
        Request::RunCell { sql, .. } => MutationKind::Cell(sql.clone()),
        Request::Generate { .. } => MutationKind::Generate,
        _ => MutationKind::Applied,
    };
    let mut req = match request {
        Request::Gesture { session, version, events, include_data } => {
            let events: Vec<Event> = coalesce(events.iter().map(|e| (0, e.clone())).collect())
                .into_iter()
                .map(|(_, e)| e)
                .collect();
            protocol::request_to_json(&Request::Gesture {
                session: *session,
                version: *version,
                events,
                include_data: *include_data,
            })
        }
        other => protocol::request_to_json(other),
    };
    if let Some(rid) = req_id {
        req["req_id"] = json!(rid);
    }
    MutationRecord { kind, req }
}

/// One session's inputs to [`ServerState::rebuild_session`].
struct RecoveryPlan {
    token: Option<String>,
    ckpt: Option<Value>,
    tail: Vec<journal::Frame>,
}

/// One successfully rebuilt session plus its replay accounting.
struct Rebuilt {
    entry: Arc<SessionEntry>,
    frames_replayed: u64,
    frames_skipped: u64,
    warnings: Vec<String>,
}

/// The resume token for session `id`: a keyed splitmix64 mix, **stable
/// across processes** so a recovered session still answers the token its
/// `open` handed out — and deterministic by design, because the
/// protocol-equivalence suite replays one script against independent
/// server states and compares responses byte-for-byte. Tokens gate
/// reattachment to the right session, not secrecy (the line protocol is
/// plaintext anyway).
fn session_token(id: u64) -> String {
    let mut z = (id ^ 0x7069_3273_6573_7374).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    format!("tok-{z:016x}")
}

/// Replay one notebook cell. A cell that failed live re-fails here
/// deterministically; its failure is part of the notebook's history, not
/// a recovery error.
fn replay_cell(entry: &SessionEntry, sql: &str) {
    let mut core = entry.lock_core();
    let cell = core.notebook.add_cell(sql);
    let _ = core.notebook.run_cell(cell);
}

/// Replay one accepted `generate`. Goes through the same engine (and
/// fleet cache) path as the original call, so identical logs across a
/// recovering fleet single-flight to one cold search.
fn replay_generate(entry: &SessionEntry) -> Result<(), NotebookError> {
    let mut core = entry.lock_core();
    let version = core.notebook.generate_interface()?;
    entry.latest_version.fetch_max(version, Ordering::SeqCst);
    Ok(())
}

/// The `message` of an error-response document (for recovery warnings).
fn error_message(e: &Value) -> &str {
    e["error"]["message"].as_str().unwrap_or("unknown error")
}

/// A checkpoint document: everything [`ServerState::rebuild_session`]
/// needs to restore the session without any journal frames at or below
/// `cover_lsn`.
fn checkpoint_doc(
    entry: &SessionEntry,
    durable: &crate::session::Durable,
    cover_lsn: u64,
) -> Value {
    let ops: Vec<Value> = durable
        .ops
        .iter()
        .map(|op| match op {
            DurableOp::Cell(sql) => json!({"op": "cell", "sql": sql}),
            DurableOp::Generate => json!({"op": "generate"}),
        })
        .collect();
    let applied: Vec<Value> = durable
        .applied
        .iter()
        .map(
            |(version, event)| json!({"version": version, "event": protocol::event_to_json(event)}),
        )
        .collect();
    json!({
        "session": entry.id,
        "token": entry.token.clone(),
        "scenario": entry.scenario.clone(),
        "open_req": durable.open_req.clone(),
        "ops": ops,
        "applied": applied,
        "req_ids": entry.dedupe_ids(),
        "last_lsn": cover_lsn,
    })
}

fn endpoint_name(request: &Request) -> &'static str {
    match request {
        Request::Open { .. } => "open",
        Request::Close { .. } => "close",
        Request::RunCell { .. } => "run_cell",
        Request::Generate { .. } => "generate",
        Request::ApplyBinding { .. } => "apply_binding",
        Request::Gesture { .. } => "gesture",
        Request::Render { .. } => "render",
        Request::RenderDelta { .. } => "render_delta",
        Request::Stats { .. } => "stats",
        Request::Resume { .. } => "resume",
        Request::Shutdown => "shutdown",
    }
}

fn unknown_session(id: u64) -> Value {
    error_response(ErrorKind::UnknownSession, format!("no session {id}"))
}

fn notebook_error(e: &NotebookError) -> Value {
    let kind = match e {
        NotebookError::UnknownVersion(_) => ErrorKind::UnknownVersion,
        NotebookError::Generation(_) => ErrorKind::Generation,
        _ => ErrorKind::Notebook,
    };
    error_response(kind, e)
}

/// Embed a JSON string produced by a `to_json()` helper as a value.
fn parse_json(text: &str) -> Value {
    serde_json::from_str(text).unwrap_or(Value::Null)
}

/// Serialize a response document to one protocol line.
fn to_line(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|e| {
        format!("{{\"ok\":false,\"error\":{{\"kind\":\"internal\",\"message\":\"response serialization failed: {e}\"}}}}")
    })
}

/// Result rows as arrays of JSON values.
fn result_rows(result: &pi2_engine::ResultSet) -> Value {
    Value::Array(
        result
            .rows
            .iter()
            .map(|row| Value::Array(row.iter().map(protocol::engine_value_to_json).collect()))
            .collect(),
    )
}
