//! Sharded session registry.
//!
//! Dispatch is the hot path: a gesture request must reach its session
//! without serializing behind unrelated opens/closes. The registry hashes
//! session ids across [`SHARDS`] independently read-write-locked maps, so
//! concurrent lookups of different sessions touch different locks and
//! lookups never contend with opens on other shards. Entries are `Arc`s:
//! a lookup clones the handle and releases the shard lock immediately,
//! so no shard lock is ever held across a dispatch.

use crate::session::SessionEntry;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards. Power of two so the shard index
/// is a mask; 16 comfortably exceeds the storm benchmark's client count.
pub const SHARDS: usize = 16;

/// The registry: id allocation plus sharded id → session maps.
pub struct Registry {
    shards: Vec<RwLock<HashMap<u64, Arc<SessionEntry>>>>,
    /// Resume-token → session-id index. One lock (not sharded): `resume`
    /// is a reconnect-path verb, never a dispatch-path one.
    tokens: RwLock<HashMap<String, u64>>,
    next_id: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            tokens: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    fn shard(&self, id: u64) -> &RwLock<HashMap<u64, Arc<SessionEntry>>> {
        &self.shards[(id as usize) & (SHARDS - 1)]
    }

    /// Allocate the next session id (ids are never reused).
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Ensure future allocations start at `min` or above. Recovery calls
    /// this after rebuilding sessions so rebuilt ids are never reissued.
    pub fn bump_next_id(&self, min: u64) {
        self.next_id.fetch_max(min, Ordering::SeqCst);
    }

    /// Insert a session under its id (and index its resume token).
    pub fn insert(&self, entry: Arc<SessionEntry>) {
        self.tokens.write().insert(entry.token.clone(), entry.id);
        self.shard(entry.id).write().insert(entry.id, entry);
    }

    /// Look up a session; read-locks exactly one shard, briefly.
    pub fn get(&self, id: u64) -> Option<Arc<SessionEntry>> {
        self.shard(id).read().get(&id).cloned()
    }

    /// Look up a session by its resume token.
    pub fn get_by_token(&self, token: &str) -> Option<Arc<SessionEntry>> {
        let id = *self.tokens.read().get(token)?;
        self.get(id)
    }

    /// Remove a session (and its token), returning it if present.
    pub fn remove(&self, id: u64) -> Option<Arc<SessionEntry>> {
        let entry = self.shard(id).write().remove(&id)?;
        self.tokens.write().remove(&entry.token);
        Some(entry)
    }

    /// Number of live sessions (sums all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every live session without materializing a snapshot: one
    /// shard is read-locked at a time, so a 10k-session stats pass never
    /// clones 10k `Arc`s or blocks writers for the whole walk.
    pub fn for_each(&self, mut f: impl FnMut(&Arc<SessionEntry>)) {
        for shard in &self.shards {
            for entry in shard.read().values() {
                f(entry);
            }
        }
    }

    /// Snapshot of all live sessions, in id order.
    pub fn entries(&self) -> Vec<Arc<SessionEntry>> {
        let mut all: Vec<Arc<SessionEntry>> = self
            .shards
            .iter()
            .flat_map(|s| s.read().values().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|e| e.id);
        all
    }
}
