//! The TCP transport: a threaded accept loop with graceful shutdown.
//!
//! One OS thread per connection (the protocol is line-oriented and
//! sessions serialize on their own locks, so a thread pool would add
//! complexity without changing the bottleneck). The listener and all
//! connection readers poll with short timeouts so a `shutdown` request —
//! or [`Server::shutdown`] from the embedding process — stops accepting,
//! lets every in-flight request finish, and joins all threads.

use crate::state::ServerState;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval for the nonblocking accept loop and connection readers.
const POLL: Duration = Duration::from_millis(25);

/// A running server bound to a TCP address.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `state` on background threads.
    pub fn bind(addr: &str, state: Arc<ServerState>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("pi2-server-accept".into())
            .spawn(move || accept_loop(listener, accept_state))?;
        Ok(Server { state, addr: local, accept: Some(accept) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (e.g. to pair a [`LocalClient`](crate::LocalClient)
    /// with a TCP server).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Begin graceful shutdown from the embedding process (equivalent to a
    /// `shutdown` request).
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Wait until the server has fully stopped: every connection has
    /// finished its in-flight request and exited, and the accept thread
    /// has joined them all. Blocks until someone initiates shutdown.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            // A panic in the accept thread already aborted serving; there
            // is nothing better to do than surface it as a clean stop.
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    loop {
        if state.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_state = Arc::clone(&state);
                let spawned = std::thread::Builder::new()
                    .name("pi2-server-conn".into())
                    .spawn(move || handle_connection(stream, conn_state));
                if let Ok(handle) = spawned {
                    handlers.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Draining: wait for every connection to finish its in-flight work.
    let handles = {
        let mut guard = handlers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *guard)
    };
    for handle in handles {
        let _ = handle.join();
    }
}

fn handle_connection(stream: TcpStream, state: Arc<ServerState>) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // `read_line` appends whatever it managed to read before a timeout, so
    // `line` persists across poll iterations until a full line arrives.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let request = line.trim();
                if !request.is_empty() {
                    let response = state.handle_line(request);
                    if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
                        return;
                    }
                }
                line.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if state.draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
