//! The TCP transport: a nonblocking, readiness-driven reactor.
//!
//! # Why a reactor
//!
//! The first server spawned one OS thread per connection. That holds the
//! median (sessions are independent, dispatches are microseconds) but
//! wrecks the tail: hundreds of runnable threads timeslice against each
//! other, and any request that loses the scheduling lottery eats a
//! multi-millisecond penalty — the 16-client storm measured a p99 ~600×
//! its p50. It also caps fleet size at "how many threads can this box
//! stand", which is not 10 000.
//!
//! This module replaces the accept loop with a **fixed pool of worker
//! threads, each multiplexing many connections over nonblocking
//! sockets** (`TcpStream::set_nonblocking` + a readiness poll loop; std
//! only, no async runtime). Each connection owns a read buffer (bytes
//! accumulated until a `\n` completes a request line) and a write buffer
//! (response bytes not yet accepted by the kernel), so slow or bursty
//! clients never block a worker — a stalled read or short write just
//! parks the connection until the next poll pass. The number of runnable
//! threads is now `workers` (default: the CPU count, clamped to
//! [2, 8]), independent of connection count.
//!
//! # Lifecycle and fairness
//!
//! The accept thread hands each new connection to a worker round-robin
//! via a per-worker inbox. A worker's poll pass pumps every connection:
//! flush pending writes, read whatever the kernel has, frame complete
//! lines, dispatch each through [`ServerState::handle_line`] (the same
//! transport-independent path `LocalClient` uses), and queue the
//! responses. At most [`ServerConfig::max_lines_per_turn`] requests are
//! served per connection per pass, so one firehose connection cannot
//! starve its neighbors — excess bytes stay in the kernel socket buffer,
//! which is exactly TCP backpressure. Idle workers back off from a spin
//! to short sleeps, so an idle server costs ~0 CPU while a loaded one
//! polls at full speed.
//!
//! # Protocol robustness
//!
//! Malformed input never panics a worker and never desynchronizes the
//! framing: a request line longer than [`ServerConfig::max_line_bytes`]
//! is answered with a structured `too_large` error and the connection
//! enters *discard mode* until the offending line's newline arrives
//! (framing resyncs, the connection survives); invalid UTF-8 is a
//! `bad_request`; a peer that disconnects mid-line is dropped without
//! ceremony. A connection whose un-flushed responses exceed
//! [`ServerConfig::max_write_buffer`] (a reader that stopped reading
//! while still sending) is closed to bound memory.
//!
//! # Shutdown
//!
//! A `shutdown` request (or [`Server::shutdown`]) flips the drain flag:
//! the accept thread stops accepting; each worker finishes the requests
//! already buffered on its connections (they are answered
//! `shutting_down` by the dispatch layer), flushes every pending
//! response for up to a second, then closes its connections and exits.
//! [`Server::join`] returns once the accept thread and every worker have
//! exited.

use crate::state::ServerState;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the reactor. `Default` is right for production and
/// for every test; the knobs exist so robustness tests can shrink the
/// limits to exercisable sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Worker threads multiplexing connections (`0` = auto: the CPU
    /// count clamped to `[2, 8]`).
    pub workers: usize,
    /// Longest accepted request line in bytes; longer lines get a
    /// structured `too_large` error and are discarded to the newline.
    pub max_line_bytes: usize,
    /// Un-flushed response bytes tolerated per connection before the
    /// connection is closed as a non-reading peer.
    pub max_write_buffer: usize,
    /// Requests served per connection per poll pass (fairness cap).
    pub max_lines_per_turn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_line_bytes: 1 << 20,
            max_write_buffer: 8 << 20,
            max_lines_per_turn: 32,
        }
    }
}

impl ServerConfig {
    /// Defaults (alias for `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker-thread count (`0` = auto).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the maximum accepted request-line length in bytes.
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes;
        self
    }

    /// Set the per-connection un-flushed response cap in bytes.
    pub fn max_write_buffer(mut self, bytes: usize) -> Self {
        self.max_write_buffer = bytes;
        self
    }

    /// Set the per-connection fairness cap per poll pass.
    pub fn max_lines_per_turn(mut self, lines: usize) -> Self {
        self.max_lines_per_turn = lines.max(1);
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .clamp(2, 8)
    }
}

/// A running server bound to a TCP address.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `state` with the default [`ServerConfig`].
    pub fn bind(addr: &str, state: Arc<ServerState>) -> std::io::Result<Server> {
        Self::bind_with(addr, state, ServerConfig::default())
    }

    /// Bind `addr` and start the reactor with explicit tuning knobs.
    pub fn bind_with(
        addr: &str,
        state: Arc<ServerState>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let worker_count = config.resolved_workers();
        let mut inboxes = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let inbox: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            let worker_state = Arc::clone(&state);
            let worker_inbox = Arc::clone(&inbox);
            let handle = std::thread::Builder::new()
                .name(format!("pi2-reactor-{i}"))
                .spawn(move || worker_loop(&worker_inbox, &worker_state, config))?;
            inboxes.push(inbox);
            workers.push(handle);
        }

        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("pi2-server-accept".into())
            .spawn(move || accept_loop(&listener, &accept_state, &inboxes))?;
        Ok(Server { state, addr: local, accept: Some(accept), workers })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (e.g. to pair a [`LocalClient`](crate::LocalClient)
    /// with a TCP server).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Begin graceful shutdown from the embedding process (equivalent to a
    /// `shutdown` request).
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Wait until the server has fully stopped: every worker has flushed
    /// its connections' pending responses and exited, and the accept
    /// thread is gone. Blocks until someone initiates shutdown. Once all
    /// dispatch threads are quiesced, a final clean checkpoint is written
    /// for every live session and the journal is marked cleanly closed,
    /// so a planned restart skips tail replay entirely.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            // A panic in the accept thread already aborted accepting;
            // there is nothing better to do than surface a clean stop.
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.state.journal_clean_close();
    }
}

/// Idle backoff shared by the accept loop and the workers: spin with
/// yields while work looked recent, then sleep in doubling steps up to
/// `cap`. Reset on any progress.
fn backoff(idle_passes: u32, cap: Duration) {
    if idle_passes < 64 {
        std::thread::yield_now();
        return;
    }
    let exp = (idle_passes - 64).min(6);
    let sleep = Duration::from_micros(8u64 << exp);
    std::thread::sleep(sleep.min(cap));
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    inboxes: &[Arc<Mutex<Vec<TcpStream>>>],
) {
    let mut next_worker = 0usize;
    let mut idle_passes = 0u32;
    loop {
        if state.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                idle_passes = 0;
                // Nonblocking + NODELAY: the reactor never waits on a
                // socket, and one-line responses must not sit in Nagle.
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue; // peer already gone
                }
                state.counters().connections_accepted.fetch_add(1, Ordering::Relaxed);
                let inbox = &inboxes[next_worker % inboxes.len()];
                next_worker = next_worker.wrapping_add(1);
                inbox.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                idle_passes = idle_passes.saturating_add(1);
                backoff(idle_passes, Duration::from_millis(1));
            }
            Err(_) => {
                idle_passes = idle_passes.saturating_add(1);
                backoff(idle_passes, Duration::from_millis(1));
            }
        }
    }
}

fn worker_loop(inbox: &Mutex<Vec<TcpStream>>, state: &Arc<ServerState>, config: ServerConfig) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let mut idle_passes = 0u32;
    loop {
        // Adopt connections the accept thread handed us.
        {
            let mut pending = inbox.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for stream in pending.drain(..) {
                conns.push(Conn::new(stream));
            }
        }

        let mut progress = false;
        conns.retain_mut(|conn| match conn.pump(state, &config, &mut scratch) {
            Pump::Progress => {
                progress = true;
                true
            }
            Pump::Idle => true,
            Pump::Closed => {
                state.counters().connections_closed.fetch_add(1, Ordering::Relaxed);
                progress = true;
                false
            }
        });

        if state.draining() {
            drain_connections(&mut conns, state, &config, &mut scratch);
            return;
        }

        if progress {
            idle_passes = 0;
        } else {
            idle_passes = idle_passes.saturating_add(1);
            backoff(idle_passes, Duration::from_micros(512));
        }
    }
}

/// Final pass under drain: requests already buffered get their
/// (`shutting_down`) responses, pending responses are flushed
/// best-effort for up to a second, then every connection is closed.
fn drain_connections(
    conns: &mut Vec<Conn>,
    state: &Arc<ServerState>,
    config: &ServerConfig,
    scratch: &mut [u8],
) {
    let deadline = Instant::now() + Duration::from_secs(1);
    while !conns.is_empty() && Instant::now() < deadline {
        let mut all_flushed = true;
        conns.retain_mut(|conn| match conn.pump(state, config, scratch) {
            Pump::Closed => {
                state.counters().connections_closed.fetch_add(1, Ordering::Relaxed);
                false
            }
            _ => {
                if conn.has_pending_writes() {
                    all_flushed = false;
                }
                true
            }
        });
        if all_flushed {
            break;
        }
        std::thread::yield_now();
    }
    for _ in conns.drain(..) {
        state.counters().connections_closed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Outcome of one [`Conn::pump`] pass.
enum Pump {
    /// Bytes moved or requests were served this pass.
    Progress,
    /// Nothing to do; poll again later.
    Idle,
    /// The connection is finished (peer closed, fatal error, or
    /// write-buffer cap exceeded) and must be dropped.
    Closed,
}

/// One multiplexed connection: the socket plus its framing state.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet framed into complete lines.
    read_buf: Vec<u8>,
    /// Response bytes the kernel has not yet accepted.
    write_buf: Vec<u8>,
    /// How much of `write_buf` is already written.
    write_pos: usize,
    /// Skipping an oversized line until its terminating newline.
    discarding: bool,
    /// The peer closed its sending side; finish flushing then close.
    peer_eof: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            discarding: false,
            peer_eof: false,
        }
    }

    fn has_pending_writes(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// One readiness pass: flush, read, frame, dispatch, flush.
    fn pump(&mut self, state: &ServerState, config: &ServerConfig, scratch: &mut [u8]) -> Pump {
        let mut progress = false;
        if !self.flush(&mut progress) {
            return Pump::Closed;
        }

        let mut served = 0usize;
        while served < config.max_lines_per_turn && !self.peer_eof {
            match self.stream.read(scratch) {
                Ok(0) => self.peer_eof = true,
                Ok(n) => {
                    progress = true;
                    served += self.ingest(&scratch[..n], state, config);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Pump::Closed,
            }
        }

        if !self.flush(&mut progress) {
            return Pump::Closed;
        }
        // Bound memory against a peer that sends but never reads.
        if self.write_buf.len() - self.write_pos > config.max_write_buffer {
            return Pump::Closed;
        }
        if self.peer_eof && !self.has_pending_writes() {
            return Pump::Closed;
        }
        if progress {
            Pump::Progress
        } else {
            Pump::Idle
        }
    }

    /// Append received bytes, frame complete lines, dispatch each, and
    /// queue the responses. Returns how many requests were served.
    fn ingest(&mut self, bytes: &[u8], state: &ServerState, config: &ServerConfig) -> usize {
        // Resume the newline scan where it left off: everything before
        // the old buffer end was already scanned.
        let mut scan_from = self.read_buf.len();
        self.read_buf.extend_from_slice(bytes);
        let mut served = 0usize;
        while let Some(rel) = self.read_buf[scan_from..].iter().position(|&b| b == b'\n') {
            let line_end = scan_from + rel;
            {
                let line = &self.read_buf[..line_end];
                if self.discarding {
                    // The tail of an oversized line: drop it; framing is
                    // back in sync at the newline.
                    self.discarding = false;
                } else {
                    served += 1;
                    let response = match std::str::from_utf8(line) {
                        Ok(text) if text.trim().is_empty() => None,
                        Ok(text) => Some(state.handle_line(text.trim())),
                        Err(_) => Some(state.handle_line_invalid_utf8()),
                    };
                    if let Some(response) = response {
                        self.write_buf.extend_from_slice(response.as_bytes());
                        self.write_buf.push(b'\n');
                    }
                }
            }
            self.read_buf.drain(..=line_end);
            scan_from = 0;
        }
        // A partial line beyond the cap: answer now, discard to newline.
        if !self.discarding && self.read_buf.len() > config.max_line_bytes {
            let response = state.handle_line_too_long(config.max_line_bytes);
            self.write_buf.extend_from_slice(response.as_bytes());
            self.write_buf.push(b'\n');
            self.read_buf.clear();
            self.discarding = true;
        } else if self.discarding {
            self.read_buf.clear();
        }
        served
    }

    /// Push pending response bytes; returns `false` on a fatal error.
    fn flush(&mut self, progress: &mut bool) -> bool {
        while self.has_pending_writes() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.write_pos += n;
                    *progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if !self.has_pending_writes() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        true
    }
}
