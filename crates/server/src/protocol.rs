//! The wire protocol: one JSON object per line, request in / response out.
//!
//! Every request is an object with a `"cmd"` field naming the verb and an
//! optional `"id"` the server echoes back verbatim, so clients can
//! correlate pipelined requests. Responses carry `"ok": true` plus
//! verb-specific fields, or `"ok": false` with a structured `"error"`
//! object (`kind`, `message`, and `retry: true` for transient conditions
//! such as [`ErrorKind::Overloaded`]).
//!
//! The same encoding is used by the TCP transport and the in-process
//! [`LocalClient`](crate::LocalClient), so protocol tests exercise the
//! exact bytes that cross the network.

use pi2_core::prelude::{Event, Literal, WidgetValue};
use serde_json::{json, Value};

/// Protocol revision spoken by this server. Carried in `open` and
/// `resume` responses as `"protocol"`; bumped when verbs or response
/// shapes change incompatibly. Revision 2 added the scene-graph
/// `render_delta` verb.
pub const PROTOCOL_VERSION: u64 = 2;

/// Default execution-mode knobs applied when `open` omits them: servers
/// must not hang on one session's pathological query or search.
pub mod defaults {
    use std::time::Duration;
    /// Wall-clock budget for one `generate` call.
    pub const GENERATION_DEADLINE: Duration = Duration::from_secs(2);
    /// Wall-clock budget for one chart-query execution.
    pub const EXEC_TIMEOUT: Duration = Duration::from_secs(2);
}

/// How a session's `generate` explores the forest space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Merge-everything, no search: the interactive-latency default.
    #[default]
    FullMerge,
    /// The paper's MCTS (slower; bounded by the session budget).
    Mcts,
    /// Greedy hill climbing.
    Greedy,
}

/// How a session's `generate` calls relate to the server's fleet-wide
/// generation cache. Carried in `open`'s `cache: {"mode": ...}` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Use the process-wide fleet cache (the default): repeated logs are
    /// served from cache, concurrent identical generations single-flight,
    /// and admission control may shed to `Anytime`.
    #[default]
    Shared,
    /// Always run a private, fresh search; never read or write the fleet
    /// cache (for reproduction runs and benchmarking the cold path).
    Bypass,
}

impl CacheMode {
    /// The wire name of the mode.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheMode::Shared => "shared",
            CacheMode::Bypass => "bypass",
        }
    }
}

/// The structured `cache` option block of `open`:
/// `{"mode": "shared"|"bypass", "wait_ms": n}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct CacheOptions {
    /// Fleet-cache participation (default [`CacheMode::Shared`]).
    pub mode: CacheMode,
    /// How long this session's `generate` waits on another session's
    /// in-flight generation of the same fingerprint before searching
    /// privately (`0` = don't wait, absent = the fleet default).
    pub wait_ms: Option<u64>,
}

impl CacheOptions {
    /// Defaults (alias for `Default`): shared mode, fleet-default wait.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the cache mode.
    pub fn mode(mut self, mode: CacheMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the single-flight follower wait in milliseconds.
    pub fn wait_ms(mut self, wait_ms: Option<u64>) -> Self {
        self.wait_ms = wait_ms;
        self
    }
}

/// The option block of `render_delta`:
/// `{"version": v, "since": u}` (both optional).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct RenderDeltaOptions {
    /// Interface version (absent = latest).
    pub version: Option<usize>,
    /// The scene version the client already holds. Absent (or stale, or
    /// beyond the server's delta history) yields a full-snapshot resync.
    pub since: Option<u64>,
}

impl RenderDeltaOptions {
    /// Defaults: latest interface version, full-snapshot resync.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the interface version.
    pub fn version(mut self, version: Option<usize>) -> Self {
        self.version = version;
        self
    }

    /// Set the client's current scene version.
    pub fn since(mut self, since: Option<u64>) -> Self {
        self.since = since;
        self
    }
}

/// The body of a successful `render_delta` response (everything besides
/// the envelope's `ok`/`id`): either a batch of patch frames advancing
/// the client from its `since` version, or a full-snapshot resync.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct RenderDeltaResponse {
    /// The server's scene version after this response is applied.
    pub scene_version: u64,
    /// Patch frames (oldest first), each `pi2_core::scene::delta_to_json`
    /// shaped. Empty when the client is up to date or when resyncing.
    pub frames: Vec<Value>,
    /// Whether `scene` holds a full snapshot instead of frames.
    pub resync: bool,
    /// The full scene snapshot (`pi2_core::scene::scene_to_json` shaped),
    /// present iff `resync`.
    pub scene: Option<Value>,
}

impl RenderDeltaResponse {
    /// An empty (up-to-date) response at `scene_version`.
    pub fn new(scene_version: u64) -> Self {
        Self { scene_version, ..Self::default() }
    }

    /// Attach incremental patch frames.
    pub fn frames(mut self, frames: Vec<Value>) -> Self {
        self.frames = frames;
        self
    }

    /// Mark as a full-snapshot resync carrying `scene`.
    pub fn resync(mut self, scene: Value) -> Self {
        self.resync = true;
        self.scene = Some(scene);
        self
    }

    /// The response body in wire form.
    pub fn to_json(&self) -> Value {
        let mut doc = json!({
            "ok": true,
            "scene_version": self.scene_version,
            "frames": self.frames.clone(),
        });
        if self.resync {
            doc["resync"] = json!(true);
            if let Some(scene) = &self.scene {
                doc["scene"] = scene.clone();
            }
        }
        doc
    }
}

/// Options accepted by `open`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpenOptions {
    /// Row cap per query execution (`0` = unlimited, absent = unlimited).
    pub max_rows: Option<usize>,
    /// Per-query wall-clock cap in ms (`0` = unlimited, absent =
    /// [`defaults::EXEC_TIMEOUT`]).
    pub timeout_ms: Option<u64>,
    /// Per-`generate` wall-clock cap in ms (`0` = unlimited, absent =
    /// [`defaults::GENERATION_DEADLINE`]).
    pub deadline_ms: Option<u64>,
    /// Per-`generate` search-iteration cap.
    pub max_iterations: Option<usize>,
    /// Search strategy for this session.
    pub strategy: Strategy,
    /// Fleet-cache participation (see [`CacheOptions`]).
    pub cache: CacheOptions,
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session over a named scenario catalog.
    Open {
        /// Scenario name (`toy`, `covid`, `sdss`, `sp500`).
        scenario: String,
        /// Budget / limit / strategy knobs.
        options: OpenOptions,
    },
    /// Close a session, releasing its state.
    Close {
        /// The session to close.
        session: u64,
    },
    /// Append a SQL cell to the session's notebook and execute it.
    RunCell {
        /// Target session.
        session: u64,
        /// The cell's SQL text.
        sql: String,
    },
    /// Generate a new interface version from the selected cells.
    Generate {
        /// Target session.
        session: u64,
    },
    /// Bind a widget to a value (sugar for a one-event `gesture`).
    ApplyBinding {
        /// Target session.
        session: u64,
        /// Interface version (absent = latest).
        version: Option<usize>,
        /// The widget to operate.
        widget: usize,
        /// The value to bind.
        value: WidgetValue,
    },
    /// Dispatch interaction events (coalesced per session before dispatch).
    Gesture {
        /// Target session.
        session: u64,
        /// Interface version (absent = latest).
        version: Option<usize>,
        /// The events, oldest first.
        events: Vec<Event>,
        /// Include result rows in each chart update.
        include_data: bool,
    },
    /// Render a version's interface (charts + live widget states) as text.
    Render {
        /// Target session.
        session: u64,
        /// Interface version (absent = latest).
        version: Option<usize>,
    },
    /// Stream scene-graph patch frames since a client-held scene version
    /// (or a full snapshot when the client is stale or has no scene yet).
    RenderDelta {
        /// Target session.
        session: u64,
        /// Version / since knobs.
        options: RenderDeltaOptions,
    },
    /// Server-wide stats, or one session's stats when `session` is given.
    Stats {
        /// Restrict to one session.
        session: Option<u64>,
    },
    /// Reattach to a live (or crash-recovered) session by its token.
    Resume {
        /// The `session_token` returned by `open`.
        token: String,
    },
    /// Begin graceful shutdown: drain in-flight dispatches, then stop.
    Shutdown,
}

impl Request {
    /// The session id this request addresses, when it addresses one.
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::Close { session }
            | Request::RunCell { session, .. }
            | Request::Generate { session }
            | Request::ApplyBinding { session, .. }
            | Request::Gesture { session, .. }
            | Request::Render { session, .. }
            | Request::RenderDelta { session, .. } => Some(*session),
            Request::Stats { session } => *session,
            Request::Open { .. } | Request::Resume { .. } | Request::Shutdown => None,
        }
    }

    /// Whether this verb changes durable session state (and therefore is
    /// journaled and participates in `req_id` dedupe).
    pub fn mutating(&self) -> bool {
        matches!(
            self,
            Request::Open { .. }
                | Request::Close { .. }
                | Request::RunCell { .. }
                | Request::Generate { .. }
                | Request::ApplyBinding { .. }
                | Request::Gesture { .. }
        )
    }
}

/// Structured error kinds carried in `"error": {"kind": ...}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON or a missing/ill-typed field.
    BadRequest,
    /// A request line exceeded the server's line-length cap; the rest of
    /// the line is discarded and the connection stays usable.
    TooLarge,
    /// `open` named a scenario the server does not know.
    UnknownScenario,
    /// No session with that id.
    UnknownSession,
    /// No generated interface version with that number.
    UnknownVersion,
    /// The session's pending-event queue is full; retry after backoff.
    Overloaded,
    /// The dispatch layer rejected the event (see message).
    Session,
    /// The notebook layer rejected the request (see message).
    Notebook,
    /// Interface generation failed (see message).
    Generation,
    /// `resume` presented a token no live or recovered session carries.
    UnknownToken,
    /// The server is draining; only `stats` is served.
    ShuttingDown,
}

impl ErrorKind {
    /// The wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::UnknownScenario => "unknown_scenario",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::UnknownVersion => "unknown_version",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Session => "session",
            ErrorKind::Notebook => "notebook",
            ErrorKind::Generation => "generation",
            ErrorKind::UnknownToken => "unknown_token",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }

    /// Whether a client should retry the identical request after backoff.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorKind::Overloaded)
    }
}

/// Build an error response object.
pub fn error_response(kind: ErrorKind, message: impl std::fmt::Display) -> Value {
    let mut err = json!({"kind": kind.as_str(), "message": message.to_string()});
    if kind.retryable() {
        err["retry"] = Value::Bool(true);
    }
    json!({"ok": false, "error": err})
}

/// Parse one request line (already stripped of its trailing newline).
pub fn parse_request(line: &str) -> Result<(Request, Option<Value>), Value> {
    parse_request_full(line).map(|(r, id, _)| (r, id))
}

/// As [`parse_request`], but also returns the client-assigned `req_id`
/// (the idempotency key mutating requests may carry).
pub fn parse_request_full(line: &str) -> Result<(Request, Option<Value>, Option<String>), Value> {
    let doc: Value = serde_json::from_str(line)
        .map_err(|e| error_response(ErrorKind::BadRequest, format!("invalid JSON: {e}")))?;
    let id = doc.get("id").cloned();
    let req_id = match doc.get("req_id") {
        None | Some(Value::Null) => None,
        Some(Value::String(s)) => Some(s.clone()),
        Some(_) => {
            let mut e = bad("`req_id` must be a string");
            if let Some(id) = doc.get("id") {
                e["id"] = id.clone();
            }
            return Err(e);
        }
    };
    parse_request_value(&doc).map(|r| (r, id, req_id)).map_err(|mut e| {
        if let Some(id) = doc.get("id") {
            e["id"] = id.clone();
        }
        e
    })
}

fn bad(msg: impl std::fmt::Display) -> Value {
    error_response(ErrorKind::BadRequest, msg)
}

fn need_u64(doc: &Value, key: &str) -> Result<u64, Value> {
    doc.get(key)
        .and_then(Value::as_i64)
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| bad(format!("missing or ill-typed `{key}`")))
}

fn need_str<'a>(doc: &'a Value, key: &str) -> Result<&'a str, Value> {
    doc.get(key).and_then(Value::as_str).ok_or_else(|| bad(format!("missing `{key}` string")))
}

fn opt_usize(doc: &Value, key: &str) -> Result<Option<usize>, Value> {
    match doc.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_i64()
            .and_then(|v| usize::try_from(v).ok())
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn opt_u64(doc: &Value, key: &str) -> Result<Option<u64>, Value> {
    Ok(opt_usize(doc, key)?.map(|v| v as u64))
}

/// Parse a request from an already-parsed JSON document.
pub fn parse_request_value(doc: &Value) -> Result<Request, Value> {
    let cmd = need_str(doc, "cmd")?;
    match cmd {
        "open" => {
            let scenario = need_str(doc, "scenario")?.to_string();
            let strategy = match doc.get("strategy").and_then(Value::as_str) {
                None | Some("full_merge") => Strategy::FullMerge,
                Some("mcts") => Strategy::Mcts,
                Some("greedy") => Strategy::Greedy,
                Some(other) => {
                    return Err(bad(format!("unknown strategy `{other}` (full_merge|mcts|greedy)")))
                }
            };
            Ok(Request::Open {
                scenario,
                options: OpenOptions {
                    max_rows: opt_usize(doc, "max_rows")?,
                    timeout_ms: opt_u64(doc, "timeout_ms")?,
                    deadline_ms: opt_u64(doc, "deadline_ms")?,
                    max_iterations: opt_usize(doc, "max_iterations")?,
                    strategy,
                    cache: parse_cache_options(doc.get("cache"))?,
                },
            })
        }
        "close" => Ok(Request::Close { session: need_u64(doc, "session")? }),
        "run_cell" => Ok(Request::RunCell {
            session: need_u64(doc, "session")?,
            sql: need_str(doc, "sql")?.to_string(),
        }),
        "generate" => Ok(Request::Generate { session: need_u64(doc, "session")? }),
        "apply_binding" => Ok(Request::ApplyBinding {
            session: need_u64(doc, "session")?,
            version: opt_usize(doc, "version")?,
            widget: opt_usize(doc, "widget")?.ok_or_else(|| bad("missing `widget`"))?,
            value: parse_widget_value(doc.get("value").ok_or_else(|| bad("missing `value`"))?)?,
        }),
        "gesture" => {
            let mut events = Vec::new();
            match (doc.get("event"), doc.get("events")) {
                (Some(e), None) => events.push(parse_event(e)?),
                (None, Some(Value::Array(list))) => {
                    for e in list {
                        events.push(parse_event(e)?);
                    }
                }
                _ => return Err(bad("expected `event` object or `events` array")),
            }
            if events.is_empty() {
                return Err(bad("`events` must not be empty"));
            }
            Ok(Request::Gesture {
                session: need_u64(doc, "session")?,
                version: opt_usize(doc, "version")?,
                events,
                include_data: doc.get("include_data").and_then(Value::as_bool).unwrap_or(false),
            })
        }
        "render" => Ok(Request::Render {
            session: need_u64(doc, "session")?,
            version: opt_usize(doc, "version")?,
        }),
        "render_delta" => Ok(Request::RenderDelta {
            session: need_u64(doc, "session")?,
            options: RenderDeltaOptions::new()
                .version(opt_usize(doc, "version")?)
                .since(opt_u64(doc, "since")?),
        }),
        "stats" => Ok(Request::Stats {
            session: match doc.get("session") {
                None | Some(Value::Null) => None,
                Some(_) => Some(need_u64(doc, "session")?),
            },
        }),
        "resume" => Ok(Request::Resume { token: need_str(doc, "token")?.to_string() }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(bad(format!("unknown cmd `{other}`"))),
    }
}

/// Serialize a request back to its wire form (the inverse of
/// [`parse_request_value`]): `parse_request_value(&request_to_json(r))`
/// returns `r`. The journal records accepted requests in this form so
/// recovery replays exactly the bytes-equivalent request.
pub fn request_to_json(request: &Request) -> Value {
    match request {
        Request::Open { scenario, options } => {
            let mut doc = json!({"cmd": "open", "scenario": scenario});
            if let Some(n) = options.max_rows {
                doc["max_rows"] = json!(n);
            }
            if let Some(ms) = options.timeout_ms {
                doc["timeout_ms"] = json!(ms);
            }
            if let Some(ms) = options.deadline_ms {
                doc["deadline_ms"] = json!(ms);
            }
            if let Some(n) = options.max_iterations {
                doc["max_iterations"] = json!(n);
            }
            match options.strategy {
                Strategy::FullMerge => {}
                Strategy::Mcts => doc["strategy"] = json!("mcts"),
                Strategy::Greedy => doc["strategy"] = json!("greedy"),
            }
            if options.cache != CacheOptions::default() {
                let mut cache = json!({"mode": options.cache.mode.as_str()});
                if let Some(ms) = options.cache.wait_ms {
                    cache["wait_ms"] = json!(ms);
                }
                doc["cache"] = cache;
            }
            doc
        }
        Request::Close { session } => json!({"cmd": "close", "session": session}),
        Request::RunCell { session, sql } => {
            json!({"cmd": "run_cell", "session": session, "sql": sql})
        }
        Request::Generate { session } => json!({"cmd": "generate", "session": session}),
        Request::ApplyBinding { session, version, widget, value } => {
            let mut doc = json!({
                "cmd": "apply_binding", "session": session,
                "widget": widget, "value": widget_value_to_json(value),
            });
            if let Some(v) = version {
                doc["version"] = json!(v);
            }
            doc
        }
        Request::Gesture { session, version, events, include_data } => {
            let mut doc = json!({
                "cmd": "gesture", "session": session,
                "events": events.iter().map(event_to_json).collect::<Vec<_>>(),
            });
            if let Some(v) = version {
                doc["version"] = json!(v);
            }
            if *include_data {
                doc["include_data"] = json!(true);
            }
            doc
        }
        Request::Render { session, version } => {
            let mut doc = json!({"cmd": "render", "session": session});
            if let Some(v) = version {
                doc["version"] = json!(v);
            }
            doc
        }
        Request::RenderDelta { session, options } => {
            let mut doc = json!({"cmd": "render_delta", "session": session});
            if let Some(v) = options.version {
                doc["version"] = json!(v);
            }
            if let Some(s) = options.since {
                doc["since"] = json!(s);
            }
            doc
        }
        Request::Stats { session } => match session {
            Some(s) => json!({"cmd": "stats", "session": s}),
            None => json!({"cmd": "stats"}),
        },
        Request::Resume { token } => json!({"cmd": "resume", "token": token}),
        Request::Shutdown => json!({"cmd": "shutdown"}),
    }
}

/// Parse `open`'s optional `cache` block:
/// `{"mode": "shared"|"bypass", "wait_ms": n}` (absent = all defaults).
fn parse_cache_options(doc: Option<&Value>) -> Result<CacheOptions, Value> {
    let Some(doc) = doc else { return Ok(CacheOptions::default()) };
    if doc.is_null() {
        return Ok(CacheOptions::default());
    }
    if !matches!(doc, Value::Object(_)) {
        return Err(bad("`cache` must be an object {mode, wait_ms}"));
    }
    let mode = match doc.get("mode").and_then(Value::as_str) {
        None | Some("shared") => CacheMode::Shared,
        Some("bypass") => CacheMode::Bypass,
        Some(other) => return Err(bad(format!("unknown cache mode `{other}` (shared|bypass)"))),
    };
    Ok(CacheOptions { mode, wait_ms: opt_u64(doc, "wait_ms")? })
}

// ---- events -----------------------------------------------------------------

fn need_f64(doc: &Value, key: &str) -> Result<f64, Value> {
    doc.get(key).and_then(Value::as_f64).ok_or_else(|| bad(format!("missing or ill-typed `{key}`")))
}

/// Parse one interaction event.
pub fn parse_event(doc: &Value) -> Result<Event, Value> {
    let ty = need_str(doc, "type")?;
    let chart = || opt_usize(doc, "chart").and_then(|c| c.ok_or_else(|| bad("missing `chart`")));
    match ty {
        "pan" => {
            Ok(Event::Pan { chart: chart()?, dx: need_f64(doc, "dx")?, dy: need_f64(doc, "dy")? })
        }
        "zoom" => Ok(Event::Zoom { chart: chart()?, factor: need_f64(doc, "factor")? }),
        "brush" => Ok(Event::Brush {
            chart: chart()?,
            low: need_f64(doc, "low")?,
            high: need_f64(doc, "high")?,
        }),
        "click" => Ok(Event::Click {
            chart: chart()?,
            value: parse_literal(doc.get("value").ok_or_else(|| bad("missing `value`"))?)?,
        }),
        "set_widget" => Ok(Event::SetWidget {
            widget: opt_usize(doc, "widget")?.ok_or_else(|| bad("missing `widget`"))?,
            value: parse_widget_value(doc.get("value").ok_or_else(|| bad("missing `value`"))?)?,
        }),
        other => Err(bad(format!("unknown event type `{other}`"))),
    }
}

/// Serialize one interaction event (the inverse of [`parse_event`]).
pub fn event_to_json(event: &Event) -> Value {
    match event {
        Event::Pan { chart, dx, dy } => {
            json!({"type": "pan", "chart": *chart, "dx": *dx, "dy": *dy})
        }
        Event::Zoom { chart, factor } => {
            json!({"type": "zoom", "chart": *chart, "factor": *factor})
        }
        Event::Brush { chart, low, high } => {
            json!({"type": "brush", "chart": *chart, "low": *low, "high": *high})
        }
        Event::Click { chart, value } => {
            json!({"type": "click", "chart": *chart, "value": literal_to_json(value)})
        }
        Event::SetWidget { widget, value } => {
            json!({"type": "set_widget", "widget": *widget, "value": widget_value_to_json(value)})
        }
    }
}

// ---- widget values & literals ----------------------------------------------

/// Parse a widget value: `{"pick": i}`, `{"bool": b}`, `{"scalar": f}`,
/// `{"range": [lo, hi]}`, `{"literal": <literal>}`, or `{"multi": [b, ...]}`.
pub fn parse_widget_value(doc: &Value) -> Result<WidgetValue, Value> {
    if let Some(v) = doc.get("pick") {
        let i = v
            .as_i64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| bad("`pick` must be a non-negative integer"))?;
        return Ok(WidgetValue::Pick(i));
    }
    if let Some(v) = doc.get("bool") {
        return Ok(WidgetValue::Bool(v.as_bool().ok_or_else(|| bad("`bool` must be a bool"))?));
    }
    if let Some(v) = doc.get("scalar") {
        return Ok(WidgetValue::Scalar(
            v.as_f64().ok_or_else(|| bad("`scalar` must be a number"))?,
        ));
    }
    if let Some(v) = doc.get("range") {
        let pair =
            v.as_array().filter(|a| a.len() == 2).ok_or_else(|| bad("`range` must be [lo, hi]"))?;
        let lo = pair[0].as_f64().ok_or_else(|| bad("`range` bounds must be numbers"))?;
        let hi = pair[1].as_f64().ok_or_else(|| bad("`range` bounds must be numbers"))?;
        return Ok(WidgetValue::Range(lo, hi));
    }
    if let Some(v) = doc.get("literal") {
        return Ok(WidgetValue::Literal(parse_literal(v)?));
    }
    if let Some(v) = doc.get("multi") {
        let flags = v.as_array().ok_or_else(|| bad("`multi` must be an array of bools"))?;
        let flags: Option<Vec<bool>> = flags.iter().map(Value::as_bool).collect();
        return Ok(WidgetValue::Multi(flags.ok_or_else(|| bad("`multi` must be bools"))?));
    }
    Err(bad("widget value must be one of pick/bool/scalar/range/literal/multi"))
}

/// Serialize a widget value (the inverse of [`parse_widget_value`]).
pub fn widget_value_to_json(value: &WidgetValue) -> Value {
    match value {
        WidgetValue::Pick(i) => json!({"pick": *i}),
        WidgetValue::Bool(b) => json!({"bool": *b}),
        WidgetValue::Scalar(f) => json!({"scalar": *f}),
        WidgetValue::Range(lo, hi) => json!({"range": [*lo, *hi]}),
        WidgetValue::Literal(l) => json!({"literal": literal_to_json(l)}),
        WidgetValue::Multi(flags) => json!({"multi": flags.clone()}),
    }
}

/// Parse a SQL literal: JSON null/bool/number/string map directly; dates
/// are `{"date": "YYYY-MM-DD"}`.
pub fn parse_literal(doc: &Value) -> Result<Literal, Value> {
    match doc {
        Value::Null => Ok(Literal::Null),
        Value::Bool(b) => Ok(Literal::Bool(*b)),
        Value::Number(n) => Ok(match n.as_i64() {
            Some(i) => Literal::Int(i),
            None => Literal::Float(pi2_sql::F64(n.as_f64())),
        }),
        Value::String(s) => Ok(Literal::Str(s.clone())),
        Value::Object(_) => {
            let date = doc
                .get("date")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("literal object must be {\"date\": \"YYYY-MM-DD\"}"))?;
            let parsed =
                pi2_sql::Date::parse(date).ok_or_else(|| bad(format!("invalid date `{date}`")))?;
            Ok(Literal::Date(parsed))
        }
        Value::Array(_) => Err(bad("a literal cannot be an array")),
    }
}

/// Serialize a SQL literal (the inverse of [`parse_literal`]).
pub fn literal_to_json(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Bool(b) => json!(*b),
        Literal::Int(i) => json!(*i),
        Literal::Float(f) => json!(f.0),
        Literal::Str(s) => json!(s.clone()),
        Literal::Date(d) => json!({"date": d.to_string()}),
    }
}

/// Serialize an engine value for result rows.
pub fn engine_value_to_json(v: &pi2_engine::Value) -> Value {
    match v {
        pi2_engine::Value::Null => Value::Null,
        pi2_engine::Value::Bool(b) => json!(*b),
        pi2_engine::Value::Int(i) => json!(*i),
        pi2_engine::Value::Float(f) => json!(*f),
        pi2_engine::Value::Str(s) => json!(s.clone()),
        pi2_engine::Value::Date(d) => json!({"date": d.to_string()}),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json_text() {
        let events = vec![
            Event::Pan { chart: 0, dx: 0.25, dy: -0.5 },
            Event::Zoom { chart: 2, factor: 2.0 },
            Event::Brush { chart: 1, low: 10.0, high: 20.5 },
            Event::Click { chart: 0, value: Literal::Int(3) },
            Event::Click { chart: 0, value: Literal::Str("NY".into()) },
            Event::SetWidget { widget: 4, value: WidgetValue::Pick(1) },
            Event::SetWidget { widget: 4, value: WidgetValue::Bool(false) },
            Event::SetWidget { widget: 4, value: WidgetValue::Scalar(1.5) },
            Event::SetWidget { widget: 4, value: WidgetValue::Range(1.0, 2.0) },
            Event::SetWidget { widget: 4, value: WidgetValue::Multi(vec![true, false]) },
            Event::SetWidget {
                widget: 4,
                value: WidgetValue::Literal(Literal::Date(
                    pi2_sql::Date::parse("2021-12-05").unwrap(),
                )),
            },
        ];
        for event in events {
            let text = serde_json::to_string(&event_to_json(&event)).unwrap();
            let parsed = parse_event(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(parsed, event, "through {text}");
        }
    }

    #[test]
    fn requests_parse_and_ill_typed_fields_are_rejected() {
        let (req, id) =
            parse_request(r#"{"id": 7, "cmd": "open", "scenario": "toy", "max_rows": 100}"#)
                .unwrap();
        assert_eq!(id.unwrap().as_i64(), Some(7));
        match req {
            Request::Open { scenario, options } => {
                assert_eq!(scenario, "toy");
                assert_eq!(options.max_rows, Some(100));
                assert_eq!(options.strategy, Strategy::FullMerge);
            }
            other => panic!("{other:?}"),
        }
        for bad_line in [
            "not json",
            r#"{"cmd": "nope"}"#,
            r#"{"cmd": "open"}"#,
            r#"{"cmd": "gesture", "session": 1}"#,
            r#"{"cmd": "gesture", "session": 1, "events": []}"#,
            r#"{"cmd": "run_cell", "session": "one", "sql": "SELECT 1"}"#,
            r#"{"cmd": "open", "scenario": "toy", "max_rows": -3}"#,
            r#"{"cmd": "open", "scenario": "toy", "cache": "shared"}"#,
            r#"{"cmd": "open", "scenario": "toy", "cache": {"mode": "maybe"}}"#,
            r#"{"cmd": "open", "scenario": "toy", "cache": {"wait_ms": -1}}"#,
        ] {
            let err = parse_request(bad_line).unwrap_err();
            assert_eq!(err["ok"].as_bool(), Some(false), "{bad_line} -> {err}");
            assert_eq!(err["error"]["kind"].as_str(), Some("bad_request"), "{bad_line}");
        }
    }

    #[test]
    fn cache_options_parse_with_defaults() {
        // Absent block: shared mode, fleet-default wait.
        let (req, _) = parse_request(r#"{"cmd": "open", "scenario": "toy"}"#).unwrap();
        let Request::Open { options, .. } = req else { panic!() };
        assert_eq!(options.cache, CacheOptions::default());
        assert_eq!(options.cache.mode, CacheMode::Shared);

        // Fully specified block.
        let (req, _) = parse_request(
            r#"{"cmd": "open", "scenario": "toy", "cache": {"mode": "bypass", "wait_ms": 250}}"#,
        )
        .unwrap();
        let Request::Open { options, .. } = req else { panic!() };
        assert_eq!(options.cache.mode, CacheMode::Bypass);
        assert_eq!(options.cache.wait_ms, Some(250));

        // Mode defaults to shared inside a partial block.
        let (req, _) =
            parse_request(r#"{"cmd": "open", "scenario": "toy", "cache": {"wait_ms": 0}}"#)
                .unwrap();
        let Request::Open { options, .. } = req else { panic!() };
        assert_eq!(options.cache.mode, CacheMode::Shared);
        assert_eq!(options.cache.wait_ms, Some(0));
    }

    #[test]
    fn requests_round_trip_through_request_to_json() {
        let lines = [
            r#"{"cmd": "open", "scenario": "toy"}"#,
            r#"{"cmd": "open", "scenario": "sdss", "max_rows": 9, "timeout_ms": 5, "deadline_ms": 7, "max_iterations": 3, "strategy": "mcts", "cache": {"mode": "bypass", "wait_ms": 250}}"#,
            r#"{"cmd": "close", "session": 4}"#,
            r#"{"cmd": "run_cell", "session": 4, "sql": "SELECT 1"}"#,
            r#"{"cmd": "generate", "session": 4}"#,
            r#"{"cmd": "apply_binding", "session": 4, "version": 2, "widget": 1, "value": {"scalar": 2.5}}"#,
            r#"{"cmd": "gesture", "session": 4, "events": [{"type": "pan", "chart": 0, "dx": 1.0, "dy": 0.0}], "include_data": true}"#,
            r#"{"cmd": "render", "session": 4, "version": 1}"#,
            r#"{"cmd": "render_delta", "session": 4}"#,
            r#"{"cmd": "render_delta", "session": 4, "version": 1, "since": 9}"#,
            r#"{"cmd": "stats"}"#,
            r#"{"cmd": "resume", "token": "tok-abc"}"#,
            r#"{"cmd": "shutdown"}"#,
        ];
        for line in lines {
            let (request, _) = parse_request(line).unwrap();
            let rewired = parse_request_value(&request_to_json(&request)).unwrap();
            assert_eq!(rewired, request, "through {line}");
        }
    }

    #[test]
    fn req_id_parses_and_rejects_non_strings() {
        let (req, id, req_id) =
            parse_request_full(r#"{"cmd": "generate", "session": 1, "id": 3, "req_id": "c1-7"}"#)
                .unwrap();
        assert!(matches!(req, Request::Generate { session: 1 }));
        assert_eq!(id.unwrap().as_i64(), Some(3));
        assert_eq!(req_id.as_deref(), Some("c1-7"));
        let (_, _, none) = parse_request_full(r#"{"cmd": "generate", "session": 1}"#).unwrap();
        assert!(none.is_none());
        let err =
            parse_request_full(r#"{"cmd": "generate", "session": 1, "req_id": 7}"#).unwrap_err();
        assert_eq!(err["error"]["kind"].as_str(), Some("bad_request"));
    }

    #[test]
    fn mutating_and_session_classifiers() {
        let (open, _) = parse_request(r#"{"cmd": "open", "scenario": "toy"}"#).unwrap();
        assert!(open.mutating());
        assert_eq!(open.session(), None);
        let (render, _) = parse_request(r#"{"cmd": "render", "session": 5}"#).unwrap();
        assert!(!render.mutating());
        assert_eq!(render.session(), Some(5));
        let (resume, _) = parse_request(r#"{"cmd": "resume", "token": "t"}"#).unwrap();
        assert!(!resume.mutating());
    }

    #[test]
    fn render_delta_is_read_only_and_builder_shaped() {
        let (req, _) =
            parse_request(r#"{"cmd": "render_delta", "session": 3, "since": 2}"#).unwrap();
        assert!(!req.mutating(), "render_delta must never be journaled");
        assert_eq!(req.session(), Some(3));
        let Request::RenderDelta { options, .. } = req else { panic!() };
        assert_eq!(options, RenderDeltaOptions::new().since(Some(2)));

        let body = RenderDeltaResponse::new(5).frames(vec![json!({"from": 4, "to": 5})]).to_json();
        assert_eq!(body["scene_version"].as_u64(), Some(5));
        assert_eq!(body["frames"].as_array().map(Vec::len), Some(1));
        assert!(body["resync"].is_null());
        assert!(body["scene"].is_null());

        let body = RenderDeltaResponse::new(5).resync(json!({"charts": []})).to_json();
        assert_eq!(body["resync"].as_bool(), Some(true));
        assert!(body["scene"].as_object().is_some());
        assert_eq!(body["frames"].as_array().map(Vec::len), Some(0));
    }

    #[test]
    fn overloaded_errors_are_marked_retryable() {
        let err = error_response(ErrorKind::Overloaded, "queue full");
        assert_eq!(err["error"]["retry"].as_bool(), Some(true));
        let err = error_response(ErrorKind::UnknownSession, "no session 9");
        assert!(err["error"]["retry"].is_null());
    }
}
