//! Clients: in-process and TCP.
//!
//! Both speak the identical line protocol. [`LocalClient`] serializes the
//! request to its wire form and parses the wire response, so in-process
//! use exercises the exact bytes a TCP client would — protocol tests and
//! benchmarks run against it without sockets in the way.
//!
//! [`TcpClient::send`] layers the resilience protocol on top of the raw
//! transport: mutating requests are stamped with a client-assigned
//! `req_id`, retryable errors (`overloaded`) back off with jittered
//! exponential delays, and a dropped connection is survived by
//! reconnecting, replaying `resume` with the session token learned from
//! `open`, and resending the in-flight request under its original
//! `req_id` — the server's dedupe window turns the at-least-once resend
//! into an exactly-once visible effect.

use crate::state::ServerState;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// An in-process client: requests go straight to a shared
/// [`ServerState`], through the same line encode/decode as TCP.
#[derive(Clone)]
pub struct LocalClient {
    state: Arc<ServerState>,
}

impl LocalClient {
    /// A client talking to `state` (share the `Arc` to get many
    /// concurrent clients of one server).
    pub fn new(state: Arc<ServerState>) -> Self {
        Self { state }
    }

    /// A client over a fresh private server state.
    pub fn standalone() -> Self {
        Self::new(Arc::new(ServerState::new()))
    }

    /// The underlying server state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Send one raw request line; returns the raw response line.
    pub fn request_line(&self, line: &str) -> String {
        self.state.handle_line(line)
    }

    /// Send a request document; returns the parsed response.
    pub fn request(&self, request: Value) -> Value {
        let line =
            serde_json::to_string(&request).unwrap_or_else(|_| "{\"cmd\":\"invalid\"}".to_string());
        serde_json::from_str(&self.request_line(&line)).unwrap_or(Value::Null)
    }
}

/// Bounded-retry policy for [`TcpClient::send`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (minimum 1).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on the per-retry delay (before jitter).
    pub max_delay: Duration,
    /// Reconnect and `resume` after a dropped connection. Off, an IO
    /// error is returned to the caller unchanged.
    pub reconnect: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            reconnect: true,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries or reconnects (raw fail-fast).
    pub fn none() -> Self {
        Self { max_attempts: 1, reconnect: false, ..Self::default() }
    }

    /// The sleep before retry number `attempt` (0-based): exponential in
    /// `attempt`, capped at `max_delay`, then jittered into the upper
    /// half of the window so synchronized clients fan out. `seed` is the
    /// caller's jitter state, advanced per call.
    pub fn backoff(&self, attempt: u32, seed: &mut u64) -> Duration {
        let capped = self.base_delay.saturating_mul(1u32 << attempt.min(16)).min(self.max_delay);
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let frac = ((*seed >> 33) as f64) / (1u64 << 31) as f64;
        capped.mul_f64(0.5 + 0.5 * frac)
    }
}

/// A blocking TCP client (used by the smoke test and the CI gate).
///
/// [`request`](Self::request) is the raw one-shot path; [`send`](Self::send)
/// adds retry, reconnect, and resume per the configured [`RetryPolicy`].
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
    policy: RetryPolicy,
    token: Option<String>,
    session: Option<u64>,
    req_seq: u64,
    jitter: u64,
}

impl TcpClient {
    /// Connect to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
            addr,
            policy: RetryPolicy::default(),
            token: None,
            session: None,
            req_seq: 0,
            jitter: (u64::from(std::process::id()) << 16) ^ u64::from(addr.port()) ^ 0x9E37,
        })
    }

    /// Replace the retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The session token learned from the last successful `open` or
    /// `resume` (what a reconnect will present).
    pub fn session_token(&self) -> Option<&str> {
        self.token.as_deref()
    }

    /// The session id learned from the last successful response.
    pub fn session(&self) -> Option<u64> {
        self.session
    }

    /// Send one request document and read the one-line response. Raw:
    /// no retry, no reconnect — an IO error fails the call.
    pub fn request(&mut self, request: Value) -> std::io::Result<Value> {
        let line = serde_json::to_string(&request)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        self.reader.read_line(&mut response)?;
        if response.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let parsed: Value = serde_json::from_str(response.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.observe(&parsed);
        Ok(parsed)
    }

    /// Send with resilience: stamps a `req_id` on mutating requests,
    /// backs off and retries responses marked `retry: true`
    /// (`overloaded`), and — when the connection drops — reconnects,
    /// resumes the session by token, and resends the same `req_id` so
    /// the server's dedupe window suppresses double application.
    pub fn send(&mut self, mut request: Value) -> std::io::Result<Value> {
        if mutating_cmd(&request) && request.get("req_id").is_none() {
            self.req_seq += 1;
            request["req_id"] = json!(format!(
                "c{:x}-{:x}-{}",
                std::process::id(),
                self.jitter & 0xFFFF,
                self.req_seq
            ));
        }
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = self.policy.backoff(attempt - 1, &mut self.jitter);
                std::thread::sleep(delay);
            }
            match self.request(request.clone()) {
                Ok(response) => {
                    let retryable = response["error"]["retry"].as_bool() == Some(true);
                    if retryable && attempt + 1 < attempts {
                        continue;
                    }
                    return Ok(response);
                }
                Err(e) => {
                    if !self.policy.reconnect || attempt + 1 >= attempts {
                        return Err(e);
                    }
                    last_err = Some(e);
                    if let Err(re) = self.reconnect_and_resume() {
                        last_err = Some(re);
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("retries exhausted")))
    }

    /// Re-dial the server and re-attach to the session (if one was
    /// opened on this client) via `resume` + token.
    fn reconnect_and_resume(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        if let Some(token) = self.token.clone() {
            let response = self.request(json!({"cmd": "resume", "token": token}))?;
            if response["ok"].as_bool() != Some(true) {
                let message =
                    response["error"]["message"].as_str().unwrap_or("unknown error").to_string();
                return Err(std::io::Error::other(format!("resume failed: {message}")));
            }
        }
        Ok(())
    }

    fn observe(&mut self, response: &Value) {
        if response["ok"].as_bool() != Some(true) {
            return;
        }
        if let Some(token) = response["session_token"].as_str() {
            self.token = Some(token.to_string());
        }
        if let Some(id) = response["session"].as_u64() {
            self.session = Some(id);
        }
    }
}

/// Whether a wire request mutates session state (and so deserves a
/// client-assigned `req_id` for exactly-once retries). Mirrors
/// [`Request::mutating`](crate::protocol::Request::mutating) without
/// needing a full parse.
fn mutating_cmd(request: &Value) -> bool {
    matches!(
        request["cmd"].as_str().unwrap_or(""),
        "open" | "close" | "run_cell" | "generate" | "gesture" | "apply_binding"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let policy = RetryPolicy::default();
        let mut seed = 42u64;
        let mut prev = Duration::ZERO;
        for attempt in 0..8 {
            let d = policy.backoff(attempt, &mut seed);
            // Jitter keeps each delay in [cap/2, cap]; the cap never
            // exceeds max_delay.
            assert!(d <= policy.max_delay, "attempt {attempt}: {d:?}");
            assert!(d >= policy.base_delay / 2, "attempt {attempt}: {d:?}");
            prev = prev.max(d);
        }
        assert!(prev > policy.base_delay, "delays must grow past the base");
    }

    #[test]
    fn send_retries_overloaded_until_ok() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = Arc::new(AtomicUsize::new(0));
        let served_in = Arc::clone(&served);
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                let n = served_in.fetch_add(1, Ordering::SeqCst);
                let response = if n < 2 {
                    r#"{"ok": false, "error": {"kind": "overloaded", "message": "queue full", "retry": true}}"#.to_string()
                } else {
                    r#"{"ok": true}"#.to_string()
                };
                writeln!(writer, "{response}").unwrap();
            }
        });
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            ..RetryPolicy::default()
        };
        let mut client = TcpClient::connect(addr).unwrap().with_policy(policy);
        let response =
            client.send(json!({"cmd": "run_cell", "session": 0, "sql": "SELECT 1"})).unwrap();
        assert_eq!(response["ok"].as_bool(), Some(true));
        assert_eq!(served.load(Ordering::SeqCst), 3, "two overloaded replies then one ok");
        drop(client);
        server.join().unwrap();
    }

    /// A listener backed by a real `ServerState` that *processes* one
    /// designated request but drops the connection before replying —
    /// the lost-ack window where naive resend double-applies.
    fn flaky_listener(
        state: Arc<ServerState>,
        drop_reply_for_line: usize,
    ) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut served = 0usize;
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    let response = state.handle_line(line.trim());
                    served += 1;
                    if served == drop_reply_for_line {
                        break; // applied server-side, ack lost
                    }
                    writeln!(writer, "{response}").unwrap();
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn reconnect_resumes_and_dedupes_the_lost_ack() {
        let state = Arc::new(ServerState::new());
        // Line 1 = open (acked), line 2 = run_cell (applied, ack lost).
        let (addr, server) = flaky_listener(Arc::clone(&state), 2);
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            ..RetryPolicy::default()
        };
        let mut client = TcpClient::connect(addr).unwrap().with_policy(policy);
        let opened = client.send(json!({"cmd": "open", "scenario": "toy"})).unwrap();
        assert_eq!(opened["ok"].as_bool(), Some(true));
        let session = opened["session"].as_u64().unwrap();
        assert!(client.session_token().is_some(), "open must yield a resumable token");
        let ran = client
            .send(json!({
                "cmd": "run_cell", "session": session,
                "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            }))
            .unwrap();
        // The server applied the cell once, lost the ack, and served the
        // retry from its dedupe window after resume.
        assert_eq!(ran["ok"].as_bool(), Some(true), "{ran}");
        assert_eq!(ran["deduped"].as_bool(), Some(true), "{ran}");
        let stats = state.stats_json();
        assert_eq!(stats["active_sessions"].as_u64(), Some(1), "cell applied exactly once");
        drop(client);
        server.join().unwrap();
    }
}
