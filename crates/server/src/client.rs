//! Clients: in-process and TCP.
//!
//! Both speak the identical line protocol. [`LocalClient`] serializes the
//! request to its wire form and parses the wire response, so in-process
//! use exercises the exact bytes a TCP client would — protocol tests and
//! benchmarks run against it without sockets in the way.

use crate::state::ServerState;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// An in-process client: requests go straight to a shared
/// [`ServerState`], through the same line encode/decode as TCP.
#[derive(Clone)]
pub struct LocalClient {
    state: Arc<ServerState>,
}

impl LocalClient {
    /// A client talking to `state` (share the `Arc` to get many
    /// concurrent clients of one server).
    pub fn new(state: Arc<ServerState>) -> Self {
        Self { state }
    }

    /// A client over a fresh private server state.
    pub fn standalone() -> Self {
        Self::new(Arc::new(ServerState::new()))
    }

    /// The underlying server state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Send one raw request line; returns the raw response line.
    pub fn request_line(&self, line: &str) -> String {
        self.state.handle_line(line)
    }

    /// Send a request document; returns the parsed response.
    pub fn request(&self, request: Value) -> Value {
        let line =
            serde_json::to_string(&request).unwrap_or_else(|_| "{\"cmd\":\"invalid\"}".to_string());
        serde_json::from_str(&self.request_line(&line)).unwrap_or(Value::Null)
    }
}

/// A blocking TCP client (used by the smoke test and the CI gate).
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpClient {
    /// Connect to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Send one request document and read the one-line response.
    pub fn request(&mut self, request: Value) -> std::io::Result<Value> {
        let line = serde_json::to_string(&request)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        self.reader.read_line(&mut response)?;
        if response.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(response.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}
