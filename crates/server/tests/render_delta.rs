//! Tests for the `render_delta` endpoint and the scene-delta protocol it
//! speaks.
//!
//! The property test closes the loop the endpoint relies on: arbitrary
//! gesture streams, chunked and coalesced exactly as the server's queue
//! would, dispatched through `dispatch_with_delta`, with every resulting
//! delta round-tripped through the wire codec and applied to a client-side
//! scene — which must stay bit-for-bit equal to a fresh full render at
//! every step. The integration tests drive the real endpoint through
//! `LocalClient` and pin the resync contract: a stale client gets exactly
//! one snapshot, then plain frames from there on.

use pi2_core::prelude::{Pi2, SceneGraph, SearchStrategy};
use pi2_core::scene::{delta_from_json, delta_to_json, SCENE_HISTORY_CAP};
use pi2_server::{coalesce, LocalClient};
use proptest::prelude::*;
use serde_json::json;

mod common;
use common::arb_chunks;

const TOY_CELLS: [&str; 2] = [
    "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of coalesced gesture chunks, applied client-side
    /// as wire-codec deltas, equals a fresh full render after every event.
    #[test]
    fn coalesced_deltas_applied_client_side_equal_full_render(chunks in arb_chunks()) {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2.generate_sql(&TOY_CELLS).unwrap();
        let mut session = pi2.session(&g);

        let (mut client, mut version) = session.scene_snapshot().unwrap();
        prop_assert_eq!(version, 1);

        for chunk in chunks {
            // The server's queue coalesces each gesture burst before
            // dispatch; mirror that here (single interface version).
            let merged = coalesce(chunk.into_iter().map(|e| (1usize, e)).collect());
            for (_, event) in merged {
                match session.dispatch_with_delta(event) {
                    Ok((_updates, Some(delta))) => {
                        // Through the wire codec, as render_delta sends it.
                        let rt = delta_from_json(&delta_to_json(&delta)).unwrap();
                        prop_assert_eq!(rt.from_version, version);
                        client.apply(&rt).unwrap();
                        version = rt.to_version;
                    }
                    Ok((_updates, None)) => {}
                    // Rejected events (unknown chart, wrong widget value
                    // kind) must leave the scene untouched — the equality
                    // check below verifies exactly that.
                    Err(_) => {}
                }
                prop_assert_eq!(&client, &SceneGraph::build_from(&session).unwrap());
                prop_assert_eq!(version, session.scene_version());
            }
        }
    }
}

fn open_toy_interface(client: &LocalClient) -> i64 {
    let opened = client.request(json!({"cmd": "open", "scenario": "toy"}));
    assert_eq!(opened["ok"].as_bool(), Some(true), "{opened}");
    assert_eq!(
        opened["protocol"].as_i64(),
        Some(2),
        "open response must advertise the protocol revision: {opened}"
    );
    let session = opened["session"].as_i64().expect("session id");
    for sql in TOY_CELLS {
        let r = client.request(json!({"cmd": "run_cell", "session": session, "sql": sql}));
        assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    }
    let generated = client.request(json!({"cmd": "generate", "session": session}));
    assert_eq!(generated["ok"].as_bool(), Some(true), "{generated}");
    session
}

fn nudge_slider(client: &LocalClient, session: i64, value: f64) {
    let r = client.request(json!({
        "cmd": "gesture",
        "session": session,
        "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": value}}],
    }));
    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
}

#[test]
fn stale_client_gets_exactly_one_resync_snapshot() {
    let client = LocalClient::standalone();
    let session = open_toy_interface(&client);

    // First contact (no `since`): one full snapshot at the live version.
    let first = client.request(json!({"cmd": "render_delta", "session": session}));
    assert_eq!(first["ok"].as_bool(), Some(true), "{first}");
    assert_eq!(first["resync"].as_bool(), Some(true), "{first}");
    assert!(first["scene"].as_object().is_some(), "resync carries a scene: {first}");
    let v1 = first["scene_version"].as_i64().expect("scene_version");
    assert_eq!(v1, 1);

    nudge_slider(&client, session, 2.0);

    // An up-to-date-ish client catches up with plain frames, no snapshot.
    let frames = client.request(json!({
        "cmd": "render_delta", "session": session, "since": v1,
    }));
    assert_eq!(frames["ok"].as_bool(), Some(true), "{frames}");
    assert!(frames["resync"].as_bool().is_none(), "no resync on a fresh client: {frames}");
    assert!(frames["scene"].as_object().is_none(), "{frames}");
    let patch = frames["frames"].as_array().expect("frames array");
    assert_eq!(patch.len(), 1, "one gesture, one frame: {frames}");
    assert_eq!(patch[0]["from"].as_i64(), Some(v1));
    let v2 = frames["scene_version"].as_i64().expect("scene_version");
    assert_eq!(patch[0]["to"].as_i64(), Some(v2));

    // A client claiming a version the server never issued is stale:
    // exactly one resync snapshot, never a frame chain.
    let stale = client.request(json!({
        "cmd": "render_delta", "session": session, "since": 999,
    }));
    assert_eq!(stale["ok"].as_bool(), Some(true), "{stale}");
    assert_eq!(stale["resync"].as_bool(), Some(true), "{stale}");
    assert!(stale["scene"].as_object().is_some(), "{stale}");
    assert_eq!(stale["frames"].as_array().map(Vec::len), Some(0), "{stale}");
    let resync_version = stale["scene_version"].as_i64().expect("scene_version");
    assert_eq!(resync_version, v2);

    // One snapshot is enough: from the advertised version the client is
    // fully caught up — no second resync, no frames.
    let after = client.request(json!({
        "cmd": "render_delta", "session": session, "since": resync_version,
    }));
    assert_eq!(after["ok"].as_bool(), Some(true), "{after}");
    assert!(after["resync"].as_bool().is_none(), "{after}");
    assert!(after["scene"].as_object().is_none(), "{after}");
    assert_eq!(after["frames"].as_array().map(Vec::len), Some(0), "{after}");
}

#[test]
fn history_eviction_falls_back_to_resync() {
    let client = LocalClient::standalone();
    let session = open_toy_interface(&client);

    // Establish version 1, then push the history ring past its capacity.
    let first = client.request(json!({"cmd": "render_delta", "session": session}));
    assert_eq!(first["scene_version"].as_i64(), Some(1), "{first}");
    for i in 0..(SCENE_HISTORY_CAP + 4) {
        nudge_slider(&client, session, if i % 2 == 0 { 2.0 } else { 1.0 });
    }

    // Version 1 fell out of the ring: the server must resync, not 500.
    let catchup = client.request(json!({
        "cmd": "render_delta", "session": session, "since": 1,
    }));
    assert_eq!(catchup["ok"].as_bool(), Some(true), "{catchup}");
    assert_eq!(catchup["resync"].as_bool(), Some(true), "{catchup}");
    assert!(catchup["scene"].as_object().is_some(), "{catchup}");
    let live = catchup["scene_version"].as_i64().expect("scene_version");
    assert!(live > SCENE_HISTORY_CAP as i64, "{catchup}");

    // A recent version still replays as frames.
    let recent = client.request(json!({
        "cmd": "render_delta", "session": session, "since": live - 2,
    }));
    assert_eq!(recent["ok"].as_bool(), Some(true), "{recent}");
    assert!(recent["resync"].as_bool().is_none(), "{recent}");
    assert_eq!(recent["frames"].as_array().map(Vec::len), Some(2), "{recent}");
}
