//! Integration tests for the session server: protocol round-trips,
//! cross-session isolation, a 16-client storm, backpressure, and
//! graceful TCP shutdown.

use pi2_server::{Enqueue, LocalClient, Server, ServerState, SessionEntry, TcpClient, QUEUE_CAP};
use serde_json::{json, Value};
use std::sync::Arc;

fn open_toy(client: &LocalClient) -> i64 {
    let opened = client.request(json!({"cmd": "open", "scenario": "toy"}));
    assert_eq!(opened["ok"].as_bool(), Some(true), "{opened}");
    let session = opened["session"].as_i64().expect("session id");
    for sql in [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    ] {
        let ran = client.request(json!({"cmd": "run_cell", "session": session, "sql": sql}));
        assert_eq!(ran["ok"].as_bool(), Some(true), "{ran}");
    }
    let generated = client.request(json!({"cmd": "generate", "session": session}));
    assert_eq!(generated["version"].as_i64(), Some(1), "{generated}");
    session
}

fn set_slider(client: &LocalClient, session: i64, value: f64) -> Value {
    client.request(json!({
        "cmd": "gesture", "session": session,
        "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": value}}],
    }))
}

/// The SQL the first chart currently shows.
fn current_sql(client: &LocalClient, session: i64, value: f64) -> String {
    let resp = set_slider(client, session, value);
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp}");
    resp["updates"][0]["sql"].as_str().expect("sql").to_string()
}

#[test]
fn protocol_round_trips_ids_errors_and_data() {
    let client = LocalClient::standalone();

    // Request ids are echoed on success and on error.
    let r = client.request(json!({"cmd": "stats", "id": "abc"}));
    assert_eq!(r["id"].as_str(), Some("abc"));
    let r = client.request(json!({"cmd": "generate", "session": 999, "id": 7}));
    assert_eq!(r["ok"].as_bool(), Some(false));
    assert_eq!(r["id"].as_i64(), Some(7));
    assert_eq!(r["error"]["kind"].as_str(), Some("unknown_session"));

    // Unknown scenario and malformed lines give structured errors.
    let r = client.request(json!({"cmd": "open", "scenario": "nope"}));
    assert_eq!(r["error"]["kind"].as_str(), Some("unknown_scenario"));
    let r: Value = serde_json::from_str(&client.request_line("{{{")).expect("valid json");
    assert_eq!(r["error"]["kind"].as_str(), Some("bad_request"));

    let session = open_toy(&client);

    // Gesturing an unknown version is refused before enqueueing.
    let r = client.request(json!({
        "cmd": "gesture", "session": session, "version": 5,
        "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}}],
    }));
    assert_eq!(r["error"]["kind"].as_str(), Some("unknown_version"));

    // include_data returns the rows themselves.
    let r = client.request(json!({
        "cmd": "gesture", "session": session, "include_data": true,
        "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
    }));
    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    let rows = r["updates"][0]["data"].as_array().expect("data rows");
    assert_eq!(rows.len() as i64, r["updates"][0]["rows"].as_i64().expect("row count"));

    // apply_binding is one-event sugar over the same dispatch path.
    let r = client.request(json!({
        "cmd": "apply_binding", "session": session, "widget": 0, "value": {"scalar": 1.0},
    }));
    assert_eq!(r["applied"].as_i64(), Some(1), "{r}");
    assert!(r["updates"][0]["sql"].as_str().expect("sql").contains("a = 1"));

    // A bad single-event gesture surfaces the session error.
    let r = client.request(json!({
        "cmd": "apply_binding", "session": session, "widget": 42, "value": {"scalar": 1.0},
    }));
    assert_eq!(r["error"]["kind"].as_str(), Some("session"), "{r}");

    // Render and per-session stats round-trip.
    let r = client.request(json!({"cmd": "render", "session": session}));
    assert!(r["text"].as_str().expect("text").contains("count(*) by p"), "{r}");
    let r = client.request(json!({"cmd": "stats", "session": session}));
    assert_eq!(r["scenario"].as_str(), Some("toy"));
    assert!(r["dispatched"].as_i64().expect("dispatched") >= 2, "{r}");

    // Close; the session is gone.
    let r = client.request(json!({"cmd": "close", "session": session}));
    assert_eq!(r["ok"].as_bool(), Some(true));
    let r = client.request(json!({"cmd": "render", "session": session}));
    assert_eq!(r["error"]["kind"].as_str(), Some("unknown_session"));
}

#[test]
fn rapid_fire_gestures_coalesce_before_dispatch() {
    let client = LocalClient::standalone();
    let session = open_toy(&client);
    let r = client.request(json!({
        "cmd": "gesture", "session": session,
        "events": [
            {"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}},
            {"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}},
            {"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}},
            {"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}},
        ],
    }));
    assert_eq!(r["applied"].as_i64(), Some(1), "{r}");
    assert_eq!(r["coalesced"].as_i64(), Some(3), "{r}");
    assert!(r["updates"][0]["sql"].as_str().expect("sql").contains("a = 2"));
}

#[test]
fn two_sessions_never_bleed_state() {
    let client = LocalClient::standalone();
    let a = open_toy(&client);
    let b = open_toy(&client);
    assert_ne!(a, b);

    // Drive A and B to different binding states, interleaved. (Sessions
    // start at the first witness binding `a = 1`, and unchanged bindings
    // are dependency-skipped, so every step below changes state.)
    assert!(current_sql(&client, a, 2.0).contains("a = 2"));
    assert!(current_sql(&client, b, 2.0).contains("a = 2"));
    assert!(current_sql(&client, b, 1.0).contains("a = 1"));
    // A must still be where A left it, despite B's dispatches (and vice
    // versa): render shows each session's live slider position.
    let render_a = client.request(json!({"cmd": "render", "session": a}));
    assert!(render_a["text"].as_str().expect("text").contains("◀─ 2 ─▶"), "{render_a}");
    let render_b = client.request(json!({"cmd": "render", "session": b}));
    assert!(render_b["text"].as_str().expect("text").contains("◀─ 1 ─▶"), "{render_b}");

    // Stats (dispatch counters, caches) are tracked per session.
    let stats_a = client.request(json!({"cmd": "stats", "session": a}));
    let stats_b = client.request(json!({"cmd": "stats", "session": b}));
    assert_eq!(stats_a["dispatched"].as_i64(), Some(1), "{stats_a}");
    assert_eq!(stats_b["dispatched"].as_i64(), Some(2), "{stats_b}");

    // Closing A leaves B fully operational.
    client.request(json!({"cmd": "close", "session": a}));
    assert!(current_sql(&client, b, 2.0).contains("a = 2"));
}

/// Sixteen concurrent clients on one server, each driving its own session
/// through a distinct slider sequence. Every client's final SQL must equal
/// the SQL a fresh single-session replay of the same sequence produces:
/// any cross-session leakage (shared bindings, a shared result cache
/// keyed wrongly, a registry mix-up) breaks the equality.
#[test]
fn sixteen_client_storm_has_zero_cross_session_leakage() {
    const CLIENTS: usize = 16;
    let state = Arc::new(ServerState::new());
    // Build + cache the toy catalog once so threads don't race the first
    // build (they would only waste work, but keep timings tight).
    open_toy(&LocalClient::new(Arc::clone(&state)));

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let client = LocalClient::new(state);
                let session = open_toy(&client);
                // Distinct per-client sequence ending on a client-specific
                // value: clients alternate targets while interleaving.
                let last = 1.0 + ((i % 2) as f64);
                let mut sql = String::new();
                for step in 0..4 {
                    let value = if step % 2 == 0 { 3.0 - last } else { last };
                    let resp = set_slider(&client, session, value);
                    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp}");
                    sql = resp["updates"][0]["sql"].as_str().unwrap_or("").to_string();
                }
                (i, session, sql)
            })
        })
        .collect();
    let results: Vec<(usize, i64, String)> =
        workers.into_iter().map(|w| w.join().expect("worker")).collect();

    // Single-session replay on a fresh server: the ground truth.
    let reference = LocalClient::standalone();
    for (i, session, sql) in &results {
        let ref_session = open_toy(&reference);
        let last = 1.0 + ((i % 2) as f64);
        let mut expected = String::new();
        for step in 0..4 {
            let value = if step % 2 == 0 { 3.0 - last } else { last };
            let resp = set_slider(&reference, ref_session, value);
            expected = resp["updates"][0]["sql"].as_str().unwrap_or("?").to_string();
        }
        assert_eq!(sql, &expected, "client {i} (session {session}) leaked state");
    }

    // All sessions are live and the server-wide stats see them.
    let stats = LocalClient::new(Arc::clone(&state)).request(json!({"cmd": "stats"}));
    assert_eq!(stats["stats"]["active_sessions"].as_i64(), Some(1 + CLIENTS as i64), "{stats}");
    assert_eq!(stats["stats"]["errors"].as_i64(), Some(0), "{stats}");
    assert!(stats["stats"]["endpoints"]["gesture"]["count"].as_i64().expect("histogram") >= 64);

    // Engine counters for the shared toy catalog: the executions above all
    // ran somewhere, and the tallies surface through the stats endpoint.
    let engine = &stats["stats"]["engine"]["toy"];
    let columnar = engine["exec_columnar"].as_i64().expect("exec_columnar");
    let reference = engine["exec_reference"].as_i64().expect("exec_reference");
    assert!(columnar + reference > 0, "{stats}");
    assert!(engine["blocks_scanned"].as_i64().is_some(), "{stats}");
    assert!(engine["blocks_pruned"].as_i64().is_some(), "{stats}");
    assert!(engine["columnar_build_ms"].as_f64().is_some(), "{stats}");
}

/// Sixteen clients open the same scenario and log concurrently; the
/// fleet cache's single-flight table must collapse them onto exactly one
/// cold search. The fleet counters are the witness: one miss (the
/// leader), and every other generation either joined the leader's flight
/// or hit the published cache entry.
#[test]
fn sixteen_concurrent_opens_run_exactly_one_generation() {
    const CLIENTS: usize = 16;
    let state = Arc::new(ServerState::new());
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let client = LocalClient::new(state);
                open_toy(&client)
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    let stats = LocalClient::new(Arc::clone(&state)).request(json!({"cmd": "stats"}));
    let fleet = &stats["stats"]["fleet"];
    assert_eq!(fleet["misses"].as_i64(), Some(1), "{stats}");
    let hits = fleet["hits"].as_i64().expect("hits");
    let joins = fleet["joins"].as_i64().expect("joins");
    assert_eq!(hits + joins, (CLIENTS - 1) as i64, "{stats}");
    assert_eq!(fleet["sheds"].as_i64(), Some(0), "{stats}");
    assert_eq!(fleet["entries"].as_i64(), Some(1), "{stats}");
}

/// A session whose log differs from a cached entry only in literal values
/// is served a respecialization of the cached design (`rebind`) bound to
/// its OWN literals — never the first session's literal-bearing snapshot.
#[test]
fn literal_variant_session_is_rebound_not_served_verbatim() {
    let state = Arc::new(ServerState::new());
    open_toy(&LocalClient::new(Arc::clone(&state))); // primes a = 1 / a = 2

    let client = LocalClient::new(Arc::clone(&state));
    let opened = client.request(json!({"cmd": "open", "scenario": "toy"}));
    assert_eq!(opened["ok"].as_bool(), Some(true), "{opened}");
    let session = opened["session"].as_i64().expect("session id");
    for sql in [
        "SELECT p, count(*) FROM t WHERE a = 3 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 0 GROUP BY p",
    ] {
        let ran = client.request(json!({"cmd": "run_cell", "session": session, "sql": sql}));
        assert_eq!(ran["ok"].as_bool(), Some(true), "{ran}");
    }
    let generated = client.request(json!({"cmd": "generate", "session": session}));
    assert_eq!(generated["ok"].as_bool(), Some(true), "{generated}");
    assert_eq!(generated["fleet"].as_str(), Some("rebind"), "{generated}");
    assert_eq!(generated["degradation"].as_str(), Some("full"), "{generated}");

    // The rebound interface is interactive over this session's literals
    // (its default is the session's own first literal, a = 3, so moving
    // to the session's other literal must produce an update).
    let sql = current_sql(&client, session, 0.0);
    assert!(sql.contains("a = 0"), "rebound widget ignored the session's literal: {sql}");

    let stats = client.request(json!({"cmd": "stats"}));
    let fleet = &stats["stats"]["fleet"];
    assert_eq!(fleet["rebinds"].as_i64(), Some(1), "{stats}");
    assert_eq!(fleet["misses"].as_i64(), Some(1), "{stats}");
    assert_eq!(fleet["entries"].as_i64(), Some(1), "{stats}");
}

/// `cache: {"mode": "bypass"}` opts a session out of the fleet: its
/// generation runs a fresh private search that neither reads nor writes
/// the shared cache, and its responses carry no `fleet` outcome.
#[test]
fn cache_bypass_forces_a_fresh_private_search() {
    let state = Arc::new(ServerState::new());
    let shared = LocalClient::new(Arc::clone(&state));
    open_toy(&shared); // one cold generation, now cached

    let client = LocalClient::new(Arc::clone(&state));
    let opened =
        client.request(json!({"cmd": "open", "scenario": "toy", "cache": {"mode": "bypass"}}));
    assert_eq!(opened["ok"].as_bool(), Some(true), "{opened}");
    let session = opened["session"].as_i64().expect("session id");
    for sql in [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    ] {
        client.request(json!({"cmd": "run_cell", "session": session, "sql": sql}));
    }
    let generated = client.request(json!({"cmd": "generate", "session": session}));
    assert_eq!(generated["ok"].as_bool(), Some(true), "{generated}");
    assert_eq!(generated["degradation"].as_str(), Some("full"), "{generated}");
    assert!(generated["fleet"].is_null(), "bypass must not touch the fleet: {generated}");

    // The bypass generation left every fleet counter where open_toy put it.
    let stats = shared.request(json!({"cmd": "stats"}));
    let fleet = &stats["stats"]["fleet"];
    assert_eq!(fleet["misses"].as_i64(), Some(1), "{stats}");
    assert_eq!(fleet["hits"].as_i64(), Some(0), "{stats}");
    assert_eq!(fleet["joins"].as_i64(), Some(0), "{stats}");
}

/// With the cold-generation cap at zero every cold search is shed by
/// admission control: it still runs immediately (never queues) but under
/// the overflow budget, and the response says so truthfully — the
/// degradation level is `anytime` and the fleet outcome is `shed`.
#[test]
fn admission_overflow_degrades_to_anytime_and_never_queues() {
    let state =
        Arc::new(ServerState::with_fleet(pi2_core::FleetConfig::new().max_concurrent_cold(0)));
    let client = LocalClient::new(Arc::clone(&state));
    let opened = client.request(json!({"cmd": "open", "scenario": "toy"}));
    let session = opened["session"].as_i64().expect("session id");
    for sql in [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    ] {
        client.request(json!({"cmd": "run_cell", "session": session, "sql": sql}));
    }
    let generated = client.request(json!({"cmd": "generate", "session": session}));
    assert_eq!(generated["ok"].as_bool(), Some(true), "{generated}");
    assert_eq!(generated["degradation"].as_str(), Some("anytime"), "{generated}");
    assert_eq!(generated["fleet"].as_str(), Some("shed"), "{generated}");

    let stats = client.request(json!({"cmd": "stats"}));
    let fleet = &stats["stats"]["fleet"];
    assert!(fleet["sheds"].as_i64().expect("sheds") >= 1, "{stats}");
    // Shed results are never pinned: the cache must still be empty.
    assert_eq!(fleet["entries"].as_i64(), Some(0), "{stats}");
}

#[test]
fn full_queue_returns_structured_overload() {
    let entry = SessionEntry::new(
        1,
        "toy".to_string(),
        "tok-test".to_string(),
        pi2_notebook::Notebook::new(pi2_datasets::toy::default_catalog()),
    );
    let event = || pi2_core::Event::Click { chart: 0, value: pi2_sql::Literal::Int(1) };
    // Fill to the cap without draining (clicks never coalesce away).
    match entry.enqueue(1, (0..QUEUE_CAP).map(|_| event()).collect()) {
        Enqueue::Accepted(depth) => assert_eq!(depth, QUEUE_CAP),
        Enqueue::Overloaded(_) => panic!("cap-sized batch must be accepted"),
    }
    // One more is refused, and nothing of the refused batch is enqueued.
    match entry.enqueue(1, vec![event()]) {
        Enqueue::Overloaded(depth) => assert_eq!(depth, QUEUE_CAP),
        Enqueue::Accepted(_) => panic!("queue beyond cap must be refused"),
    }
    assert_eq!(entry.queue_depth(), QUEUE_CAP);
    assert_eq!(entry.counters.overloaded.load(std::sync::atomic::Ordering::Relaxed), 1);
}

#[test]
fn tcp_server_shuts_down_gracefully() {
    let state = Arc::new(ServerState::new());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&state)).expect("bind");
    let mut client = TcpClient::connect(server.local_addr()).expect("connect");

    let opened = client.request(json!({"cmd": "open", "scenario": "toy"})).expect("open");
    assert_eq!(opened["ok"].as_bool(), Some(true), "{opened}");

    let bye = client.request(json!({"cmd": "shutdown"})).expect("shutdown");
    assert_eq!(bye["draining"].as_bool(), Some(true), "{bye}");

    // While draining, non-stats verbs are refused (the connection may
    // instead already be closed — both are clean outcomes).
    match client.request(json!({"cmd": "open", "scenario": "toy"})) {
        Ok(refused) => {
            assert_eq!(refused["error"]["kind"].as_str(), Some("shutting_down"), "{refused}")
        }
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "{e}"
        ),
    }

    // join() returns only after every connection handler has exited.
    server.join();
    assert!(state.draining());

    // In-process requests are refused after drain, except stats.
    let local = LocalClient::new(state);
    let r = local.request(json!({"cmd": "run_cell", "session": 1, "sql": "SELECT 1"}));
    assert_eq!(r["error"]["kind"].as_str(), Some("shutting_down"));
    let r = local.request(json!({"cmd": "stats"}));
    assert_eq!(r["ok"].as_bool(), Some(true));
}
