//! Crash-safety integration tests: the write-ahead session journal,
//! restart recovery, resume-by-token, and the `req_id` dedupe window.
//!
//! "Crash" here is dropping a journaled `ServerState` without calling
//! `journal_clean_close` — exactly the state a `kill -9` leaves on disk
//! (the process-level version runs in `pi2-server --recovery-smoke`).

use pi2_core::prelude::FleetConfig;
use pi2_server::{JournalConfig, LocalClient, ServerState};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pi2-recovery-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journaled(dir: &PathBuf, checkpoint_every: u64) -> (LocalClient, pi2_server::RecoveryReport) {
    let config = JournalConfig::new(dir).checkpoint_every(checkpoint_every);
    let (state, report) =
        ServerState::with_journal(FleetConfig::default(), config).expect("with_journal");
    (LocalClient::new(Arc::new(state)), report)
}

fn ok(client: &LocalClient, request: Value) -> Value {
    let response = client.request(request);
    assert_eq!(response["ok"].as_bool(), Some(true), "{response}");
    response
}

/// Open a toy session, run the two demo cells, generate, move the
/// slider. Returns (session, token, render text).
fn drive_toy(client: &LocalClient) -> (u64, String, String) {
    let opened = ok(client, json!({"cmd": "open", "scenario": "toy", "req_id": "r-open"}));
    let session = opened["session"].as_u64().expect("session id");
    let token = opened["session_token"].as_str().expect("session_token").to_string();
    for (i, sql) in [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    ]
    .iter()
    .enumerate()
    {
        ok(
            client,
            json!({
                "cmd": "run_cell", "session": session, "sql": *sql,
                "req_id": format!("r-cell-{i}"),
            }),
        );
    }
    ok(client, json!({"cmd": "generate", "session": session, "req_id": "r-gen"}));
    ok(
        client,
        json!({
            "cmd": "gesture", "session": session, "req_id": "r-gesture",
            "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
        }),
    );
    (session, token, render(client, session))
}

fn render(client: &LocalClient, session: u64) -> String {
    let rendered = ok(client, json!({"cmd": "render", "session": session}));
    rendered["text"].as_str().expect("render text").to_string()
}

#[test]
fn crash_recovery_resumes_byte_identical_render() {
    let dir = temp_dir("crash");
    let (client, report) = journaled(&dir, 3);
    assert_eq!(report.sessions_recovered, 0, "fresh journal");
    let (session, token, before) = drive_toy(&client);
    drop(client); // crash: no clean close, no final checkpoint

    let (client, report) = journaled(&dir, 3);
    assert_eq!(report.sessions_recovered, 1, "{report:?}");
    assert!(!report.clean);
    assert!(report.warnings.is_empty(), "{report:?}");
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(resumed["session"].as_u64(), Some(session));
    assert_eq!(resumed["recovered"].as_bool(), Some(true));
    assert_eq!(resumed["latest_version"].as_u64(), Some(1));
    assert_eq!(render(&client, session), before, "recovered render must be byte-identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_finds_live_sessions_and_rejects_unknown_tokens() {
    let client = LocalClient::standalone();
    let opened = ok(&client, json!({"cmd": "open", "scenario": "toy"}));
    let token = opened["session_token"].as_str().expect("token");
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(resumed["session"], opened["session"]);
    assert_eq!(resumed["recovered"].as_bool(), Some(false), "live, not rebuilt");
    let bogus = client.request(json!({"cmd": "resume", "token": "tok-feedfacecafebeef"}));
    assert_eq!(bogus["ok"].as_bool(), Some(false));
    assert_eq!(bogus["error"]["kind"].as_str(), Some("unknown_token"));
}

#[test]
fn retried_req_id_replays_the_cached_response() {
    // Dedupe is protocol-level: it works without any journal attached.
    let client = LocalClient::standalone();
    let opened = ok(&client, json!({"cmd": "open", "scenario": "toy"}));
    let session = opened["session"].as_u64().expect("session");
    let req = json!({
        "cmd": "run_cell", "session": session, "req_id": "retry-1",
        "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    });
    let first = ok(&client, req.clone());
    assert!(first.get("deduped").is_none());
    let second = ok(&client, req);
    assert_eq!(second["deduped"].as_bool(), Some(true), "{second}");
    assert_eq!(second["cell"], first["cell"], "same cached effect, not a new cell");
    // A genuinely new request under a new id still lands a new cell.
    let third = ok(
        &client,
        json!({
            "cmd": "run_cell", "session": session, "req_id": "retry-2",
            "sql": "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        }),
    );
    assert_ne!(third["cell"], first["cell"]);
}

#[test]
fn clean_shutdown_skips_tail_replay() {
    let dir = temp_dir("clean");
    let (client, _) = journaled(&dir, 1000); // cadence never fires: the clean close must checkpoint
    let (session, token, before) = drive_toy(&client);
    client.state().journal_clean_close();
    drop(client);

    let (client, report) = journaled(&dir, 1000);
    assert!(report.clean, "{report:?}");
    assert_eq!(report.sessions_recovered, 1);
    assert_eq!(report.frames_replayed, 0, "clean restarts trust checkpoints alone");
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(resumed["session"].as_u64(), Some(session));
    assert_eq!(render(&client, session), before);
    // A crash *after* the clean restart must still recover: the marker
    // was consumed, not left behind.
    drop(client);
    let (_, report) = journaled(&dir, 1000);
    assert!(!report.clean, "the clean marker is single-use");
    assert_eq!(report.sessions_recovered, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_req_id_frames_replay_once() {
    let dir = temp_dir("dupframe");
    let (client, _) = journaled(&dir, 1000); // no checkpoints: everything replays from frames
    let (session, _token, before) = drive_toy(&client);
    // Simulate an at-least-once append gone wrong: the same accepted
    // request journaled twice under one req_id.
    let journal = client.state().journal().expect("journal attached").clone();
    journal
        .append(
            session,
            None,
            &json!({
                "cmd": "run_cell", "session": session, "req_id": "r-cell-0",
                "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            }),
        )
        .expect("append duplicate");
    drop(client);

    let (client, report) = journaled(&dir, 1000);
    assert_eq!(report.sessions_recovered, 1);
    assert!(report.frames_skipped >= 1, "{report:?}");
    assert!(report.warnings.iter().any(|w| w.contains("duplicate req_id")), "{report:?}");
    assert_eq!(render(&client, session), before, "the duplicate cell must not re-apply");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_newer_than_every_tail_frame_replays_nothing() {
    let dir = temp_dir("cknewer");
    // Checkpoint after every mutation: the final checkpoint covers every
    // frame left in the journal, so recovery must treat the whole tail
    // as superseded rather than double-applying it.
    let (client, _) = journaled(&dir, 1);
    let (session, token, before) = drive_toy(&client);
    drop(client);

    let (client, report) = journaled(&dir, 1);
    assert_eq!(report.sessions_recovered, 1);
    assert_eq!(report.frames_replayed, 0, "{report:?}");
    assert!(report.frames_skipped >= 1, "superseded frames are counted: {report:?}");
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(resumed["session"].as_u64(), Some(session));
    assert_eq!(render(&client, session), before);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_sessions_stay_fully_operable() {
    let dir = temp_dir("operable");
    let (client, _) = journaled(&dir, 2);
    let (session, token, _) = drive_toy(&client);
    drop(client);

    let (client, _) = journaled(&dir, 2);
    ok(&client, json!({"cmd": "resume", "token": token}));
    // Life goes on: new cells, a new generation, new gestures — all
    // journaled again and recoverable after a *second* crash.
    ok(
        &client,
        json!({
            "cmd": "run_cell", "session": session,
            "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        }),
    );
    ok(&client, json!({"cmd": "generate", "session": session}));
    ok(
        &client,
        json!({
            "cmd": "gesture", "session": session,
            "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}}],
        }),
    );
    let before = render(&client, session);
    drop(client);

    let (client, report) = journaled(&dir, 2);
    assert_eq!(report.sessions_recovered, 1, "{report:?}");
    assert_eq!(render(&client, session), before, "second-generation state survives too");
    std::fs::remove_dir_all(&dir).unwrap();
}
