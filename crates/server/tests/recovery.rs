//! Crash-safety integration tests: the write-ahead session journal,
//! restart recovery, resume-by-token, and the `req_id` dedupe window.
//!
//! "Crash" here is dropping a journaled `ServerState` without calling
//! `journal_clean_close` — exactly the state a `kill -9` leaves on disk
//! (the process-level version runs in `pi2-server --recovery-smoke`).

use pi2_core::prelude::FleetConfig;
use pi2_server::{JournalConfig, LocalClient, ServerState};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pi2-recovery-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journaled(dir: &PathBuf, checkpoint_every: u64) -> (LocalClient, pi2_server::RecoveryReport) {
    let config = JournalConfig::new(dir).checkpoint_every(checkpoint_every);
    let (state, report) =
        ServerState::with_journal(FleetConfig::default(), config).expect("with_journal");
    (LocalClient::new(Arc::new(state)), report)
}

fn ok(client: &LocalClient, request: Value) -> Value {
    let response = client.request(request);
    assert_eq!(response["ok"].as_bool(), Some(true), "{response}");
    response
}

/// Open a toy session, run the two demo cells, generate, move the
/// slider. Returns (session, token, render text).
fn drive_toy(client: &LocalClient) -> (u64, String, String) {
    let opened = ok(client, json!({"cmd": "open", "scenario": "toy", "req_id": "r-open"}));
    let session = opened["session"].as_u64().expect("session id");
    let token = opened["session_token"].as_str().expect("session_token").to_string();
    for (i, sql) in [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    ]
    .iter()
    .enumerate()
    {
        ok(
            client,
            json!({
                "cmd": "run_cell", "session": session, "sql": *sql,
                "req_id": format!("r-cell-{i}"),
            }),
        );
    }
    ok(client, json!({"cmd": "generate", "session": session, "req_id": "r-gen"}));
    ok(
        client,
        json!({
            "cmd": "gesture", "session": session, "req_id": "r-gesture",
            "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
        }),
    );
    (session, token, render(client, session))
}

fn render(client: &LocalClient, session: u64) -> String {
    let rendered = ok(client, json!({"cmd": "render", "session": session}));
    rendered["text"].as_str().expect("render text").to_string()
}

#[test]
fn crash_recovery_resumes_byte_identical_render() {
    let dir = temp_dir("crash");
    let (client, report) = journaled(&dir, 3);
    assert_eq!(report.sessions_recovered, 0, "fresh journal");
    let (session, token, before) = drive_toy(&client);
    drop(client); // crash: no clean close, no final checkpoint

    let (client, report) = journaled(&dir, 3);
    assert_eq!(report.sessions_recovered, 1, "{report:?}");
    assert!(!report.clean);
    assert!(report.warnings.is_empty(), "{report:?}");
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(resumed["session"].as_u64(), Some(session));
    assert_eq!(resumed["recovered"].as_bool(), Some(true));
    assert_eq!(resumed["latest_version"].as_u64(), Some(1));
    assert_eq!(render(&client, session), before, "recovered render must be byte-identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_finds_live_sessions_and_rejects_unknown_tokens() {
    let client = LocalClient::standalone();
    let opened = ok(&client, json!({"cmd": "open", "scenario": "toy"}));
    let token = opened["session_token"].as_str().expect("token");
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(resumed["session"], opened["session"]);
    assert_eq!(resumed["recovered"].as_bool(), Some(false), "live, not rebuilt");
    let bogus = client.request(json!({"cmd": "resume", "token": "tok-feedfacecafebeef"}));
    assert_eq!(bogus["ok"].as_bool(), Some(false));
    assert_eq!(bogus["error"]["kind"].as_str(), Some("unknown_token"));
}

#[test]
fn retried_req_id_replays_the_cached_response() {
    // Dedupe is protocol-level: it works without any journal attached.
    let client = LocalClient::standalone();
    let opened = ok(&client, json!({"cmd": "open", "scenario": "toy"}));
    let session = opened["session"].as_u64().expect("session");
    let req = json!({
        "cmd": "run_cell", "session": session, "req_id": "retry-1",
        "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    });
    let first = ok(&client, req.clone());
    assert!(first.get("deduped").is_none());
    let second = ok(&client, req);
    assert_eq!(second["deduped"].as_bool(), Some(true), "{second}");
    assert_eq!(second["cell"], first["cell"], "same cached effect, not a new cell");
    // A genuinely new request under a new id still lands a new cell.
    let third = ok(
        &client,
        json!({
            "cmd": "run_cell", "session": session, "req_id": "retry-2",
            "sql": "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        }),
    );
    assert_ne!(third["cell"], first["cell"]);
}

#[test]
fn clean_shutdown_skips_tail_replay() {
    let dir = temp_dir("clean");
    let (client, _) = journaled(&dir, 1000); // cadence never fires: the clean close must checkpoint
    let (session, token, before) = drive_toy(&client);
    client.state().journal_clean_close();
    drop(client);

    let (client, report) = journaled(&dir, 1000);
    assert!(report.clean, "{report:?}");
    assert_eq!(report.sessions_recovered, 1);
    assert_eq!(report.frames_replayed, 0, "clean restarts trust checkpoints alone");
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(resumed["session"].as_u64(), Some(session));
    assert_eq!(render(&client, session), before);
    // A crash *after* the clean restart must still recover: the marker
    // was consumed, not left behind.
    drop(client);
    let (_, report) = journaled(&dir, 1000);
    assert!(!report.clean, "the clean marker is single-use");
    assert_eq!(report.sessions_recovered, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_req_id_frames_replay_once() {
    let dir = temp_dir("dupframe");
    let (client, _) = journaled(&dir, 1000); // no checkpoints: everything replays from frames
    let (session, _token, before) = drive_toy(&client);
    // Simulate an at-least-once append gone wrong: the same accepted
    // request journaled twice under one req_id.
    let journal = client.state().journal().expect("journal attached").clone();
    journal
        .append(
            session,
            None,
            &json!({
                "cmd": "run_cell", "session": session, "req_id": "r-cell-0",
                "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            }),
        )
        .expect("append duplicate");
    drop(client);

    let (client, report) = journaled(&dir, 1000);
    assert_eq!(report.sessions_recovered, 1);
    assert!(report.frames_skipped >= 1, "{report:?}");
    assert!(report.warnings.iter().any(|w| w.contains("duplicate req_id")), "{report:?}");
    assert_eq!(render(&client, session), before, "the duplicate cell must not re-apply");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_newer_than_every_tail_frame_replays_nothing() {
    let dir = temp_dir("cknewer");
    // Checkpoint after every mutation: the final checkpoint covers every
    // frame left in the journal, so recovery must treat the whole tail
    // as superseded rather than double-applying it.
    let (client, _) = journaled(&dir, 1);
    let (session, token, before) = drive_toy(&client);
    drop(client);

    let (client, report) = journaled(&dir, 1);
    assert_eq!(report.sessions_recovered, 1);
    assert_eq!(report.frames_replayed, 0, "{report:?}");
    assert!(report.frames_skipped >= 1, "superseded frames are counted: {report:?}");
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(resumed["session"].as_u64(), Some(session));
    assert_eq!(render(&client, session), before);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Review regression: with `checkpoint_every(1)` every mutation triggers
/// a checkpoint, so each checkpoint must snapshot a dedupe window that
/// already contains the req_id of the very mutation that triggered it.
/// If it doesn't, that frame is skipped at replay (lsn <= covered) AND
/// its id is missing from the rebuilt window — a post-crash retry then
/// applies the mutation a second time.
#[test]
fn checkpoint_boundary_req_id_survives_the_crash() {
    let dir = temp_dir("ckptrid");
    let (client, _) = journaled(&dir, 1);
    let (session, token, before) = drive_toy(&client);
    drop(client); // crash

    let (client, report) = journaled(&dir, 1);
    assert_eq!(report.sessions_recovered, 1, "{report:?}");
    ok(&client, json!({"cmd": "resume", "token": token}));
    // The client never saw the ack for its last cell; it retries under
    // the original req_id. The effect must already be present.
    let retried = ok(
        &client,
        json!({
            "cmd": "run_cell", "session": session, "req_id": "r-cell-1",
            "sql": "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        }),
    );
    assert_eq!(retried["deduped"].as_bool(), Some(true), "retry must not re-execute: {retried}");
    let gestured = ok(
        &client,
        json!({
            "cmd": "gesture", "session": session, "req_id": "r-gesture",
            "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
        }),
    );
    assert_eq!(gestured["deduped"].as_bool(), Some(true), "{gestured}");
    assert_eq!(render(&client, session), before, "retries must leave state untouched");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Review regression: `open` carries no session id, so its dedupe lives
/// in a server-level window. A retried open (TcpClient resends it after
/// a lost ack) must reattach to the session it already created, not
/// leak a second, orphaned one.
#[test]
fn retried_open_reuses_the_session_instead_of_leaking_one() {
    let client = LocalClient::standalone();
    let first = ok(&client, json!({"cmd": "open", "scenario": "toy", "req_id": "open-A"}));
    let second = ok(&client, json!({"cmd": "open", "scenario": "toy", "req_id": "open-A"}));
    assert_eq!(second["session"], first["session"], "{second}");
    assert_eq!(second["session_token"], first["session_token"]);
    assert_eq!(second["deduped"].as_bool(), Some(true), "{second}");
    assert_eq!(client.state().registry().len(), 1, "no orphan session");
    // A different id still opens a fresh session.
    let third = ok(&client, json!({"cmd": "open", "scenario": "toy", "req_id": "open-B"}));
    assert_ne!(third["session"], first["session"]);
    assert_eq!(client.state().registry().len(), 2);
}

/// The open dedupe window is reseeded from journaled open frames, so an
/// open retry that straddles a crash still reattaches.
#[test]
fn retried_open_dedupes_across_the_crash() {
    let dir = temp_dir("openrid");
    let (client, _) = journaled(&dir, 3);
    let (session, token, _) = drive_toy(&client); // opens with req_id "r-open"
    drop(client); // crash before the (hypothetical) open ack arrived

    let (client, report) = journaled(&dir, 3);
    assert_eq!(report.sessions_recovered, 1, "{report:?}");
    let retried = ok(&client, json!({"cmd": "open", "scenario": "toy", "req_id": "r-open"}));
    assert_eq!(retried["session"].as_u64(), Some(session), "{retried}");
    assert_eq!(retried["session_token"].as_str(), Some(token.as_str()));
    assert_eq!(retried["deduped"].as_bool(), Some(true), "{retried}");
    assert_eq!(client.state().registry().len(), 1, "retry must not open a second session");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Review regression: a session whose rebuild fails must keep its
/// journal frames through the post-recovery truncate — a transient
/// replay failure must not become permanent loss.
#[test]
fn failed_rebuild_keeps_its_journal_frames() {
    let dir = temp_dir("failkeep");
    let (client, _) = journaled(&dir, 1000);
    let (_session, token, before) = drive_toy(&client);
    // A frame tail for a session that cannot be rebuilt (its scenario
    // does not exist — standing in for any transient replay failure).
    let journal = client.state().journal().expect("journal").clone();
    journal.append(77, Some("tok-broken"), &json!({"cmd": "open", "scenario": "nope"})).unwrap();
    journal
        .append(77, None, &json!({"cmd": "run_cell", "session": 77, "sql": "SELECT 1"}))
        .unwrap();
    drop(client); // crash

    let (client, report) = journaled(&dir, 1000);
    assert_eq!(report.sessions_recovered, 1, "{report:?}");
    assert!(report.warnings.iter().any(|w| w.contains("session 77 not recovered")), "{report:?}");
    assert!(report.warnings.iter().any(|w| w.contains("journal retained")), "{report:?}");
    let (frames, _) = pi2_server::journal::scan(&dir).expect("scan");
    assert!(
        frames.iter().any(|f| f.session == 77),
        "session 77's frames must survive the post-recovery truncate"
    );
    // The healthy session is unaffected, and a second crash+recovery
    // still sees (and still preserves) the failed session's frames.
    let resumed = ok(&client, json!({"cmd": "resume", "token": token}));
    let session = resumed["session"].as_u64().unwrap();
    assert_eq!(render(&client, session), before);
    drop(client);
    let (_, report) = journaled(&dir, 1000);
    assert_eq!(report.sessions_recovered, 1);
    let (frames, _) = pi2_server::journal::scan(&dir).expect("scan");
    assert!(frames.iter().any(|f| f.session == 77), "frames survive repeated recoveries");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Review regression: mutations execute and journal under one
/// per-session order lock, so concurrent connections can never journal
/// frames in a different order than they executed — recovery replays
/// byte-identically even for racy histories.
#[test]
fn concurrent_mutations_journal_in_execution_order() {
    let dir = temp_dir("order");
    let (client, _) = journaled(&dir, 1000);
    let opened = ok(&client, json!({"cmd": "open", "scenario": "toy"}));
    let session = opened["session"].as_u64().unwrap();
    let token = opened["session_token"].as_str().unwrap().to_string();
    std::thread::scope(|scope| {
        for a in [1i64, 2] {
            let client = client.clone();
            scope.spawn(move || {
                for _ in 0..4 {
                    ok(
                        &client,
                        json!({
                            "cmd": "run_cell", "session": session,
                            "sql": format!("SELECT p, count(*) FROM t WHERE a = {a} GROUP BY p"),
                        }),
                    );
                }
            });
        }
    });
    ok(&client, json!({"cmd": "generate", "session": session}));
    let before = render(&client, session);
    drop(client); // crash

    let (client, report) = journaled(&dir, 1000);
    assert_eq!(report.sessions_recovered, 1, "{report:?}");
    ok(&client, json!({"cmd": "resume", "token": token}));
    assert_eq!(render(&client, session), before, "replay must match the live execution order");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Review regression: two in-flight requests carrying the same req_id
/// must produce exactly one effect — the order lock makes the dedupe
/// check-then-act atomic with execution.
#[test]
fn concurrent_same_req_id_executes_once() {
    let client = LocalClient::standalone();
    let opened = ok(&client, json!({"cmd": "open", "scenario": "toy"}));
    let session = opened["session"].as_u64().unwrap();
    let request = json!({
        "cmd": "run_cell", "session": session, "req_id": "dup-1",
        "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    });
    let responses: Vec<Value> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let client = client.clone();
                let request = request.clone();
                scope.spawn(move || client.request(request))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread")).collect()
    });
    for r in &responses {
        assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    }
    assert_eq!(responses[0]["cell"], responses[1]["cell"], "one effect, one cell index");
    assert_eq!(
        responses.iter().filter(|r| r["deduped"].as_bool() == Some(true)).count(),
        1,
        "exactly one of the pair is a replay: {responses:?}"
    );
    // The next cell lands at index 1: only one cell was ever added.
    let next = ok(
        &client,
        json!({
            "cmd": "run_cell", "session": session, "req_id": "dup-2",
            "sql": "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        }),
    );
    assert_eq!(next["cell"].as_u64(), Some(1), "{next}");
}

#[test]
fn recovered_sessions_stay_fully_operable() {
    let dir = temp_dir("operable");
    let (client, _) = journaled(&dir, 2);
    let (session, token, _) = drive_toy(&client);
    drop(client);

    let (client, _) = journaled(&dir, 2);
    ok(&client, json!({"cmd": "resume", "token": token}));
    // Life goes on: new cells, a new generation, new gestures — all
    // journaled again and recoverable after a *second* crash.
    ok(
        &client,
        json!({
            "cmd": "run_cell", "session": session,
            "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        }),
    );
    ok(&client, json!({"cmd": "generate", "session": session}));
    ok(
        &client,
        json!({
            "cmd": "gesture", "session": session,
            "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}}],
        }),
    );
    let before = render(&client, session);
    drop(client);

    let (client, report) = journaled(&dir, 2);
    assert_eq!(report.sessions_recovered, 1, "{report:?}");
    assert_eq!(render(&client, session), before, "second-generation state survives too");
    std::fs::remove_dir_all(&dir).unwrap();
}
