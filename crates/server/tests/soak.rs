//! Soak / churn test: many short-lived sessions opened, exercised, and
//! closed across the reactor's worker threads, plus a determinism check
//! that the TCP transport is byte-identical to the in-process
//! `LocalClient` for a replayed script.
//!
//! The churn count defaults to a CI-friendly size; `PI2_SOAK_SESSIONS`
//! scales it up (ci.sh runs the release soak at 1000).

use pi2_server::{Server, ServerConfig, ServerState, TcpClient};
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn soak_sessions() -> usize {
    std::env::var("PI2_SOAK_SESSIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

/// One session's whole life over an existing connection: open, two
/// notebook cells, generate (the fleet cache makes the repeats cheap),
/// a gesture burst, close. Returns the session id it used.
fn churn_one(client: &mut TcpClient) -> i64 {
    let opened = client.request(json!({"cmd": "open", "scenario": "toy"})).expect("open");
    assert_eq!(opened["ok"].as_bool(), Some(true), "{opened}");
    let session = opened["session"].as_i64().expect("session id");
    for sql in [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    ] {
        let r = client
            .request(json!({"cmd": "run_cell", "session": session, "sql": sql}))
            .expect("run_cell");
        assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    }
    let generated = client.request(json!({"cmd": "generate", "session": session})).expect("gen");
    assert_eq!(generated["ok"].as_bool(), Some(true), "{generated}");
    let r = client
        .request(json!({
            "cmd": "gesture", "session": session,
            "events": [
                {"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}},
                {"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}},
            ],
        }))
        .expect("gesture");
    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    let r = client.request(json!({"cmd": "close", "session": session})).expect("close");
    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    session
}

#[test]
fn churn_soak_leaves_no_residue() {
    const CLIENTS: usize = 8;
    let total = soak_sessions();
    let state = Arc::new(ServerState::new());
    let server =
        Server::bind_with("127.0.0.1:0", Arc::clone(&state), ServerConfig::new()).expect("bind");
    let addr = server.local_addr();

    // CLIENTS connections churn `total` sessions between them; the
    // reactor multiplexes them across its worker pool.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let share = total / CLIENTS + usize::from(i < total % CLIENTS);
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                let mut sessions = Vec::with_capacity(share);
                for _ in 0..share {
                    sessions.push(churn_one(&mut client));
                }
                sessions
            })
        })
        .collect();
    let mut all_sessions = Vec::new();
    for h in handles {
        all_sessions.extend(h.join().expect("client thread"));
    }

    // Every session got a distinct id — no reuse even under churn.
    assert_eq!(all_sessions.len(), total);
    all_sessions.sort_unstable();
    all_sessions.dedup();
    assert_eq!(all_sessions.len(), total, "session ids were reused");

    // Nothing left behind: registry empty, counters balance.
    assert!(state.registry().is_empty(), "registry must be empty after close-all");
    let counters = state.counters();
    let opened = counters.opened.load(Ordering::Relaxed);
    let closed = counters.closed.load(Ordering::Relaxed);
    assert_eq!(opened, total as u64);
    assert_eq!(opened, closed + state.registry().len() as u64, "opens != closes + active");
    assert_eq!(counters.errors.load(Ordering::Relaxed), 0, "soak must be error-free");

    // The server's own stats agree.
    let mut client = TcpClient::connect(addr).expect("connect");
    let stats = client.request(json!({"cmd": "stats"})).expect("stats");
    assert_eq!(stats["stats"]["active_sessions"].as_i64(), Some(0), "{stats}");
    assert_eq!(stats["stats"]["opened"].as_i64(), Some(total as i64), "{stats}");
    assert_eq!(stats["stats"]["closed"].as_i64(), Some(total as i64), "{stats}");
    // `session_totals` aggregates *live* sessions only, so after
    // close-all it must read zero...
    assert_eq!(stats["stats"]["session_totals"]["queue_depth"].as_i64(), Some(0), "{stats}");
    assert_eq!(stats["stats"]["session_totals"]["dispatched"].as_i64(), Some(0), "{stats}");
    // ...while the endpoint telemetry proves every session's gesture
    // burst actually flowed through the coalescing queues.
    let gestures = stats["stats"]["endpoints"]["gesture"]["count"].as_i64().expect("count");
    assert_eq!(gestures, total as i64, "one gesture request per churned session: {stats}");

    server.shutdown();
    server.join();

    // After drain every accepted connection was closed.
    let accepted = counters.connections_accepted.load(Ordering::Relaxed);
    let conn_closed = counters.connections_closed.load(Ordering::Relaxed);
    assert_eq!(accepted, CLIENTS as u64 + 1);
    assert_eq!(accepted, conn_closed, "drain must close every connection it accepted");
}

/// The deterministic script both transports replay. `stats` is excluded
/// (latency histograms legitimately differ); everything else — session
/// ids, chart updates, render text, id echoes — must match to the byte.
fn script() -> Vec<String> {
    [
        json!({"cmd": "open", "scenario": "toy", "id": 1}),
        json!({"cmd": "run_cell", "session": 1,
            "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p", "id": 2}),
        json!({"cmd": "run_cell", "session": 1,
            "sql": "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p", "id": 3}),
        json!({"cmd": "generate", "session": 1, "id": 4}),
        json!({"cmd": "gesture", "session": 1, "version": 1, "id": 5, "events": [
            {"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}},
            {"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}},
        ]}),
        json!({"cmd": "render", "session": 1, "id": 6}),
        json!({"cmd": "gesture", "session": 1, "version": 1, "id": 7, "events": [
            {"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}},
        ]}),
        json!({"cmd": "render", "session": 1, "id": 8}),
        json!({"cmd": "close", "session": 1, "id": 9}),
        // Transport-level errors must be deterministic too.
        json!({"cmd": "render", "session": 1, "id": 10}),
        Value::String("this is not json".to_string()),
    ]
    .into_iter()
    .map(|v| match v {
        Value::String(raw) => raw,
        v => v.to_string(),
    })
    .collect()
}

#[test]
fn tcp_responses_are_byte_identical_to_local_client() {
    // In-process replay on a fresh state.
    let local = pi2_server::LocalClient::standalone();
    let expected: Vec<String> = script().iter().map(|line| local.request_line(line)).collect();

    // TCP replay on another fresh state (same id allocation from 1).
    let state = Arc::new(ServerState::new());
    let server = Server::bind_with("127.0.0.1:0", state, ServerConfig::new()).expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut got = Vec::new();
    for line in script() {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        got.push(response.trim_end_matches('\n').to_string());
    }
    server.shutdown();
    server.join();

    assert_eq!(got.len(), expected.len());
    for (i, (tcp, local)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(tcp, local, "response {i} diverged between TCP and LocalClient");
    }
}

/// Tombstone soundness under churn: sessions closed *before* the crash
/// must not be resurrected by recovery — even though their open/cell
/// frames may still sit in the journal — while sessions still open at
/// the kill must all come back resumable.
#[test]
fn closed_then_crashed_sessions_are_not_resurrected() {
    use pi2_core::prelude::FleetConfig;
    use pi2_server::{JournalConfig, LocalClient};

    let dir = std::env::temp_dir().join(format!("pi2-soak-tombstone-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journaled = || {
        let config = JournalConfig::new(&dir).checkpoint_every(2);
        let (state, report) = pi2_server::ServerState::with_journal(FleetConfig::default(), config)
            .expect("with_journal");
        (LocalClient::new(Arc::new(state)), report)
    };

    const SESSIONS: usize = 8;
    let (client, _) = journaled();
    let mut tokens = Vec::new();
    for i in 0..SESSIONS {
        let opened = client.request(json!({"cmd": "open", "scenario": "toy"}));
        assert_eq!(opened["ok"].as_bool(), Some(true), "{opened}");
        let session = opened["session"].as_u64().expect("session");
        let token = opened["session_token"].as_str().expect("token").to_string();
        let r = client.request(json!({
            "cmd": "run_cell", "session": session,
            "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        }));
        assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
        if i % 2 == 0 {
            // Closed before the crash: its tombstone frame must win over
            // its open/cell frames and any checkpoint already on disk.
            let r = client.request(json!({"cmd": "close", "session": session}));
            assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
        }
        tokens.push((session, token, i % 2 == 0));
    }
    drop(client); // crash: no clean close

    let (client, report) = journaled();
    assert_eq!(report.sessions_recovered as usize, SESSIONS / 2, "{report:?}");
    assert_eq!(report.tombstones as usize, SESSIONS / 2, "{report:?}");
    for (session, token, closed) in &tokens {
        let resumed = client.request(json!({"cmd": "resume", "token": token.clone()}));
        if *closed {
            assert_eq!(resumed["ok"].as_bool(), Some(false), "session {session}: {resumed}");
            assert_eq!(resumed["error"]["kind"].as_str(), Some("unknown_token"), "{resumed}");
        } else {
            assert_eq!(resumed["ok"].as_bool(), Some(true), "session {session}: {resumed}");
            assert_eq!(resumed["session"].as_u64(), Some(*session), "{resumed}");
        }
    }
    // No checkpoint residue for the tombstoned half.
    for (session, _, closed) in &tokens {
        let ckpt = dir.join(format!("ckpt-{session}.json"));
        if *closed {
            assert!(!ckpt.exists(), "closed session {session} left a checkpoint behind");
        }
    }
    let stats = client.state().stats_json();
    assert_eq!(stats["active_sessions"].as_u64(), Some(SESSIONS as u64 / 2), "{stats}");
    std::fs::remove_dir_all(&dir).unwrap();
}
