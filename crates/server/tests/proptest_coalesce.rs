//! Property tests for gesture coalescing, driven both against the pure
//! [`coalesce`] function and against the *real* per-session bounded
//! queue (`SessionEntry::enqueue` → `drain_coalesced`).
//!
//! The invariants under test are the documented merge semantics:
//! adjacent same-target pans sum their deltas, zooms multiply their
//! factors, brushes and set-widget events keep only the last value,
//! clicks never merge, and nothing merges across version or target
//! boundaries. To make the arithmetic invariants exact (`==`, not
//! approximate), generated pan deltas are dyadic rationals and zoom
//! factors are powers of two — both closed under the merge ops.

use pi2_core::prelude::Event;
use pi2_server::{coalesce, ServerState};
use proptest::prelude::*;
use serde_json::json;

mod common;
use common::{arb_event, arb_stream};

/// The merge key: two *adjacent* events merge iff their keys are equal
/// (and neither is a click — clicks never merge).
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum Key {
    Pan(usize, usize),
    Zoom(usize, usize),
    Brush(usize, usize),
    Widget(usize, usize),
    Click,
}

fn key(version: usize, event: &Event) -> Key {
    match event {
        Event::Pan { chart, .. } => Key::Pan(version, *chart),
        Event::Zoom { chart, .. } => Key::Zoom(version, *chart),
        Event::Brush { chart, .. } => Key::Brush(version, *chart),
        Event::SetWidget { widget, .. } => Key::Widget(version, *widget),
        Event::Click { .. } => Key::Click,
    }
}

/// Sum of pan deltas for one (version, chart) across a whole stream —
/// preserved by coalescing because merging adds deltas and non-merged
/// pans pass through untouched.
fn pan_sum(stream: &[(usize, Event)], target: (usize, usize)) -> (f64, f64) {
    stream.iter().fold((0.0, 0.0), |(sx, sy), (v, e)| match e {
        Event::Pan { chart, dx, dy } if (*v, *chart) == target => (sx + dx, sy + dy),
        _ => (sx, sy),
    })
}

fn zoom_product(stream: &[(usize, Event)], target: (usize, usize)) -> f64 {
    stream.iter().fold(1.0, |p, (v, e)| match e {
        Event::Zoom { chart, factor } if (*v, *chart) == target => p * factor,
        _ => p,
    })
}

fn last_of(stream: &[(usize, Event)], k: Key) -> Option<&(usize, Event)> {
    stream.iter().rev().find(|(v, e)| key(*v, e) == k)
}

fn clicks(stream: &[(usize, Event)]) -> Vec<&(usize, Event)> {
    stream.iter().filter(|(_, e)| matches!(e, Event::Click { .. })).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Coalescing is idempotent: the output has nothing left to merge.
    #[test]
    fn idempotent(stream in arb_stream()) {
        let once = coalesce(stream);
        let twice = coalesce(once.clone());
        prop_assert_eq!(once, twice);
    }

    /// Canonical form: no adjacent pair of the output shares a mergeable
    /// key (clicks are exempt — they are allowed to sit side by side).
    #[test]
    fn no_adjacent_mergeable_pairs_survive(stream in arb_stream()) {
        let out = coalesce(stream);
        for pair in out.windows(2) {
            let (a, b) = (key(pair[0].0, &pair[0].1), key(pair[1].0, &pair[1].1));
            prop_assert!(a != b || a == Key::Click, "unmerged adjacent pair: {pair:?}");
        }
    }

    /// Order is preserved: the output's key sequence equals the input's
    /// with runs of one mergeable key collapsed to a single entry.
    #[test]
    fn key_sequence_is_the_run_collapsed_input(stream in arb_stream()) {
        let expected: Vec<Key> = stream.iter().fold(Vec::new(), |mut acc, (v, e)| {
            let k = key(*v, e);
            if acc.last() != Some(&k) || k == Key::Click {
                acc.push(k);
            }
            acc
        });
        let got: Vec<Key> = coalesce(stream).iter().map(|(v, e)| key(*v, e)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Pan deltas sum, zoom factors multiply: the per-target totals are
    /// exactly preserved (dyadic inputs make this `==`-exact).
    #[test]
    fn pan_sums_and_zoom_products_are_preserved(stream in arb_stream()) {
        let out = coalesce(stream.clone());
        for version in 1..3usize {
            for chart in 0..3usize {
                let t = (version, chart);
                prop_assert_eq!(pan_sum(&stream, t), pan_sum(&out, t));
                prop_assert_eq!(zoom_product(&stream, t), zoom_product(&out, t));
            }
        }
    }

    /// Brushes and widget writes are last-wins: for every target, the
    /// final surviving value is the input's final value.
    #[test]
    fn brush_and_widget_are_last_wins(stream in arb_stream()) {
        let out = coalesce(stream.clone());
        for version in 1..3usize {
            for target in 0..3usize {
                for k in [Key::Brush(version, target), Key::Widget(version, target)] {
                    prop_assert_eq!(last_of(&out, k), last_of(&stream, k));
                }
            }
        }
    }

    /// Clicks are sacred: every click survives, in order, unmodified.
    #[test]
    fn every_click_survives_in_order(stream in arb_stream()) {
        let out = coalesce(stream.clone());
        prop_assert_eq!(clicks(&out), clicks(&stream));
    }

    /// The real session queue agrees with the pure function: events
    /// enqueued in arbitrary chunks then drained once coalesce exactly
    /// like the flattened stream, and the per-session `coalesced`
    /// counter accounts for every merged-away event.
    #[test]
    fn session_queue_drain_matches_pure_coalesce(
        chunks in proptest::collection::vec(
            (1..3usize, proptest::collection::vec(arb_event(), 1..6)), 0..8),
    ) {
        let state = ServerState::new();
        let opened = state.handle_line(&json!({"cmd": "open", "scenario": "toy"}).to_string());
        let opened: serde_json::Value = serde_json::from_str(&opened).unwrap();
        let id = opened["session"].as_i64().unwrap() as u64;
        let entry = state.registry().get(id).unwrap();

        let mut flat = Vec::new();
        for (version, events) in chunks {
            flat.extend(events.iter().cloned().map(|e| (version, e)));
            match entry.enqueue(version, events) {
                pi2_server::Enqueue::Accepted(_) => {}
                pi2_server::Enqueue::Overloaded(depth) => {
                    // 8 chunks × 5 events stays far below QUEUE_CAP = 64.
                    prop_assert!(false, "unexpected overload at depth {depth}");
                }
            }
        }
        let expected = coalesce(flat.clone());
        let expected_dropped = flat.len() - expected.len();
        let (batch, dropped) = entry.drain_coalesced();
        prop_assert_eq!(batch, expected);
        prop_assert_eq!(dropped, expected_dropped);
        prop_assert_eq!(
            entry.counters.coalesced.load(std::sync::atomic::Ordering::Relaxed),
            expected_dropped as u64
        );
        // And the queue really drained.
        prop_assert_eq!(entry.queue_depth(), 0);
    }
}

/// Dispatch equivalence on a real generated interface: replaying a
/// gesture burst one-request-per-event (nothing to coalesce) and as one
/// batched request (maximal coalescing) must land both sessions in
/// byte-identical rendered states. This pins "coalescing is a pure
/// optimization": it may drop work, never change outcomes.
#[test]
fn coalesced_and_raw_dispatch_render_identically() {
    use pi2_server::LocalClient;

    // A handful of deterministic bursts over the toy slider interface;
    // each burst mixes mergeable runs with interleavings.
    let bursts: Vec<Vec<serde_json::Value>> = vec![
        vec![
            json!({"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}}),
            json!({"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}),
            json!({"type": "set_widget", "widget": 0, "value": {"scalar": 1.0}}),
        ],
        vec![
            json!({"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}),
            json!({"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}),
        ],
    ];

    let run = |batched: bool| -> Vec<String> {
        let client = LocalClient::standalone();
        let opened = client.request(json!({"cmd": "open", "scenario": "toy"}));
        let session = opened["session"].as_i64().expect("session id");
        for sql in [
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        ] {
            let r = client.request(json!({"cmd": "run_cell", "session": session, "sql": sql}));
            assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
        }
        let generated = client.request(json!({"cmd": "generate", "session": session}));
        assert_eq!(generated["ok"].as_bool(), Some(true), "{generated}");

        let mut renders = Vec::new();
        for burst in &bursts {
            if batched {
                let r = client.request(
                    json!({"cmd": "gesture", "session": session, "events": burst.clone()}),
                );
                assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
            } else {
                for event in burst {
                    let r = client.request(
                        json!({"cmd": "gesture", "session": session, "events": [event.clone()]}),
                    );
                    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
                }
            }
            let rendered = client.request(json!({"cmd": "render", "session": session}));
            renders.push(rendered["text"].as_str().expect("render text").to_string());
        }
        renders
    };

    assert_eq!(run(false), run(true), "coalesced dispatch diverged from raw dispatch");
}
