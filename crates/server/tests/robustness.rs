//! Protocol-robustness battery for the reactor transport.
//!
//! Throws hostile input at a live TCP server — malformed JSON, invalid
//! UTF-8, truncated lines, oversized requests, mid-request disconnects,
//! slow-loris partial writes — and asserts three invariants throughout:
//! every complete request line gets a *structured* error or success
//! response, the server never panics (it keeps serving new work
//! afterwards), and the session registry never leaks entries that a
//! client did not successfully open.

use pi2_server::{Server, ServerConfig, ServerState, TcpClient};
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Bind a reactor server with test-sized limits on an ephemeral port.
fn start(config: ServerConfig) -> (Server, Arc<ServerState>) {
    let state = Arc::new(ServerState::new());
    let server = Server::bind_with("127.0.0.1:0", Arc::clone(&state), config).expect("bind");
    (server, state)
}

/// A raw byte-level client: no framing help, so tests control exactly
/// what crosses the wire.
struct RawClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawClient {
    fn connect(server: &Server) -> Self {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        RawClient { reader, writer: stream }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write");
        self.writer.flush().expect("flush");
    }

    fn read_response(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        assert!(!line.is_empty(), "server closed the connection unexpectedly");
        serde_json::from_str(line.trim()).expect("response is valid JSON")
    }
}

/// The connection must still serve a normal request — the strongest
/// "no panic, framing still in sync" witness.
fn assert_alive(client: &mut RawClient) {
    client.send(b"{\"cmd\": \"stats\", \"id\": \"alive\"}\n");
    let r = client.read_response();
    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    assert_eq!(r["id"].as_str(), Some("alive"), "{r}");
}

#[test]
fn malformed_json_gets_structured_error_and_connection_survives() {
    let (server, state) = start(ServerConfig::new());
    let mut client = RawClient::connect(&server);

    for garbage in
        ["not json at all", "{{{", "[1, 2, 3]", "\"just a string\"", "{\"cmd\": \"nope\"}"]
    {
        client.send(format!("{garbage}\n").as_bytes());
        let r = client.read_response();
        assert_eq!(r["ok"].as_bool(), Some(false), "{garbage} -> {r}");
        assert_eq!(r["error"]["kind"].as_str(), Some("bad_request"), "{garbage} -> {r}");
    }
    assert_alive(&mut client);
    assert!(state.registry().is_empty(), "garbage must not create sessions");
    server.shutdown();
    server.join();
}

#[test]
fn invalid_utf8_is_rejected_without_killing_the_framing() {
    let (server, state) = start(ServerConfig::new());
    let mut client = RawClient::connect(&server);

    client.send(b"\xff\xfe\x80garbage\n");
    let r = client.read_response();
    assert_eq!(r["error"]["kind"].as_str(), Some("bad_request"), "{r}");
    assert!(r["error"]["message"].as_str().expect("message").contains("UTF-8"), "{r}");

    assert_alive(&mut client);
    assert!(state.registry().is_empty());
    server.shutdown();
    server.join();
}

#[test]
fn blank_lines_are_ignored_not_answered() {
    let (server, _state) = start(ServerConfig::new());
    let mut client = RawClient::connect(&server);

    // Blank and whitespace-only lines produce no response at all; the
    // next real request's response must be the first thing we read.
    client.send(b"\n\n   \n\t\n{\"cmd\": \"stats\", \"id\": 42}\n");
    let r = client.read_response();
    assert_eq!(r["id"].as_i64(), Some(42), "{r}");
    server.shutdown();
    server.join();
}

#[test]
fn oversized_line_gets_too_large_error_and_framing_resyncs() {
    // A small cap so the test is cheap; the junk is 4× the cap.
    let cap = 16 * 1024;
    let (server, state) = start(ServerConfig::new().max_line_bytes(cap));
    let mut client = RawClient::connect(&server);

    let junk = vec![b'x'; cap * 4];
    client.send(&junk);
    // The error arrives *before* the newline: the server answers as soon
    // as the partial line crosses the cap.
    let r = client.read_response();
    assert_eq!(r["ok"].as_bool(), Some(false), "{r}");
    assert_eq!(r["error"]["kind"].as_str(), Some("too_large"), "{r}");

    // Finish the oversized line; everything up to that newline must be
    // discarded, and the next line parses normally.
    client.send(b"more junk after the error\n");
    assert_alive(&mut client);

    // An oversized line never half-creates anything.
    assert!(state.registry().is_empty());
    server.shutdown();
    server.join();
}

#[test]
fn oversized_line_split_across_many_writes_is_still_caught() {
    let cap = 8 * 1024;
    let (server, _state) = start(ServerConfig::new().max_line_bytes(cap));
    let mut client = RawClient::connect(&server);

    // Drip-feed 3× the cap in 1 KiB chunks with no newline.
    let chunk = vec![b'y'; 1024];
    for _ in 0..(cap * 3 / chunk.len()) {
        client.send(&chunk);
    }
    let r = client.read_response();
    assert_eq!(r["error"]["kind"].as_str(), Some("too_large"), "{r}");
    client.send(b"\n");
    assert_alive(&mut client);
    server.shutdown();
    server.join();
}

#[test]
fn slow_loris_byte_at_a_time_request_completes_correctly() {
    let (server, _state) = start(ServerConfig::new());
    let mut client = RawClient::connect(&server);

    // One valid request, written one byte at a time with pauses: the
    // reactor must accumulate the partial line across many poll passes
    // without blocking other connections (exercised by a second client
    // completing a full round-trip mid-drip).
    let request = b"{\"cmd\": \"stats\", \"id\": \"loris\"}\n";
    let mut other = RawClient::connect(&server);
    for (i, byte) in request.iter().enumerate() {
        client.send(std::slice::from_ref(byte));
        if i % 8 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        if i == request.len() / 2 {
            // A slow sender must not stall the reactor for everyone else.
            assert_alive(&mut other);
        }
    }
    let r = client.read_response();
    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    assert_eq!(r["id"].as_str(), Some("loris"), "{r}");
    server.shutdown();
    server.join();
}

#[test]
fn truncated_line_then_disconnect_leaks_nothing() {
    let (server, state) = start(ServerConfig::new());

    // Half an `open` request, then the peer vanishes: no response owed,
    // no session may exist, and the server must keep serving.
    {
        let mut client = RawClient::connect(&server);
        client.send(b"{\"cmd\": \"open\", \"scenario\": \"to");
        // Give the reactor a chance to ingest the fragment.
        std::thread::sleep(Duration::from_millis(20));
    } // dropped: RST/FIN mid-line

    // The incomplete line must not have opened anything.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while state.counters().connections_closed.load(std::sync::atomic::Ordering::Relaxed) < 1 {
        assert!(std::time::Instant::now() < deadline, "reactor never reaped the dead peer");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(state.registry().is_empty(), "truncated open must not leak a session");

    let mut client = RawClient::connect(&server);
    assert_alive(&mut client);
    server.shutdown();
    server.join();
}

#[test]
fn disconnect_between_requests_keeps_sessions_adoptable_and_closable() {
    let (server, state) = start(ServerConfig::new());

    // Open a session, then drop the connection without closing it.
    let session = {
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        let opened = client.request(json!({"cmd": "open", "scenario": "toy"})).expect("open");
        assert_eq!(opened["ok"].as_bool(), Some(true), "{opened}");
        opened["session"].as_i64().expect("session id")
    };

    // Sessions are independent of connections by design: the entry
    // survives the disconnect and a *new* connection can adopt it...
    assert_eq!(state.registry().len(), 1);
    let mut client = TcpClient::connect(server.local_addr()).expect("reconnect");
    let r = client
        .request(json!({"cmd": "run_cell", "session": session,
            "sql": "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p"}))
        .expect("run_cell");
    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");

    // ...and closing it leaves the registry empty: nothing leaked.
    let r = client.request(json!({"cmd": "close", "session": session})).expect("close");
    assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    assert!(state.registry().is_empty());
    server.shutdown();
    server.join();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (server, _state) = start(ServerConfig::new());
    let mut client = RawClient::connect(&server);

    // Ten requests in one write; ten responses, ids in order. (More than
    // `max_lines_per_turn` would also work — excess lines just wait one
    // poll pass — but ten keeps the test instant.)
    let mut batch = String::new();
    for id in 0..10 {
        batch.push_str(&format!("{{\"cmd\": \"stats\", \"id\": {id}}}\n"));
    }
    client.send(batch.as_bytes());
    for id in 0..10 {
        let r = client.read_response();
        assert_eq!(r["id"].as_i64(), Some(id), "{r}");
        assert_eq!(r["ok"].as_bool(), Some(true), "{r}");
    }
    server.shutdown();
    server.join();
}

#[test]
fn firehose_of_bad_lines_is_survived_and_counted() {
    let (server, state) = start(ServerConfig::new());
    let mut client = RawClient::connect(&server);

    const BAD: usize = 500;
    let mut batch = String::new();
    for i in 0..BAD {
        batch.push_str(&format!("this is not json #{i}\n"));
    }
    client.send(batch.as_bytes());
    for _ in 0..BAD {
        let r = client.read_response();
        assert_eq!(r["error"]["kind"].as_str(), Some("bad_request"), "{r}");
    }
    assert_alive(&mut client);
    assert!(
        state.counters().errors.load(std::sync::atomic::Ordering::Relaxed) >= BAD as u64,
        "every bad line must be counted as an error"
    );
    assert!(state.registry().is_empty());
    server.shutdown();
    server.join();
}

#[test]
fn half_open_peer_that_never_reads_is_eventually_cut_off() {
    // Tiny write cap: a peer that requests data but never drains its
    // socket must be disconnected once its responses exceed the cap,
    // instead of growing an unbounded write buffer.
    let (server, state) = start(ServerConfig::new().max_write_buffer(32 * 1024));
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");

    // `stats` responses are a few hundred bytes; thousands of them with
    // a never-reading client overflow a 32 KiB cap quickly. The client's
    // own send may block once kernel buffers fill, so write from a
    // thread and only until the server hangs up.
    let flood = std::thread::spawn(move || {
        let line = b"{\"cmd\": \"stats\"}\n";
        for _ in 0..200_000 {
            if writer.write_all(line).is_err() {
                return; // server cut us off — expected
            }
        }
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while state.counters().connections_closed.load(std::sync::atomic::Ordering::Relaxed) < 1 {
        assert!(std::time::Instant::now() < deadline, "write-cap breach never closed the conn");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Reading nothing, the peer eventually sees EOF/RST on its next read.
    let mut buf = [0u8; 4096];
    let mut reader = stream;
    reader.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    loop {
        match reader.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
    flood.join().expect("flood thread");

    // And the server is still healthy for everyone else.
    let mut client = RawClient::connect(&server);
    assert_alive(&mut client);
    server.shutdown();
    server.join();
}

// ---- journal corruption ------------------------------------------------------
//
// The durability layer gets the same treatment as the wire: damaged
// journals must degrade to skipped frames and structured counters,
// never a panic and never a double-applied effect.

mod journal_corruption {
    use super::*;
    use pi2_core::prelude::FleetConfig;
    use pi2_server::{JournalConfig, LocalClient};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pi2-robust-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn journaled(dir: &PathBuf) -> (LocalClient, pi2_server::RecoveryReport) {
        // Cadence high enough that nothing checkpoints: recovery depends
        // entirely on the (damaged) frame tail.
        let config = JournalConfig::new(dir).checkpoint_every(1000);
        let (state, report) =
            ServerState::with_journal(FleetConfig::default(), config).expect("with_journal");
        (LocalClient::new(Arc::new(state)), report)
    }

    fn ok(client: &LocalClient, request: Value) -> Value {
        let response = client.request(request);
        assert_eq!(response["ok"].as_bool(), Some(true), "{response}");
        response
    }

    /// open + two cells + generate (+ optionally the slider gesture).
    fn drive(client: &LocalClient, gesture: bool) -> (u64, String) {
        let opened = ok(client, json!({"cmd": "open", "scenario": "toy"}));
        let session = opened["session"].as_u64().expect("session");
        for sql in [
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        ] {
            ok(client, json!({"cmd": "run_cell", "session": session, "sql": sql}));
        }
        ok(client, json!({"cmd": "generate", "session": session}));
        if gesture {
            ok(
                client,
                json!({
                    "cmd": "gesture", "session": session,
                    "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
                }),
            );
        }
        let rendered = ok(client, json!({"cmd": "render", "session": session}));
        (session, rendered["text"].as_str().expect("text").to_string())
    }

    #[test]
    fn truncated_final_frame_recovers_the_prefix() {
        let dir = temp_dir("torn");
        let (client, _) = journaled(&dir);
        let (session, _) = drive(&client, true);
        drop(client);
        // Tear the tail mid-frame, as a crash mid-append would.
        let path = dir.join("journal.log");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (client, report) = journaled(&dir);
        assert_eq!(report.sessions_recovered, 1, "{report:?}");
        assert!(!report.warnings.is_empty(), "torn tail must be reported: {report:?}");
        // The torn frame was the gesture: the recovered render is the
        // un-gestured control, not garbage and not a panic.
        let control = LocalClient::standalone();
        let (control_session, expected) = drive(&control, false);
        let rendered = ok(&client, json!({"cmd": "render", "session": session}));
        assert_eq!(rendered["text"].as_str(), Some(expected.as_str()));
        let _ = control_session;
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_frame_is_skipped_and_counted_in_stats() {
        let dir = temp_dir("flip");
        let (client, _) = journaled(&dir);
        let (session, _) = drive(&client, true);
        drop(client);
        // Flip a payload bit in the second frame (the first run_cell):
        // frame 0's length header tells us where it ends.
        let path = dir.join("journal.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let frame0_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let frame1_payload = 8 + frame0_len + 8 + 4;
        bytes[frame1_payload] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let (client, report) = journaled(&dir);
        // The damaged cell frame is skipped; everything after it still
        // replays (generate now sees one cell — a *different* interface
        // is fine, a panic or a lost session is not).
        assert_eq!(report.sessions_recovered, 1, "{report:?}");
        assert!(report.frames_skipped >= 1, "{report:?}");
        assert!(!report.warnings.is_empty(), "{report:?}");
        let rendered = ok(&client, json!({"cmd": "render", "session": session}));
        assert!(!rendered["text"].as_str().unwrap_or("").is_empty());
        // The damage is observable in `stats` under `"journal"`.
        let stats = ok(&client, json!({"cmd": "stats"}));
        let journal = &stats["stats"]["journal"];
        assert_eq!(journal["enabled"].as_bool(), Some(true), "{stats}");
        assert_eq!(journal["sessions_recovered"].as_u64(), Some(1), "{stats}");
        assert!(journal["frames_skipped"].as_u64().unwrap_or(0) >= 1, "{stats}");
        assert!(journal["warnings"].as_u64().unwrap_or(0) >= 1, "{stats}");
        assert!(journal["journal_bytes"].as_u64().is_some(), "{stats}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_journal_yields_empty_state_not_a_panic() {
        let dir = temp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("journal.log"), b"\xde\xad\xbe\xef not a journal at all").unwrap();
        std::fs::write(dir.join("ckpt-3.json"), b"{ truncated checkpoint").unwrap();
        let (client, report) = journaled(&dir);
        assert_eq!(report.sessions_recovered, 0);
        assert!(!report.warnings.is_empty(), "{report:?}");
        // The server is fully usable on top of the wreckage.
        let (_, text) = drive(&client, true);
        assert!(!text.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
