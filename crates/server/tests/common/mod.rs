//! Generators shared by the server's property-test suites
//! (`proptest_coalesce` and `render_delta`).
//!
//! The event space is deliberately small so runs of mergeable neighbors
//! are common, and the numeric inputs are dyadic rationals / powers of
//! two so pan sums and zoom products stay `==`-exact under coalescing.

// Each test binary compiles this module independently and uses a subset.
#![allow(dead_code)]

use pi2_core::prelude::{Event, WidgetValue};
use proptest::prelude::*;

/// Generated events stay in a small target space so runs of mergeable
/// neighbors are common; a wide space would almost never merge and the
/// properties would be tested vacuously.
pub fn arb_event() -> impl Strategy<Value = Event> {
    let chart = 0..3usize;
    let widget = 0..3usize;
    // Quarters: exactly representable, sums stay exact.
    let dyadic = (-16i32..=16).prop_map(|q| f64::from(q) / 4.0);
    // Powers of two in [1/8, 8]: products of a few stay exact.
    let pow2 = (-3i32..=3).prop_map(|e| f64::powi(2.0, e));
    prop_oneof![
        (chart.clone(), dyadic.clone(), dyadic.clone()).prop_map(|(chart, dx, dy)| Event::Pan {
            chart,
            dx,
            dy
        }),
        (chart.clone(), pow2).prop_map(|(chart, factor)| Event::Zoom { chart, factor }),
        (chart.clone(), dyadic.clone(), dyadic).prop_map(|(chart, low, high)| Event::Brush {
            chart,
            low,
            high
        }),
        (widget, arb_widget_value()).prop_map(|(widget, value)| Event::SetWidget { widget, value }),
        chart.prop_map(|chart| Event::Click { chart, value: pi2_sql::Literal::Int(7) }),
    ]
}

/// Widget values covering pick / toggle / scalar writes (scalars are
/// dyadic halves for exactness).
pub fn arb_widget_value() -> impl Strategy<Value = WidgetValue> {
    prop_oneof![
        (0..4usize).prop_map(WidgetValue::Pick),
        any::<bool>().prop_map(WidgetValue::Bool),
        (-8i32..=8).prop_map(|q| WidgetValue::Scalar(f64::from(q) / 2.0)),
    ]
}

/// A versioned event stream, versions in `1..3`.
pub fn arb_stream() -> impl Strategy<Value = Vec<(usize, Event)>> {
    proptest::collection::vec((1..3usize, arb_event()), 0..48)
}

/// An unversioned event stream chopped into gesture-sized chunks — the
/// shape a client hands to `gesture` requests.
pub fn arb_chunks() -> impl Strategy<Value = Vec<Vec<Event>>> {
    proptest::collection::vec(proptest::collection::vec(arb_event(), 1..6), 0..8)
}
