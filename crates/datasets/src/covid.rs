//! Synthetic COVID-19 daily case counts per US state, with census regions.
//!
//! Mirrors the NYT-style dataset used in the paper's §3.2 walkthrough:
//! `covid(date, state, cases)` plus `regions(state, region)`. Case counts
//! follow an epidemic-wave shape (a winter surge peaking late December
//! 2021, like the Omicron wave the fictional analyst Jane studies), with
//! per-state scale proportional to a population weight and region-correlated
//! wave timing, plus multiplicative noise.

use pi2_engine::{Catalog, DataType, Table, Value};
use pi2_sql::{Date, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The 50 US states with a rough population weight (millions) and census
/// region, used to scale and correlate the synthetic waves.
pub const STATES: &[(&str, f64, &str)] = &[
    ("AL", 5.0, "South"),
    ("AK", 0.7, "West"),
    ("AZ", 7.3, "West"),
    ("AR", 3.0, "South"),
    ("CA", 39.2, "West"),
    ("CO", 5.8, "West"),
    ("CT", 3.6, "Northeast"),
    ("DE", 1.0, "South"),
    ("FL", 21.8, "South"),
    ("GA", 10.8, "South"),
    ("HI", 1.4, "West"),
    ("ID", 1.9, "West"),
    ("IL", 12.7, "Midwest"),
    ("IN", 6.8, "Midwest"),
    ("IA", 3.2, "Midwest"),
    ("KS", 2.9, "Midwest"),
    ("KY", 4.5, "South"),
    ("LA", 4.6, "South"),
    ("ME", 1.4, "Northeast"),
    ("MD", 6.2, "South"),
    ("MA", 7.0, "Northeast"),
    ("MI", 10.0, "Midwest"),
    ("MN", 5.7, "Midwest"),
    ("MS", 2.9, "South"),
    ("MO", 6.2, "Midwest"),
    ("MT", 1.1, "West"),
    ("NE", 2.0, "Midwest"),
    ("NV", 3.1, "West"),
    ("NH", 1.4, "Northeast"),
    ("NJ", 9.3, "Northeast"),
    ("NM", 2.1, "West"),
    ("NY", 19.8, "Northeast"),
    ("NC", 10.6, "South"),
    ("ND", 0.8, "Midwest"),
    ("OH", 11.8, "Midwest"),
    ("OK", 4.0, "South"),
    ("OR", 4.2, "West"),
    ("PA", 13.0, "Northeast"),
    ("RI", 1.1, "Northeast"),
    ("SC", 5.2, "South"),
    ("SD", 0.9, "Midwest"),
    ("TN", 7.0, "South"),
    ("TX", 29.5, "South"),
    ("UT", 3.3, "West"),
    ("VT", 0.6, "Northeast"),
    ("VA", 8.6, "South"),
    ("WA", 7.7, "West"),
    ("WV", 1.8, "South"),
    ("WI", 5.9, "Midwest"),
    ("WY", 0.6, "West"),
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// First date in the dataset.
    pub start: Date,
    /// Number of consecutive days.
    pub days: u32,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
    /// Limit to the first `n` states (for small test fixtures). `None` = all 50.
    pub state_limit: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            // 2021-11-01 .. 2021-12-31: the walkthrough's "late December
            // 2021" winter-holiday window plus the preceding weeks.
            start: Date::from_ymd(2021, 11, 1).expect("valid date"),
            days: 61,
            seed: 0xC0_11D,
            state_limit: None,
        }
    }
}

/// Build the `covid` and `regions` tables.
pub fn catalog(config: &Config) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let states: &[(&str, f64, &str)] = match config.state_limit {
        Some(n) => &STATES[..n.min(STATES.len())],
        None => STATES,
    };

    let mut covid = Table::builder("covid")
        .column("date", DataType::Date)
        .column("state", DataType::Str)
        .column("cases", DataType::Int)
        .build();

    // The winter wave peaks around day `days - 7` (late December for the
    // default window), slightly earlier in the Northeast and later in the
    // West, as the real Omicron wave did.
    let base_peak = config.days as f64 - 7.0;
    for (state, pop, region) in states {
        let region_shift = match *region {
            "Northeast" => -4.0,
            "Midwest" => -1.0,
            "South" => 1.5,
            _ => 4.0,
        };
        let peak_day = base_peak + region_shift + rng.gen_range(-2.0..2.0);
        let width = rng.gen_range(8.0..14.0);
        let peak_height = pop * rng.gen_range(800.0..1600.0);
        let baseline = pop * rng.gen_range(20.0..60.0);
        for d in 0..config.days {
            let t = d as f64;
            let wave = peak_height * (-((t - peak_day) / width).powi(2)).exp();
            let noise = rng.gen_range(0.85..1.15);
            let weekday_dip = if (config.start.plus_days(d as i32).0 % 7) < 2 { 0.8 } else { 1.0 };
            let cases = ((baseline + wave) * noise * weekday_dip).round().max(0.0) as i64;
            covid
                .push_row(vec![
                    Value::Date(config.start.plus_days(d as i32)),
                    Value::str(*state),
                    Value::Int(cases),
                ])
                .expect("schema-correct row");
        }
    }

    let mut regions = Table::builder("regions")
        .column("state", DataType::Str)
        .column("region", DataType::Str)
        .build();
    for (state, _, region) in states {
        regions
            .push_row(vec![Value::str(*state), Value::str(*region)])
            .expect("schema-correct row");
    }

    let mut c = Catalog::new();
    c.register(covid);
    c.register(regions);
    c
}

/// The four-query log of the paper's §3.2 use-case walkthrough.
///
/// * Q1 — overview: total cases over time.
/// * Q2 — detail: the same, restricted to a half-month window.
/// * Q2b — the second "preceding half-month period" Jane looks back over.
/// * Q3 — per-state breakdown in a date window.
/// * Q4 — region drill-down with the correlated above-region-average filter.
pub fn demo_queries() -> Vec<Query> {
    crate::parse_all(&[
        // Q1: overview of the dataset.
        "SELECT date, sum(cases) AS cases FROM covid GROUP BY date ORDER BY date",
        // Q2: detailed look at the most recent half-month.
        "SELECT date, sum(cases) AS cases FROM covid \
         WHERE date BETWEEN DATE '2021-12-16' AND DATE '2021-12-31' \
         GROUP BY date ORDER BY date",
        // Q2b: the preceding half-month period.
        "SELECT date, sum(cases) AS cases FROM covid \
         WHERE date BETWEEN DATE '2021-12-01' AND DATE '2021-12-15' \
         GROUP BY date ORDER BY date",
        // Q3: drill down to state level within the window.
        "SELECT date, state, sum(cases) AS cases FROM covid \
         WHERE date BETWEEN DATE '2021-12-16' AND DATE '2021-12-31' \
         GROUP BY date, state ORDER BY date",
        // Q4: focused region investigation — South, above-region-average
        // states only (joins + correlated subqueries, as in the paper).
        "SELECT c.date, c.state, sum(c.cases) AS cases FROM covid c JOIN regions r ON c.state = r.state \
         WHERE r.region = 'South' \
           AND c.date BETWEEN DATE '2021-12-16' AND DATE '2021-12-31' \
           AND c.state IN (SELECT c2.state FROM covid c2 JOIN regions r2 ON c2.state = r2.state \
                         WHERE r2.region = r.region GROUP BY c2.state \
                         HAVING avg(c2.cases) > (SELECT avg(c3.cases) FROM covid c3 \
                            JOIN regions r3 ON c3.state = r3.state WHERE r3.region = r.region)) \
         GROUP BY c.date, c.state ORDER BY c.date",
        // Q4b: the same investigation for the Northeast.
        "SELECT c.date, c.state, sum(c.cases) AS cases FROM covid c JOIN regions r ON c.state = r.state \
         WHERE r.region = 'Northeast' \
           AND c.date BETWEEN DATE '2021-12-16' AND DATE '2021-12-31' \
           AND c.state IN (SELECT c2.state FROM covid c2 JOIN regions r2 ON c2.state = r2.state \
                         WHERE r2.region = r.region GROUP BY c2.state \
                         HAVING avg(c2.cases) > (SELECT avg(c3.cases) FROM covid c3 \
                            JOIN regions r3 ON c3.state = r3.state WHERE r3.region = r.region)) \
         GROUP BY c.date, c.state ORDER BY c.date",
    ])
}

/// The first `n` queries of the walkthrough log (the walkthrough invokes
/// PI2 after Q2b, after Q3, and after Q4).
pub fn demo_queries_step(n: usize) -> Vec<Query> {
    demo_queries().into_iter().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_states_and_days() {
        let c = catalog(&Config::default());
        let r = c.execute_sql("SELECT count(*) FROM covid").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(50 * 61));
        let r = c.execute_sql("SELECT count(*) FROM regions").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(50));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = catalog(&Config::default());
        let b = catalog(&Config::default());
        let qa = a.execute_sql("SELECT sum(cases) FROM covid").unwrap();
        let qb = b.execute_sql("SELECT sum(cases) FROM covid").unwrap();
        assert_eq!(qa.rows, qb.rows);
    }

    #[test]
    fn different_seed_differs() {
        let a = catalog(&Config::default());
        let b = catalog(&Config { seed: 99, ..Config::default() });
        let qa = a.execute_sql("SELECT sum(cases) FROM covid").unwrap();
        let qb = b.execute_sql("SELECT sum(cases) FROM covid").unwrap();
        assert_ne!(qa.rows, qb.rows);
    }

    #[test]
    fn wave_peaks_in_late_december() {
        let c = catalog(&Config::default());
        let r = c
            .execute_sql("SELECT date FROM covid GROUP BY date ORDER BY sum(cases) DESC LIMIT 1")
            .unwrap();
        let Value::Date(peak) = &r.rows[0][0] else { panic!() };
        let (y, m, d) = peak.ymd();
        assert_eq!((y, m), (2021, 12), "peak at {peak}");
        assert!(d >= 15, "peak at {peak}");
    }

    #[test]
    fn all_demo_queries_execute() {
        let c = catalog(&Config::default());
        for q in demo_queries() {
            let r = c.execute(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!r.rows.is_empty(), "{q} returned no rows");
        }
    }

    #[test]
    fn q4_selects_above_average_states_only() {
        let c = catalog(&Config::default());
        let q4 = &demo_queries()[4];
        let r = c.execute(q4).unwrap();
        let states: std::collections::BTreeSet<String> = r
            .rows
            .iter()
            .map(|row| match &row[1] {
                Value::Str(s) => s.clone(),
                other => panic!("{other}"),
            })
            .collect();
        // Big South states should qualify; tiny ones should not.
        assert!(states.contains("TX") || states.contains("FL"), "{states:?}");
        assert!(!states.contains("DE"), "{states:?}");
        // All 16 South states is more than qualify.
        assert!(states.len() < 16, "{states:?}");
    }

    #[test]
    fn state_limit_shrinks_fixture() {
        let c = catalog(&Config { state_limit: Some(3), days: 5, ..Config::default() });
        let r = c.execute_sql("SELECT count(*) FROM covid").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(15));
    }
}
