//! The toy table and queries used in the paper's §2 running example
//! (Figures 2–5): `t(p, a, b)` with integer attributes.

use pi2_engine::{Catalog, DataType, Table, Value};
use pi2_sql::Query;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build the toy table `t(p INT, a INT, b INT)` with `rows` rows whose
/// attribute domains are small (p in 0..8, a in 0..5, b in 0..5) so that
/// grouped counts produce readable bar charts.
pub fn catalog(rows: usize, seed: u64) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Table::builder("t")
        .column("p", DataType::Int)
        .column("a", DataType::Int)
        .column("b", DataType::Int)
        .build();
    for _ in 0..rows {
        t.push_row(vec![
            Value::Int(rng.gen_range(0..8)),
            Value::Int(rng.gen_range(0..5)),
            Value::Int(rng.gen_range(0..5)),
        ])
        .expect("schema-correct row");
    }
    let mut c = Catalog::new();
    c.register(t);
    c
}

/// Default toy catalog (200 rows, fixed seed).
pub fn default_catalog() -> Catalog {
    catalog(200, 0x70E)
}

/// A two-table variant for join workloads: `t(p, a, b)` as in
/// [`catalog`], plus a small dimension table `u(a INT, w INT)` keyed on
/// `a`, so `t JOIN u ON t.a = u.a` is always satisfiable. Used by the
/// conformance harness to fuzz join queries.
pub fn join_catalog(rows: usize, seed: u64) -> Catalog {
    let mut c = catalog(rows, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1011);
    let mut u = Table::builder("u").column("a", DataType::Int).column("w", DataType::Int).build();
    // One row per `a` value (0..5), plus a few duplicates with other weights.
    for a in 0..5 {
        u.push_row(vec![Value::Int(a), Value::Int(rng.gen_range(0..9))])
            .expect("schema-correct row");
    }
    for _ in 0..3 {
        u.push_row(vec![Value::Int(rng.gen_range(0..5)), Value::Int(rng.gen_range(0..9))])
            .expect("schema-correct row");
    }
    c.register(u);
    c
}

/// Figure 2's three queries: Q1 and Q2 differ in the predicate's attribute
/// and literal; Q3 projects `a` instead of `p` and drops the filter.
pub fn fig2_queries() -> Vec<Query> {
    crate::parse_all(&[
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        "SELECT a, count(*) FROM t GROUP BY a",
    ])
}

/// Figure 3 focuses on Q1 and Q2 only.
pub fn fig3_queries() -> Vec<Query> {
    fig2_queries().into_iter().take(2).collect()
}

/// Figure 5's variant: Q1 and Q2 differ *only in the literal* compared to
/// attribute `a`, and Q3 groups by `a` — so clicking a bar of Q3's chart
/// can bind the literal.
pub fn fig5_queries() -> Vec<Query> {
    crate::parse_all(&[
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        "SELECT a, count(*) FROM t GROUP BY a",
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_queries_execute() {
        let c = default_catalog();
        for q in fig2_queries().iter().chain(fig5_queries().iter()) {
            let r = c.execute(q).unwrap();
            assert!(!r.rows.is_empty());
        }
    }

    #[test]
    fn join_catalog_supports_equi_join() {
        let c = join_catalog(100, 1);
        let r =
            c.execute_sql("SELECT t.p, count(*) FROM t JOIN u ON t.a = u.a GROUP BY t.p").unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn domains_are_small() {
        let c = default_catalog();
        let r = c.execute_sql("SELECT count(DISTINCT p), count(DISTINCT a) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(8));
        assert_eq!(r.rows[0][1], Value::Int(5));
    }
}
