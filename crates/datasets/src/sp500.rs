//! Synthetic S&P 500 daily prices.
//!
//! Two tables: `companies(ticker, name, sector)` and
//! `prices(date, ticker, close, volume)`. Prices follow a per-ticker
//! geometric random walk with a sector-level drift component, so
//! sector-comparison queries show coherent trends.

use pi2_engine::{Catalog, DataType, Table, Value};
use pi2_sql::{Date, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tickers with sector assignments (a representative S&P 500 subset).
pub const COMPANIES: &[(&str, &str, &str)] = &[
    ("AAPL", "Apple", "Tech"),
    ("MSFT", "Microsoft", "Tech"),
    ("GOOG", "Alphabet", "Tech"),
    ("NVDA", "Nvidia", "Tech"),
    ("CRM", "Salesforce", "Tech"),
    ("JPM", "JPMorgan", "Financials"),
    ("BAC", "Bank of America", "Financials"),
    ("GS", "Goldman Sachs", "Financials"),
    ("XOM", "Exxon", "Energy"),
    ("CVX", "Chevron", "Energy"),
    ("SLB", "Schlumberger", "Energy"),
    ("JNJ", "Johnson & Johnson", "Health"),
    ("PFE", "Pfizer", "Health"),
    ("UNH", "UnitedHealth", "Health"),
    ("PG", "Procter & Gamble", "Staples"),
    ("KO", "Coca-Cola", "Staples"),
    ("WMT", "Walmart", "Staples"),
    ("HD", "Home Depot", "Discretionary"),
    ("MCD", "McDonald's", "Discretionary"),
    ("NKE", "Nike", "Discretionary"),
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// First trading date.
    pub start: Date,
    /// Number of consecutive days (weekends included for simplicity).
    pub days: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self { start: Date::from_ymd(2021, 7, 1).expect("valid date"), days: 184, seed: 0x5B500 }
    }
}

/// Build the `companies` and `prices` tables.
pub fn catalog(config: &Config) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let mut companies = Table::builder("companies")
        .column("ticker", DataType::Str)
        .column("name", DataType::Str)
        .column("sector", DataType::Str)
        .build();
    for (t, n, s) in COMPANIES {
        companies
            .push_row(vec![Value::str(*t), Value::str(*n), Value::str(*s)])
            .expect("schema-correct row");
    }

    let mut prices = Table::builder("prices")
        .column("date", DataType::Date)
        .column("ticker", DataType::Str)
        .column("close", DataType::Float)
        .column("volume", DataType::Int)
        .build();

    // Sector drift per day: Tech trends up, Energy oscillates, etc.
    let sectors = ["Tech", "Financials", "Energy", "Health", "Staples", "Discretionary"];
    let sector_drift: Vec<f64> = sectors.iter().map(|_| rng.gen_range(-0.0008..0.0018)).collect();

    for (ticker, _, sector) in COMPANIES {
        let sector_idx = sectors.iter().position(|s| s == sector).expect("known sector");
        let mut price: f64 = rng.gen_range(40.0..400.0);
        let vol_base: i64 = rng.gen_range(1_000_000..40_000_000);
        let volatility = rng.gen_range(0.008..0.025);
        for d in 0..config.days {
            let shock = rng.gen_range(-1.0..1.0) * volatility;
            price *= 1.0 + sector_drift[sector_idx] + shock;
            price = price.max(1.0);
            let volume = (vol_base as f64 * rng.gen_range(0.6..1.6)) as i64;
            prices
                .push_row(vec![
                    Value::Date(config.start.plus_days(d as i32)),
                    Value::str(*ticker),
                    Value::Float((price * 100.0).round() / 100.0),
                    Value::Int(volume),
                ])
                .expect("schema-correct row");
        }
    }

    let mut c = Catalog::new();
    c.register(companies);
    c.register(prices);
    c
}

/// A plausible exploration log: one ticker's timeline, a competing ticker,
/// a date-windowed view, and a sector aggregate — the kind of "iterative
/// tweaks" the paper's intro motivates.
pub fn demo_queries() -> Vec<Query> {
    crate::parse_all(&[
        "SELECT date, close FROM prices WHERE ticker = 'AAPL' ORDER BY date",
        "SELECT date, close FROM prices WHERE ticker = 'MSFT' ORDER BY date",
        "SELECT date, close FROM prices WHERE ticker = 'AAPL' \
         AND date BETWEEN DATE '2021-11-01' AND DATE '2021-12-31' ORDER BY date",
        "SELECT c.sector, avg(p.close) AS avg_close FROM prices p JOIN companies c ON p.ticker = c.ticker \
         WHERE p.date BETWEEN DATE '2021-11-01' AND DATE '2021-12-31' \
         GROUP BY c.sector ORDER BY avg_close DESC",
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_cardinalities() {
        let c = catalog(&Config { days: 10, ..Config::default() });
        let r = c.execute_sql("SELECT count(*) FROM prices").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(20 * 10));
        let r = c.execute_sql("SELECT count(DISTINCT sector) FROM companies").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(6));
    }

    #[test]
    fn prices_stay_positive() {
        let c = catalog(&Config::default());
        let r = c.execute_sql("SELECT min(close) FROM prices").unwrap();
        let Value::Float(v) = r.rows[0][0] else { panic!() };
        assert!(v > 0.0);
    }

    #[test]
    fn deterministic() {
        let a = catalog(&Config::default());
        let b = catalog(&Config::default());
        let qa = a.execute_sql("SELECT sum(close) FROM prices").unwrap();
        let qb = b.execute_sql("SELECT sum(close) FROM prices").unwrap();
        assert_eq!(qa.rows, qb.rows);
    }

    #[test]
    fn demo_queries_execute_nonempty() {
        let c = catalog(&Config::default());
        for q in demo_queries() {
            let r = c.execute(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!r.rows.is_empty());
        }
    }
}
