//! Synthetic Sloan Digital Sky Survey photometric catalog.
//!
//! Mirrors the `PhotoObj`-style table behind the paper's Figure 1:
//! `photoobj(objid, ra, dec, u, g, r, i, z, class, redshift)`. Objects are
//! drawn from a handful of sky clusters (so region queries over `ra`/`dec`
//! ranges return spatially coherent sets) plus a uniform background; colors
//! follow class-dependent magnitude distributions.

use pi2_engine::{Catalog, DataType, Table, Value};
use pi2_sql::Query;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of objects.
    pub objects: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self { objects: 5_000, seed: 0x5D55 }
    }
}

impl Config {
    /// A configuration with the given object count and the default seed.
    pub fn sized(objects: usize) -> Self {
        Self { objects, ..Self::default() }
    }

    /// The default configuration, with the object count overridable via the
    /// `PI2_SDSS_OBJECTS` environment variable — how the scaling benchmarks
    /// reach 10M+ rows without recompiling.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(n) = std::env::var("PI2_SDSS_OBJECTS").ok().and_then(|v| v.trim().parse().ok())
        {
            cfg.objects = n;
        }
        cfg
    }
}

/// Sky clusters (ra center, dec center, spread in degrees) the demo's
/// region queries aim at.
const CLUSTERS: &[(f64, f64, f64)] =
    &[(179.5, -0.5, 1.2), (185.0, 2.0, 0.8), (150.0, 30.0, 2.0), (210.0, 15.0, 1.5)];

/// Build the `photoobj` table.
pub fn catalog(config: &Config) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut photoobj = Table::builder("photoobj")
        .column("objid", DataType::Int)
        .column("ra", DataType::Float)
        .column("dec", DataType::Float)
        .column("u", DataType::Float)
        .column("g", DataType::Float)
        .column("r", DataType::Float)
        .column("i", DataType::Float)
        .column("z", DataType::Float)
        .column("class", DataType::Str)
        .column("redshift", DataType::Float)
        .build();

    // Positions are drawn first and emitted in sky-scan (ra-ascending)
    // order, the layout a survey's drift scan would produce. Value-ordered
    // storage is what makes the engine's per-block zone maps tight: a
    // region query's `ra BETWEEN` conjunct then prunes every block outside
    // the window instead of scanning all N rows.
    let mut positions: Vec<(f64, f64)> = (0..config.objects)
        .map(|_| {
            // 70% clustered, 30% uniform background over the demo window.
            if rng.gen_bool(0.7) {
                let (cra, cdec, spread) = CLUSTERS[rng.gen_range(0..CLUSTERS.len())];
                (cra + rng.gen_range(-spread..spread), cdec + rng.gen_range(-spread..spread))
            } else {
                (rng.gen_range(140.0..220.0), rng.gen_range(-5.0..35.0))
            }
        })
        .collect();
    positions.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));

    for (objid, (ra, dec)) in positions.into_iter().enumerate() {
        let objid = objid as i64;
        let class = match rng.gen_range(0..10) {
            0..=4 => "GALAXY",
            5..=8 => "STAR",
            _ => "QSO",
        };
        // Base r-band magnitude by class, with colors offset from it.
        let r_mag: f64 = match class {
            "STAR" => rng.gen_range(14.0..20.0),
            "GALAXY" => rng.gen_range(16.0..22.0),
            _ => rng.gen_range(17.0..21.5),
        };
        let g = r_mag + rng.gen_range(0.2..1.2);
        let u = g + rng.gen_range(0.3..1.8);
        let i = r_mag - rng.gen_range(0.0..0.6);
        let z = i - rng.gen_range(0.0..0.5);
        let redshift: f64 = match class {
            "STAR" => rng.gen_range(0.0..0.001),
            "GALAXY" => rng.gen_range(0.01..0.4),
            _ => rng.gen_range(0.5..3.5),
        };
        photoobj
            .push_row(vec![
                Value::Int(objid),
                Value::Float((ra * 1e4).round() / 1e4),
                Value::Float((dec * 1e4).round() / 1e4),
                Value::Float((u * 100.0).round() / 100.0),
                Value::Float((g * 100.0).round() / 100.0),
                Value::Float((r_mag * 100.0).round() / 100.0),
                Value::Float((i * 100.0).round() / 100.0),
                Value::Float((z * 100.0).round() / 100.0),
                Value::str(class),
                Value::Float((redshift * 1e4).round() / 1e4),
            ])
            .expect("schema-correct row");
    }

    let mut c = Catalog::new();
    c.register(photoobj);
    c
}

/// The two celestial-region queries of the paper's Figure 1: identical
/// except for the `ra`/`dec` window, which is exactly the variation PI2
/// turns into pan/zoom.
pub fn demo_queries() -> Vec<Query> {
    crate::parse_all(&[
        "SELECT ra, dec FROM photoobj \
         WHERE ra BETWEEN 178.5 AND 180.5 AND dec BETWEEN -1.5 AND 0.5",
        "SELECT ra, dec FROM photoobj \
         WHERE ra BETWEEN 184.0 AND 186.0 AND dec BETWEEN 1.0 AND 3.0",
    ])
}

/// A longer exploration log: region scans at several windows, then a class
/// filter and a magnitude histogram — used by the scaling benchmarks.
pub fn exploration_queries() -> Vec<Query> {
    crate::parse_all(&[
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 178.5 AND 180.5 AND dec BETWEEN -1.5 AND 0.5",
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 184.0 AND 186.0 AND dec BETWEEN 1.0 AND 3.0",
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 148.0 AND 152.0 AND dec BETWEEN 28.0 AND 32.0",
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 178.5 AND 180.5 AND dec BETWEEN -1.5 AND 0.5 AND class = 'GALAXY'",
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 178.5 AND 180.5 AND dec BETWEEN -1.5 AND 0.5 AND class = 'QSO'",
        "SELECT class, count(*) AS n FROM photoobj GROUP BY class",
        "SELECT round(r, 0) AS rmag, count(*) AS n FROM photoobj GROUP BY round(r, 0) ORDER BY rmag",
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let c = catalog(&Config { objects: 500, seed: 1 });
        let r = c.execute_sql("SELECT count(*) FROM photoobj").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(500));
    }

    #[test]
    fn deterministic() {
        let a = catalog(&Config { objects: 200, seed: 7 });
        let b = catalog(&Config { objects: 200, seed: 7 });
        let qa = a.execute_sql("SELECT sum(ra), sum(r) FROM photoobj").unwrap();
        let qb = b.execute_sql("SELECT sum(ra), sum(r) FROM photoobj").unwrap();
        assert_eq!(qa.rows, qb.rows);
    }

    #[test]
    fn demo_regions_are_populated() {
        let c = catalog(&Config::default());
        for q in demo_queries() {
            let r = c.execute(&q).unwrap();
            assert!(r.rows.len() > 20, "{q} returned only {} rows", r.rows.len());
        }
    }

    #[test]
    fn rows_are_emitted_in_sky_scan_order() {
        let c = catalog(&Config { objects: 2_000, seed: 5 });
        let r = c.execute_sql("SELECT ra FROM photoobj").unwrap();
        let ras: Vec<f64> = r
            .rows
            .iter()
            .map(|row| match row[0] {
                Value::Float(f) => f,
                ref v => panic!("unexpected ra {v:?}"),
            })
            .collect();
        assert!(ras.windows(2).all(|w| w[0] <= w[1]), "ra not ascending");
    }

    #[test]
    fn sized_overrides_object_count() {
        let c = catalog(&Config::sized(123));
        let r = c.execute_sql("SELECT count(*) FROM photoobj").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(123));
    }

    #[test]
    fn classes_have_expected_redshift_ranges() {
        let c = catalog(&Config::default());
        let r = c.execute_sql("SELECT max(redshift) FROM photoobj WHERE class = 'STAR'").unwrap();
        let Value::Float(v) = r.rows[0][0] else { panic!() };
        assert!(v < 0.01);
        let r = c.execute_sql("SELECT min(redshift) FROM photoobj WHERE class = 'QSO'").unwrap();
        let Value::Float(v) = r.rows[0][0] else { panic!() };
        assert!(v > 0.4);
    }

    #[test]
    fn exploration_queries_execute() {
        let c = catalog(&Config::default());
        for q in exploration_queries() {
            c.execute(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
}
