#![warn(missing_docs)]

//! # pi2-datasets
//!
//! Deterministic synthetic datasets with the same schemas, cardinalities and
//! statistical shape as the three datasets the PI2 demonstration prepared
//! for participants (COVID-19 daily case counts, the Sloan Digital Sky
//! Survey photometric catalog, and S&P 500 daily prices), plus the demo
//! scenarios' query logs.
//!
//! The real datasets are external resources the paper used for flavor; what
//! PI2's pipeline actually consumes is their *schemas, types, cardinalities
//! and value domains*, all of which the generators preserve. Every generator
//! is seeded and pure: the same config always produces the same rows.
//!
//! ```
//! use pi2_datasets::covid;
//!
//! let catalog = covid::catalog(&covid::Config::default());
//! let r = catalog.execute_sql("SELECT count(DISTINCT state) FROM covid").unwrap();
//! assert_eq!(r.rows[0][0], pi2_engine::Value::Int(50));
//! ```

pub mod covid;
pub mod sdss;
pub mod sp500;
pub mod toy;

use pi2_sql::Query;

/// A named analysis scenario: a catalog plus the demo query log over it.
pub struct Scenario {
    /// The name.
    pub name: &'static str,
    /// Catalog.
    pub catalog: pi2_engine::Catalog,
    /// The input query log.
    pub queries: Vec<Query>,
}

/// The three demonstration scenarios at default sizes, in the order the
/// paper lists them (§3.2 "Demonstration engagement").
pub fn demo_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "covid",
            catalog: covid::catalog(&covid::Config::default()),
            queries: covid::demo_queries(),
        },
        Scenario {
            name: "sdss",
            catalog: sdss::catalog(&sdss::Config::default()),
            queries: sdss::demo_queries(),
        },
        Scenario {
            name: "sp500",
            catalog: sp500::catalog(&sp500::Config::default()),
            queries: sp500::demo_queries(),
        },
    ]
}

pub(crate) fn parse_all(sqls: &[&str]) -> Vec<Query> {
    sqls.iter()
        .map(|s| pi2_sql::parse_query(s).unwrap_or_else(|e| panic!("bad demo query {s:?}: {e}")))
        .collect()
}
