#![warn(missing_docs)]

//! # pi2-baselines
//!
//! Functional re-implementations of the comparison tools' *generation
//! models* (paper Table 1 and Figure 1). The original tools are external
//! products; what the comparison measures is what each tool's model can
//! express and how much manual effort it requires, which these models
//! reproduce faithfully:
//!
//! * [`PlainNotebook`] — a xeus-sqlite-style SQL notebook: each query
//!   renders as a static table, nothing else.
//! * [`Lux`] — always-on visualization recommendation: each query result
//!   gets one automatically recommended *static* chart; no widgets, no
//!   interactions, no cross-query reasoning.
//! * [`CountTool`] — Count-style notebook: the user manually configures a
//!   chart and adds widgets over the literal parameters of one query;
//!   widgets only offer the values observed in the log.
//! * [`Hex`] — Hex-style notebook: like Count, but parameters generalize
//!   to full column ranges (sliders), still built manually and still
//!   unable to change query structure — exactly Figure 1(b)'s four
//!   sliders.
//! * [`Pi2Tool`] — PI2 itself, wrapped in the same [`Tool`] trait for the
//!   comparison harness.
//!
//! Hex/Count interfaces are *live* (they produce a DiffTree with holes, so
//! `pi2-core` sessions can drive them), which lets the benchmarks measure
//! interaction effort on equal footing.
//!
//! ```
//! use pi2_baselines::{Hex, Lux, Tool};
//!
//! let catalog = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 200, seed: 1 });
//! let queries = pi2_datasets::sdss::demo_queries();
//! let lux = Lux.generate(&queries, &catalog).unwrap();
//! assert_eq!(lux.interface.charts.len(), 2);   // one static chart per query
//! let hex = Hex.generate(&queries, &catalog).unwrap();
//! assert_eq!(hex.interface.widgets.len(), 4);  // four manual sliders (Figure 1b)
//! ```

use pi2_core::{Pi2, SearchStrategy};
use pi2_difftree::rules::canonicalize;
use pi2_difftree::{lift_query, DiffForest, DiffNode, DiffTree, Domain, NodeKind};
use pi2_engine::Catalog;
use pi2_interface::{
    analyze, choose_chart, Chart, Element, Interface, Layout, ScreenSpec, Target, Widget,
    WidgetKind,
};
use pi2_sql::Query;
use serde::Serialize;

/// Whether a tool provides a feature automatically, only with manual user
/// effort, or not at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Automation {
    /// Generated automatically by the tool.
    Automatic,
    /// Possible, but only with manual user effort.
    Manual,
    /// Not supported.
    None,
}

impl std::fmt::Display for Automation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Automation::Automatic => write!(f, "auto"),
            Automation::Manual => write!(f, "manual"),
            Automation::None => write!(f, "—"),
        }
    }
}

/// A tool's capability row for the Table 1 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Capabilities {
    /// The tool's display name.
    pub tool: &'static str,
    /// How visualizations are produced.
    pub visualizations: Automation,
    /// How widgets are produced.
    pub widgets: Automation,
    /// How in-visualization interactions are produced.
    pub viz_interactions: Automation,
    /// Widgets can change query *structure* (not just literal parameters).
    pub structural_widgets: bool,
    /// Builds one interface from multiple queries.
    pub multi_query: bool,
    /// Considers screen size when laying out.
    pub layout_aware: bool,
}

/// What a tool produced for a query log.
pub struct ToolOutput {
    /// The tool's display name.
    pub tool: &'static str,
    /// The produced interface.
    pub interface: Interface,
    /// For live interfaces (Hex/Count/PI2): the DiffTree forest behind it.
    pub forest: Option<DiffForest>,
    /// Number of manual configuration steps the user had to perform.
    pub manual_steps: usize,
    /// Human-readable remarks about the output.
    pub notes: Vec<String>,
}

/// A comparison tool.
pub trait Tool {
    /// The name.
    fn name(&self) -> &'static str;
    /// Capabilities.
    fn capabilities(&self) -> Capabilities;
    /// Generate.
    fn generate(&self, queries: &[Query], catalog: &Catalog) -> Result<ToolOutput, String>;
}

/// All tools in Table 1 order.
pub fn all_tools() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(PlainNotebook),
        Box::new(Lux),
        Box::new(CountTool),
        Box::new(Hex),
        Box::new(Pi2Tool::default()),
    ]
}

// ---------------------------------------------------------------------------

/// A plain SQL notebook (xeus-sqlite / SQL Notebook): static result tables.
pub struct PlainNotebook;

impl Tool for PlainNotebook {
    fn name(&self) -> &'static str {
        "SQL notebook"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            tool: self.name(),
            visualizations: Automation::None,
            widgets: Automation::None,
            viz_interactions: Automation::None,
            structural_widgets: false,
            multi_query: false,
            layout_aware: false,
        }
    }

    fn generate(&self, queries: &[Query], catalog: &Catalog) -> Result<ToolOutput, String> {
        let mut charts = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let result = catalog.execute(q).map_err(|e| e.to_string())?;
            let fields = analyze(&result);
            charts.push(Chart {
                id: i,
                name: format!("Out[{}]", i + 1),
                title: format!("{} rows", result.len()),
                mark: pi2_interface::Mark::Table,
                encodings: fields
                    .iter()
                    .map(|f| pi2_interface::Encoding {
                        channel: pi2_interface::Channel::Detail,
                        field: f.name.clone(),
                        field_type: f.field_type,
                    })
                    .collect(),
                tree: i,
                interactions: vec![],
            });
        }
        let layout =
            Layout::Vertical(charts.iter().map(|c| Layout::Leaf(Element::Chart(c.id))).collect());
        Ok(ToolOutput {
            tool: self.name(),
            interface: Interface { charts, widgets: vec![], layout, screen: ScreenSpec::default() },
            forest: Some(DiffForest::singletons(queries)),
            manual_steps: 0,
            notes: vec!["one static table per executed cell".into()],
        })
    }
}

// ---------------------------------------------------------------------------

/// Lux: automatic static chart recommendation per result, one per query.
pub struct Lux;

impl Tool for Lux {
    fn name(&self) -> &'static str {
        "Lux"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            tool: self.name(),
            visualizations: Automation::Automatic,
            widgets: Automation::None,
            viz_interactions: Automation::None,
            structural_widgets: false,
            multi_query: false,
            layout_aware: false,
        }
    }

    fn generate(&self, queries: &[Query], catalog: &Catalog) -> Result<ToolOutput, String> {
        let mut charts = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let result = catalog.execute(q).map_err(|e| e.to_string())?;
            let fields = analyze(&result);
            let (mark, encodings) = choose_chart(&fields);
            charts.push(Chart {
                id: i,
                name: format!("Vis{}", i + 1),
                title: format!("recommended for query {}", i + 1),
                mark,
                encodings,
                tree: i,
                interactions: vec![],
            });
        }
        let layout =
            Layout::Vertical(charts.iter().map(|c| Layout::Leaf(Element::Chart(c.id))).collect());
        Ok(ToolOutput {
            tool: self.name(),
            interface: Interface { charts, widgets: vec![], layout, screen: ScreenSpec::default() },
            forest: Some(DiffForest::singletons(queries)),
            manual_steps: 0,
            notes: vec![format!(
                "{} separate static recommendations; re-edit SQL and re-execute to change them",
                queries.len()
            )],
        })
    }
}

// ---------------------------------------------------------------------------

/// Shared machinery for the Hex/Count models: parameterize the *last*
/// query's literals into holes and attach manually-configured widgets.
fn parameterized_tree(query: &Query, catalog: &Catalog, generalize: bool) -> (DiffTree, usize) {
    let mut tree = lift_query(query, 0);
    // Replace literal comparison operands with single-value holes. Walking
    // from choice context is unnecessary: wrap every literal that sits
    // directly under a comparison, BETWEEN, or IN-list.
    fn replace(node: &mut DiffNode) -> usize {
        let mut replaced = 0;
        let eligible_parent =
            matches!(
                node.kind,
                NodeKind::Binary(op) if op.is_comparison()
            ) || matches!(node.kind, NodeKind::Between { .. } | NodeKind::InList { .. });
        if eligible_parent {
            for child in &mut node.children {
                if let NodeKind::Lit(l) = &child.kind {
                    *child = DiffNode::leaf(NodeKind::Hole {
                        domain: Domain::Discrete(vec![l.clone()]),
                        default: l.clone(),
                        source_column: None,
                    });
                    replaced += 1;
                }
            }
        }
        for child in &mut node.children {
            replaced += replace(child);
        }
        replaced
    }
    let mut count = replace(&mut tree.root);
    tree.renumber();

    if generalize {
        // Fill in source columns via choice context, then widen domains
        // from catalog statistics (Hex's range-typed parameters).
        for choice in pi2_difftree::choices(&tree) {
            if let Some(col) = choice.context.compared_column.clone() {
                if let Some(node) = tree.root.find_mut(choice.id) {
                    if let NodeKind::Hole { source_column, .. } = &mut node.kind {
                        *source_column = Some(col);
                    }
                }
            }
        }
        tree = canonicalize(&tree, Some(catalog));
    }
    if count == 0 {
        count = 0;
    }
    (tree, count)
}

fn parameterized_interface(
    tool: &'static str,
    tree: DiffTree,
    catalog: &Catalog,
    query: &Query,
) -> Result<(Interface, usize), String> {
    let result = catalog.execute(query).map_err(|e| e.to_string())?;
    let fields = analyze(&result);
    let (mark, encodings) = choose_chart(&fields);
    let chart = Chart {
        id: 0,
        name: "Chart".into(),
        title: format!("{tool} chart (configured manually)"),
        mark,
        encodings,
        tree: 0,
        interactions: vec![],
    };
    // One manually-created widget per hole.
    let mut widgets = Vec::new();
    for (wid, choice) in pi2_difftree::choices(&tree).into_iter().enumerate() {
        let pi2_difftree::ChoiceKind::Hole { domain, source_column } = &choice.kind else {
            continue;
        };
        let label = source_column
            .as_ref()
            .map(|c| c.column.clone())
            .unwrap_or_else(|| format!("param{}", wid + 1));
        let kind = match domain {
            Domain::Discrete(items) => {
                WidgetKind::Dropdown { options: items.iter().map(|l| l.to_string()).collect() }
            }
            Domain::IntRange { min, max } => WidgetKind::Slider {
                min: *min as f64,
                max: *max as f64,
                step: 1.0,
                temporal: false,
            },
            Domain::FloatRange { min, max } => WidgetKind::Slider {
                min: min.0,
                max: max.0,
                step: (max.0 - min.0) / 100.0,
                temporal: false,
            },
            Domain::DateRange { min, max } => WidgetKind::Slider {
                min: min.0 as f64,
                max: max.0 as f64,
                step: 1.0,
                temporal: true,
            },
        };
        widgets.push(Widget {
            id: wid,
            label,
            kind,
            targets: vec![Target { tree: 0, node: choice.id }],
        });
    }
    // Disambiguate duplicate labels (the two BETWEEN endpoints of one
    // column): "ra" twice becomes "ra (from)" / "ra (to)".
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for w in &widgets {
        *counts.entry(w.label.clone()).or_insert(0) += 1;
    }
    let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for w in &mut widgets {
        if counts[&w.label] == 2 {
            let n = seen.entry(w.label.clone()).or_insert(0);
            let suffix = if *n == 0 { " (from)" } else { " (to)" };
            *n += 1;
            w.label.push_str(suffix);
        } else if counts[&w.label] > 2 {
            let n = seen.entry(w.label.clone()).or_insert(0);
            *n += 1;
            w.label.push_str(&format!(" #{n}"));
        }
    }
    let n_widgets = widgets.len();
    let mut items: Vec<Layout> =
        widgets.iter().map(|w| Layout::Leaf(Element::Widget(w.id))).collect();
    items.push(Layout::Leaf(Element::Chart(0)));
    Ok((
        Interface {
            charts: vec![chart],
            widgets,
            layout: Layout::Vertical(items),
            screen: ScreenSpec::default(),
        },
        n_widgets,
    ))
}

/// Count: manual chart + dropdown widgets over the observed parameter
/// values of the latest query.
pub struct CountTool;

impl Tool for CountTool {
    fn name(&self) -> &'static str {
        "Count"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            tool: self.name(),
            visualizations: Automation::Manual,
            widgets: Automation::Manual,
            viz_interactions: Automation::None,
            structural_widgets: false,
            multi_query: false,
            layout_aware: false,
        }
    }

    fn generate(&self, queries: &[Query], catalog: &Catalog) -> Result<ToolOutput, String> {
        let last = queries.last().ok_or("empty query log")?;
        // Count's widget values come from the whole log: collect the
        // literal each hole replaces across queries by merging literals of
        // the same position... modeled simply as the last query's values.
        let (tree, n_params) = parameterized_tree(last, catalog, false);
        let (interface, n_widgets) =
            parameterized_interface(self.name(), tree.clone(), catalog, last)?;
        Ok(ToolOutput {
            tool: self.name(),
            interface,
            forest: Some(DiffForest { trees: vec![tree] }),
            // The user parameterizes the query, creates each widget, and
            // configures the chart by hand.
            manual_steps: n_params + n_widgets + 1,
            notes: vec!["only the latest query; parameters limited to observed values".into()],
        })
    }
}

/// Hex: manual chart + slider widgets whose parameters generalize to full
/// column ranges (Figure 1b).
pub struct Hex;

impl Tool for Hex {
    fn name(&self) -> &'static str {
        "Hex"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            tool: self.name(),
            visualizations: Automation::Manual,
            widgets: Automation::Manual,
            viz_interactions: Automation::None,
            structural_widgets: false,
            multi_query: false,
            layout_aware: false,
        }
    }

    fn generate(&self, queries: &[Query], catalog: &Catalog) -> Result<ToolOutput, String> {
        let last = queries.last().ok_or("empty query log")?;
        let (tree, n_params) = parameterized_tree(last, catalog, true);
        let (interface, n_widgets) =
            parameterized_interface(self.name(), tree.clone(), catalog, last)?;
        Ok(ToolOutput {
            tool: self.name(),
            interface,
            forest: Some(DiffForest { trees: vec![tree] }),
            manual_steps: n_params + n_widgets + 1,
            notes: vec!["only the latest query's structure; one manual slider per parameter".into()],
        })
    }
}

// ---------------------------------------------------------------------------

/// PI2 wrapped as a [`Tool`] for the comparison harness.
pub struct Pi2Tool {
    /// Strategy.
    pub strategy: SearchStrategy,
    /// The screen the layout was computed for.
    pub screen: ScreenSpec,
}

impl Default for Pi2Tool {
    fn default() -> Self {
        Self { strategy: SearchStrategy::FullMerge, screen: ScreenSpec::default() }
    }
}

impl Tool for Pi2Tool {
    fn name(&self) -> &'static str {
        "PI2"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            tool: self.name(),
            visualizations: Automation::Automatic,
            widgets: Automation::Automatic,
            viz_interactions: Automation::Automatic,
            structural_widgets: true,
            multi_query: true,
            layout_aware: true,
        }
    }

    fn generate(&self, queries: &[Query], catalog: &Catalog) -> Result<ToolOutput, String> {
        let pi2 = Pi2::builder(catalog.clone())
            .strategy(self.strategy.clone())
            .screen(self.screen)
            .build();
        let g = pi2.generate(queries).map_err(|e| e.to_string())?;
        Ok(ToolOutput {
            tool: self.name(),
            interface: g.interface,
            forest: Some(g.forest),
            manual_steps: 0,
            notes: vec!["fully automatic from the selected query log".into()],
        })
    }
}

/// Can a tool's output express every query in the log? (The key Table 1
/// distinction: only PI2's single interface covers the whole log with
/// interactive state; Lux/notebook cover it with N disconnected statics;
/// Hex/Count cover only their last query modulo parameters.)
pub fn expresses_log(output: &ToolOutput, queries: &[Query]) -> bool {
    match &output.forest {
        Some(f) => f.expresses_all(queries),
        None => false,
    }
}

/// Does the output expose any interactive state at all?
pub fn is_interactive(output: &ToolOutput) -> bool {
    !output.interface.widgets.is_empty() || output.interface.interaction_count() > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdss() -> (Catalog, Vec<Query>) {
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 300, seed: 2 });
        (catalog, pi2_datasets::sdss::demo_queries())
    }

    #[test]
    fn plain_notebook_renders_tables_only() {
        let (catalog, queries) = sdss();
        let out = PlainNotebook.generate(&queries, &catalog).unwrap();
        assert_eq!(out.interface.charts.len(), 2);
        assert!(out.interface.charts.iter().all(|c| c.mark == pi2_interface::Mark::Table));
        assert!(!is_interactive(&out));
    }

    #[test]
    fn lux_recommends_static_charts_per_query() {
        let (catalog, queries) = sdss();
        let out = Lux.generate(&queries, &catalog).unwrap();
        assert_eq!(out.interface.charts.len(), 2, "one chart per query");
        assert!(out.interface.charts.iter().all(|c| c.mark == pi2_interface::Mark::Scatter));
        assert!(!is_interactive(&out));
        assert_eq!(out.manual_steps, 0);
    }

    #[test]
    fn hex_builds_four_sliders_for_sdss() {
        // Figure 1(b): the ra/dec region query has four literals -> four
        // manually-configured sliders.
        let (catalog, queries) = sdss();
        let out = Hex.generate(&queries, &catalog).unwrap();
        assert_eq!(out.interface.charts.len(), 1);
        let sliders = out
            .interface
            .widgets
            .iter()
            .filter(|w| matches!(w.kind, WidgetKind::Slider { .. }))
            .count();
        assert_eq!(sliders, 4, "{:?}", out.interface.widgets);
        assert!(out.manual_steps >= 4);
        assert_eq!(out.interface.interaction_count(), 0, "no viz interactions in Hex");
    }

    #[test]
    fn hex_interface_is_live() {
        // The Hex model produces a real forest: a session can drive its
        // sliders.
        let (catalog, queries) = sdss();
        let out = Hex.generate(&queries, &catalog).unwrap();
        let forest = out.forest.clone().unwrap();
        let mut session =
            pi2_core::SessionBuilder::new(catalog, forest, out.interface.clone()).build();
        let slider = out.interface.widgets[0].id;
        let updates = session
            .dispatch(pi2_core::Event::SetWidget {
                widget: slider,
                value: pi2_core::WidgetValue::Scalar(160.0),
            })
            .unwrap();
        assert!(!updates.is_empty());
    }

    #[test]
    fn count_limits_domains_to_observed_values() {
        let (catalog, queries) = sdss();
        let out = CountTool.generate(&queries, &catalog).unwrap();
        assert!(out
            .interface
            .widgets
            .iter()
            .all(|w| matches!(&w.kind, WidgetKind::Dropdown { options } if options.len() == 1)));
    }

    #[test]
    fn only_pi2_expresses_the_whole_log() {
        let (catalog, queries) = sdss();
        let results: Vec<(&'static str, bool)> = all_tools()
            .iter()
            .map(|t| {
                let out = t.generate(&queries, &catalog).unwrap();
                (out.tool, expresses_log(&out, &queries))
            })
            .collect();
        // Static per-query tools "express" the log as N disconnected views;
        // Hex/Count cannot reproduce the first query from the second's
        // structure unless the parameters cover it; PI2 always can with a
        // single interface.
        let pi2 = results.iter().find(|(t, _)| *t == "PI2").unwrap();
        assert!(pi2.1);
        let hex_out = Hex.generate(&queries[..1], &catalog).unwrap();
        // Hex on just Q1 expresses Q1 (parameterized)...
        assert!(expresses_log(&hex_out, &queries[..1]));
        // ...and, because SDSS Q2 varies only literals inside the column
        // range, Hex's generalized sliders happen to cover it; the COVID
        // log (structure changes) defeats Hex:
        let covid_catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
            state_limit: Some(4),
            ..Default::default()
        });
        let covid_queries = pi2_datasets::covid::demo_queries_step(4);
        let hex_covid = Hex.generate(&covid_queries, &covid_catalog).unwrap();
        assert!(!expresses_log(&hex_covid, &covid_queries), "Hex cannot express structural change");
    }

    #[test]
    fn capabilities_matrix_shape() {
        let tools = all_tools();
        assert_eq!(tools.len(), 5);
        let caps: Vec<Capabilities> = tools.iter().map(|t| t.capabilities()).collect();
        // Only PI2 automates everything.
        for c in &caps {
            if c.tool == "PI2" {
                assert_eq!(c.visualizations, Automation::Automatic);
                assert_eq!(c.widgets, Automation::Automatic);
                assert_eq!(c.viz_interactions, Automation::Automatic);
                assert!(c.structural_widgets && c.multi_query && c.layout_aware);
            } else {
                assert!(
                    c.viz_interactions == Automation::None,
                    "{}: no baseline has viz interactions",
                    c.tool
                );
            }
        }
    }

    #[test]
    fn pi2_tool_beats_hex_on_interaction_effort() {
        let (catalog, queries) = sdss();
        let hex = Hex.generate(&queries, &catalog).unwrap();
        let pi2 = Pi2Tool::default().generate(&queries, &catalog).unwrap();
        let effort = |o: &ToolOutput| -> f64 {
            o.interface.widgets.iter().map(|w| pi2_cost::widget_effort(&w.kind)).sum::<f64>()
                + o.interface
                    .charts
                    .iter()
                    .flat_map(|c| &c.interactions)
                    .map(pi2_cost::interaction_effort)
                    .sum::<f64>()
        };
        assert!(effort(&pi2) < effort(&hex), "pi2 {} vs hex {}", effort(&pi2), effort(&hex));
        assert_eq!(pi2.manual_steps, 0);
        assert!(hex.manual_steps > 0);
    }
}
