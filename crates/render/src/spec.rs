//! Vega-Lite-style JSON specs for generated interfaces — the serialization
//! a browser front end (like the original Jupyter extension) would consume.

use pi2_core::ChartUpdate;
use pi2_interface::{
    Channel, Chart, Element, FieldType, Interface, Layout, VizInteraction, Widget, WidgetKind,
};
use serde_json::{json, Value as Json};

/// The JSON spec of a whole interface, optionally with inline data.
///
/// Deprecated: use [`crate::SpecRenderer`] through the
/// [`pi2_core::prelude::Renderer`] trait.
#[deprecated(since = "0.2.0", note = "use SpecRenderer via the pi2_core::prelude::Renderer trait")]
pub fn interface_spec(interface: &Interface, updates: &[ChartUpdate]) -> Json {
    interface_spec_impl(interface, updates)
}

pub(crate) fn interface_spec_impl(interface: &Interface, updates: &[ChartUpdate]) -> Json {
    json!({
        "$schema": "pi2-interface/v1",
        "screen": { "width": interface.screen.width, "height": interface.screen.height },
        "charts": interface.charts.iter().map(|c| {
            let data = updates.iter().find(|u| u.chart == c.id);
            chart_spec_impl(c, data)
        }).collect::<Vec<_>>(),
        "widgets": interface.widgets.iter().map(widget_spec).collect::<Vec<_>>(),
        "layout": layout_spec(&interface.layout),
    })
}

fn field_type_name(t: FieldType) -> &'static str {
    match t {
        FieldType::Quantitative => "quantitative",
        FieldType::Nominal => "nominal",
        FieldType::Ordinal => "ordinal",
        FieldType::Temporal => "temporal",
    }
}

/// The spec of one chart, with inline data when an update is provided.
///
/// Deprecated: use [`crate::SpecRenderer::chart`].
#[deprecated(since = "0.2.0", note = "use SpecRenderer::chart")]
pub fn chart_spec(chart: &Chart, update: Option<&ChartUpdate>) -> Json {
    chart_spec_impl(chart, update)
}

pub(crate) fn chart_spec_impl(chart: &Chart, update: Option<&ChartUpdate>) -> Json {
    let mut encoding = serde_json::Map::new();
    for enc in &chart.encodings {
        let channel = match enc.channel {
            Channel::X => "x",
            Channel::Y => "y",
            Channel::Color => "color",
            Channel::Size => "size",
            Channel::Detail => "detail",
        };
        encoding.insert(
            channel.to_string(),
            json!({ "field": enc.field, "type": field_type_name(enc.field_type) }),
        );
    }
    let mark = match chart.mark {
        pi2_interface::Mark::Bar => "bar",
        pi2_interface::Mark::Line => "line",
        pi2_interface::Mark::Area => "area",
        pi2_interface::Mark::Scatter => "point",
        pi2_interface::Mark::Table => "table",
        pi2_interface::Mark::Heatmap => "rect",
    };
    let mut spec = json!({
        "name": chart.name,
        "title": chart.title,
        "mark": mark,
        "encoding": encoding,
        "interactions": chart.interactions.iter().map(interaction_spec).collect::<Vec<_>>(),
    });
    if let Some(u) = update {
        let columns: Vec<&str> = u.result.schema.fields.iter().map(|f| f.name.as_str()).collect();
        let rows: Vec<Json> = u
            .result
            .rows
            .iter()
            .map(|row| {
                let obj: serde_json::Map<String, Json> = columns
                    .iter()
                    .zip(row)
                    .map(|(c, v)| ((*c).to_string(), value_json(v)))
                    .collect();
                Json::Object(obj)
            })
            .collect();
        spec["data"] = json!({ "values": rows });
        spec["query"] = json!(u.query.to_string());
    }
    spec
}

fn value_json(v: &pi2_engine::Value) -> Json {
    match v {
        pi2_engine::Value::Null => Json::Null,
        pi2_engine::Value::Bool(b) => json!(b),
        pi2_engine::Value::Int(i) => json!(i),
        pi2_engine::Value::Float(f) => json!(f),
        pi2_engine::Value::Str(s) => json!(s),
        pi2_engine::Value::Date(d) => json!(d.to_string()),
    }
}

fn interaction_spec(i: &VizInteraction) -> Json {
    match i {
        VizInteraction::BrushX { field, low, high } => json!({
            "type": "brush-x",
            "field": field,
            "binds": [{ "tree": low.tree, "node": low.node }, { "tree": high.tree, "node": high.node }],
        }),
        VizInteraction::PanZoom { x, y, x_field, y_field } => json!({
            "type": "pan-zoom",
            "x_field": x_field,
            "y_field": y_field,
            "binds_x": x.map(|(a, b)| json!([{ "tree": a.tree, "node": a.node }, { "tree": b.tree, "node": b.node }])),
            "binds_y": y.map(|(a, b)| json!([{ "tree": a.tree, "node": a.node }, { "tree": b.tree, "node": b.node }])),
        }),
        VizInteraction::ClickBind { field, target } => json!({
            "type": "click",
            "field": field,
            "binds": [{ "tree": target.tree, "node": target.node }],
        }),
    }
}

fn widget_spec(w: &Widget) -> Json {
    let (kind, extra) = match &w.kind {
        WidgetKind::Radio { options } => ("radio", json!({ "options": options })),
        WidgetKind::ButtonGroup { options } => ("button-group", json!({ "options": options })),
        WidgetKind::Dropdown { options } => ("dropdown", json!({ "options": options })),
        WidgetKind::Toggle => ("toggle", json!({})),
        WidgetKind::Slider { min, max, step, temporal } => {
            ("slider", json!({ "min": min, "max": max, "step": step, "temporal": temporal }))
        }
        WidgetKind::RangeSlider { min, max, step, temporal } => {
            ("range-slider", json!({ "min": min, "max": max, "step": step, "temporal": temporal }))
        }
        WidgetKind::Tabs { options } => ("tabs", json!({ "options": options })),
        WidgetKind::MultiSelect { options } => ("multi-select", json!({ "options": options })),
        WidgetKind::TextInput => ("text-input", json!({})),
    };
    json!({
        "id": w.id,
        "label": w.label,
        "kind": kind,
        "config": extra,
        "binds": w.targets.iter().map(|t| json!({ "tree": t.tree, "node": t.node })).collect::<Vec<_>>(),
    })
}

fn layout_spec(l: &Layout) -> Json {
    match l {
        Layout::Leaf(Element::Chart(id)) => json!({ "chart": id }),
        Layout::Leaf(Element::Widget(id)) => json!({ "widget": id }),
        Layout::Horizontal(xs) => {
            json!({ "hconcat": xs.iter().map(layout_spec).collect::<Vec<_>>() })
        }
        Layout::Vertical(xs) => {
            json!({ "vconcat": xs.iter().map(layout_spec).collect::<Vec<_>>() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_core::{Pi2, SearchStrategy};

    #[test]
    fn spec_roundtrips_through_json() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        let session = pi2.session(&g);
        let updates = session.refresh_all().unwrap();
        let spec = interface_spec_impl(&g.interface, &updates);
        let text = serde_json::to_string_pretty(&spec).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed["charts"].as_array().unwrap().len(), g.interface.charts.len());
        assert!(parsed["charts"][0]["data"]["values"].as_array().is_some());
        assert!(parsed["charts"][0]["query"].as_str().unwrap().contains("SELECT"));
    }

    #[test]
    fn interaction_specs_name_their_bindings() {
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 200, seed: 1 });
        let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
        let queries: Vec<String> =
            pi2_datasets::sdss::demo_queries().iter().map(|q| q.to_string()).collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let g = pi2.generate_sql(&refs).unwrap();
        let spec = interface_spec_impl(&g.interface, &[]);
        let interactions = spec["charts"][0]["interactions"].as_array().unwrap();
        assert!(!interactions.is_empty());
        assert_eq!(interactions[0]["type"], "pan-zoom");
    }
}
