#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pi2-render
//!
//! Rendering backends for generated interfaces. The original PI2 renders
//! interactive D3-style charts in the browser; this reproduction separates
//! *interaction semantics* (the headless [`pi2_core::InterfaceSession`])
//! from *drawing*. Drawing is a typed surface: the retained scene graph
//! ([`SceneGraph`], re-exported from `pi2_core::scene`) plus the
//! [`Renderer`] trait with three backends:
//!
//! * [`AsciiRenderer`] ([`ascii`]) — terminal rendering of charts, widgets,
//!   and layout, used by the runnable examples and the figure-regeneration
//!   binaries;
//! * [`SpecRenderer`] ([`spec`]) — a Vega-Lite-style JSON description of
//!   the interface, the shape a browser front end would consume;
//! * [`HtmlRenderer`] ([`html`]) — a standalone interactive HTML export
//!   that embeds a scene snapshot and applies `render_delta` patch frames.
//!
//! ```
//! use pi2_core::prelude::Renderer as _;
//! use pi2_core::{Pi2, SearchStrategy};
//!
//! let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
//!     .strategy(SearchStrategy::FullMerge)
//!     .build();
//! let g = pi2.generate_sql(&["SELECT a, count(*) FROM t GROUP BY a"]).unwrap();
//! let session = pi2.session(&g);
//! let text = pi2_render::AsciiRenderer.render_live(&session).unwrap();
//! assert!(text.contains("G1"));
//! ```

pub mod ascii;
pub mod html;
pub mod scene;
pub mod spec;

pub use ascii::{render_chart, render_widget, render_widget_with_state};
#[allow(deprecated)]
pub use ascii::{render_interface, render_session};
pub use html::export_html;
pub use scene::{
    AsciiRenderer, HtmlRenderer, Renderer, SceneCatchup, SceneDelta, SceneGraph, SceneNodeId,
    SceneState, SpecRenderer,
};
#[allow(deprecated)]
pub use spec::interface_spec;
