#![warn(missing_docs)]

//! # pi2-render
//!
//! Rendering backends for generated interfaces. The original PI2 renders
//! interactive D3-style charts in the browser; this reproduction separates
//! *interaction semantics* (the headless [`pi2_core::InterfaceSession`])
//! from *drawing*, and provides three drawing backends:
//!
//! * [`ascii`] — terminal rendering of charts, widgets, and layout, used by
//!   the runnable examples and the figure-regeneration binaries;
//! * [`spec`] — a Vega-Lite-style JSON description of the interface, the
//!   shape a browser front end would consume;
//! * [`html`] — a standalone static HTML export with inline SVG charts and
//!   the archived query log.
//!
//! ```
//! use pi2_core::{Pi2, SearchStrategy};
//!
//! let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
//!     .strategy(SearchStrategy::FullMerge)
//!     .build();
//! let g = pi2.generate_sql(&["SELECT a, count(*) FROM t GROUP BY a"]).unwrap();
//! let session = pi2.session(&g);
//! let text = pi2_render::render_session(&session).unwrap();
//! assert!(text.contains("G1"));
//! ```

pub mod ascii;
pub mod html;
pub mod spec;

pub use ascii::{
    render_chart, render_interface, render_session, render_widget, render_widget_with_state,
};
pub use html::export_html;
pub use spec::interface_spec;
