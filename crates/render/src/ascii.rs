//! ASCII rendering of charts, widgets, and layouts for the terminal.

use pi2_core::ChartUpdate;
use pi2_engine::{ResultSet, Value};
use pi2_interface::{Channel, Chart, Element, Interface, Layout, Mark, Widget, WidgetKind};

/// Default plot area for one chart, in characters.
const PLOT_W: usize = 56;
const PLOT_H: usize = 12;
/// Maximum bars / table rows shown.
const MAX_ROWS: usize = 16;

/// Render a whole interface with current chart data.
///
/// Deprecated: use [`crate::AsciiRenderer`] through the
/// [`pi2_core::prelude::Renderer`] trait.
#[deprecated(since = "0.2.0", note = "use AsciiRenderer via the pi2_core::prelude::Renderer trait")]
pub fn render_interface(interface: &Interface, updates: &[ChartUpdate]) -> String {
    render_interface_impl(interface, updates)
}

pub(crate) fn render_interface_impl(interface: &Interface, updates: &[ChartUpdate]) -> String {
    let mut blocks = render_layout(&interface.layout, interface, updates);
    if blocks.is_empty() {
        blocks = vec!["(empty interface)".to_string()];
    }
    blocks.join("\n")
}

/// Render a live session: charts with current data, widgets with their
/// current positions (selected radio option, toggle state, slider value).
///
/// Deprecated: use [`crate::AsciiRenderer`]'s
/// [`render_live`](pi2_core::scene::Renderer::render_live).
#[deprecated(
    since = "0.2.0",
    note = "use AsciiRenderer::render_live via the pi2_core::prelude::Renderer trait"
)]
pub fn render_session(
    session: &pi2_core::InterfaceSession,
) -> Result<String, pi2_core::SessionError> {
    render_session_impl(session)
}

pub(crate) fn render_session_impl(
    session: &pi2_core::InterfaceSession,
) -> Result<String, pi2_core::SessionError> {
    let updates = session.refresh_all()?;
    let states: std::collections::HashMap<usize, pi2_core::WidgetState> =
        session.widget_states().into_iter().collect();
    let interface = session.interface();
    let mut out = String::new();
    for block in render_layout_with_states(&interface.layout, interface, &updates, &states) {
        out.push_str(&block);
        out.push('\n');
    }
    Ok(out)
}

fn render_layout_with_states(
    layout: &Layout,
    interface: &Interface,
    updates: &[ChartUpdate],
    states: &std::collections::HashMap<usize, pi2_core::WidgetState>,
) -> Vec<String> {
    match layout {
        Layout::Leaf(Element::Widget(id)) => interface
            .widgets
            .iter()
            .find(|w| w.id == *id)
            .map(|w| vec![render_widget_with_state(w, states.get(id))])
            .unwrap_or_else(|| vec![format!("[missing widget {id}]")]),
        Layout::Vertical(items) => items
            .iter()
            .flat_map(|i| render_layout_with_states(i, interface, updates, states))
            .collect(),
        Layout::Horizontal(items) => {
            let columns: Vec<Vec<String>> = items
                .iter()
                .map(|i| render_layout_with_states(i, interface, updates, states))
                .collect();
            vec![hstack(&columns)]
        }
        leaf => render_layout(leaf, interface, updates),
    }
}

/// Render one widget showing its live state.
pub fn render_widget_with_state(widget: &Widget, state: Option<&pi2_core::WidgetState>) -> String {
    use pi2_core::WidgetState as S;
    match (&widget.kind, state) {
        (WidgetKind::Radio { options }, Some(S::Picked(sel))) => {
            let opts: Vec<String> = options
                .iter()
                .enumerate()
                .map(|(i, o)| format!("({}) {o}", if i == *sel { "•" } else { " " }))
                .collect();
            format!("{}: {}", widget.label, opts.join("  "))
        }
        (
            WidgetKind::ButtonGroup { options } | WidgetKind::Tabs { options },
            Some(S::Picked(sel)),
        ) => {
            let opts: Vec<String> = options
                .iter()
                .enumerate()
                .map(|(i, o)| if i == *sel { format!("[▸{o}]") } else { format!("[{o}]") })
                .collect();
            format!("{}: {}", widget.label, opts.join(" "))
        }
        (WidgetKind::Dropdown { options }, Some(S::Picked(sel))) => {
            format!(
                "{}: ▾ {} ({} options)",
                widget.label,
                options.get(*sel).cloned().unwrap_or_default(),
                options.len()
            )
        }
        (WidgetKind::Toggle, Some(S::Toggled(on))) => {
            format!("[{}] {}", if *on { "x" } else { " " }, widget.label)
        }
        (WidgetKind::Slider { min, max, temporal, .. }, Some(S::Value(v))) => {
            format!(
                "{}: {} ◀─ {} ─▶ {}",
                widget.label,
                fmt_axis(*min, *temporal),
                v,
                fmt_axis(*max, *temporal)
            )
        }
        (WidgetKind::RangeSlider { min, max, temporal, .. }, Some(S::Range(lo, hi))) => {
            format!(
                "{}: {} ◀─ {}══{} ─▶ {}",
                widget.label,
                fmt_axis(*min, *temporal),
                lo,
                hi,
                fmt_axis(*max, *temporal)
            )
        }
        (WidgetKind::MultiSelect { options }, Some(S::Flags(flags))) => {
            let opts: Vec<String> = options
                .iter()
                .zip(flags)
                .map(|(o, f)| format!("[{}] {o}", if *f { "x" } else { " " }))
                .collect();
            format!("{}: {}", widget.label, opts.join("  "))
        }
        _ => render_widget(widget),
    }
}

fn render_layout(layout: &Layout, interface: &Interface, updates: &[ChartUpdate]) -> Vec<String> {
    match layout {
        Layout::Leaf(Element::Chart(id)) => {
            let chart = interface.charts.iter().find(|c| c.id == *id);
            let update = updates.iter().find(|u| u.chart == *id);
            match (chart, update) {
                (Some(c), Some(u)) => vec![render_chart(c, &u.result)],
                (Some(c), None) => vec![format!("[{} {} — no data]", c.name, c.title)],
                _ => vec![format!("[missing chart {id}]")],
            }
        }
        Layout::Leaf(Element::Widget(id)) => interface
            .widgets
            .iter()
            .find(|w| w.id == *id)
            .map(|w| vec![render_widget(w)])
            .unwrap_or_else(|| vec![format!("[missing widget {id}]")]),
        Layout::Vertical(items) => {
            items.iter().flat_map(|i| render_layout(i, interface, updates)).collect()
        }
        Layout::Horizontal(items) => {
            let columns: Vec<Vec<String>> =
                items.iter().map(|i| render_layout(i, interface, updates)).collect();
            vec![hstack(&columns)]
        }
    }
}

/// Place rendered blocks side by side.
fn hstack(columns: &[Vec<String>]) -> String {
    let col_text: Vec<Vec<&str>> =
        columns.iter().map(|c| c.iter().flat_map(|b| b.lines()).collect::<Vec<&str>>()).collect();
    let widths: Vec<usize> = col_text
        .iter()
        .map(|lines| lines.iter().map(|l| l.chars().count()).max().unwrap_or(0))
        .collect();
    let rows = col_text.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = String::new();
    for r in 0..rows {
        for (c, lines) in col_text.iter().enumerate() {
            let line = lines.get(r).copied().unwrap_or("");
            out.push_str(line);
            let pad = widths[c].saturating_sub(line.chars().count()) + 2;
            out.push_str(&" ".repeat(pad));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Render one widget with its control affordance.
pub fn render_widget(widget: &Widget) -> String {
    match &widget.kind {
        WidgetKind::Radio { options } => {
            let opts: Vec<String> = options
                .iter()
                .enumerate()
                .map(|(i, o)| format!("({}) {o}", if i == 0 { "•" } else { " " }))
                .collect();
            format!("{}: {}", widget.label, opts.join("  "))
        }
        WidgetKind::ButtonGroup { options } => {
            let opts: Vec<String> = options.iter().map(|o| format!("[{o}]")).collect();
            format!("{}: {}", widget.label, opts.join(" "))
        }
        WidgetKind::Dropdown { options } => {
            format!(
                "{}: ▾ {} ({} options)",
                widget.label,
                options.first().cloned().unwrap_or_default(),
                options.len()
            )
        }
        WidgetKind::Toggle => format!("[x] {}", widget.label),
        WidgetKind::Slider { min, max, temporal, .. } => {
            format!(
                "{}: {} ◀──●──▶ {}",
                widget.label,
                fmt_axis(*min, *temporal),
                fmt_axis(*max, *temporal)
            )
        }
        WidgetKind::RangeSlider { min, max, temporal, .. } => {
            format!(
                "{}: {} ◀─●══●─▶ {}",
                widget.label,
                fmt_axis(*min, *temporal),
                fmt_axis(*max, *temporal)
            )
        }
        WidgetKind::Tabs { options } => {
            let opts: Vec<String> = options.iter().map(|o| format!("⟨{o}⟩")).collect();
            format!("tabs: {}", opts.join(" "))
        }
        WidgetKind::MultiSelect { options } => {
            let opts: Vec<String> = options.iter().map(|o| format!("[x] {o}")).collect();
            format!("{}: {}", widget.label, opts.join("  "))
        }
        WidgetKind::TextInput => format!("{}: [________]", widget.label),
    }
}

fn fmt_axis(v: f64, temporal: bool) -> String {
    if temporal {
        pi2_sql::Date(v.round() as i32).to_string()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else {
        format!("{v:.4}").trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Render one chart with its current data.
pub fn render_chart(chart: &Chart, result: &ResultSet) -> String {
    let mut out = String::new();
    out.push_str(&format!("┌─ {} · {} ({:?})\n", chart.name, chart.title, chart.mark));
    for i in &chart.interactions {
        out.push_str(&format!("│  ⚡ {}\n", i.kind_name()));
    }
    let body = match chart.mark {
        Mark::Bar => render_bar(chart, result),
        Mark::Line | Mark::Area | Mark::Scatter => render_grid(chart, result),
        Mark::Heatmap => render_heatmap(chart, result),
        Mark::Table => truncate_table(result),
    };
    for line in body.lines() {
        out.push_str("│ ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("└─\n");
    out
}

fn field_index(result: &ResultSet, chart: &Chart, channel: Channel) -> Option<usize> {
    let enc = chart.encoding(channel)?;
    result.schema.index_of(&enc.field)
}

fn truncate_table(result: &ResultSet) -> String {
    let mut capped = result.clone();
    let total = capped.rows.len();
    capped.rows.truncate(MAX_ROWS);
    let mut s = String::new();
    for line in capped.to_ascii_table().lines() {
        s.push_str(&clip_line(line, PLOT_W));
        s.push('\n');
    }
    if total > MAX_ROWS {
        s.push_str(&format!("… {} more rows\n", total - MAX_ROWS));
    }
    s
}

/// Clip one rendered line to `width` glyphs, appending `…` when anything
/// was cut. Counting and cutting happen on `char` boundaries — a byte
/// index would split multi-byte glyphs (`─`, `█`, accented cell text) and
/// either panic or emit broken UTF-8 mid-cell on narrow terminals.
fn clip_line(line: &str, width: usize) -> String {
    let mut iter = line.char_indices();
    match iter.nth(width.saturating_sub(1)) {
        // Fewer than `width` glyphs, or exactly `width`: keep as is.
        None => line.to_string(),
        Some(_) if iter.next().is_none() => line.to_string(),
        Some((last, _)) => {
            let mut s = line[..last].to_string();
            s.push('…');
            s
        }
    }
}

fn render_bar(chart: &Chart, result: &ResultSet) -> String {
    let (Some(xi), Some(yi)) =
        (field_index(result, chart, Channel::X), field_index(result, chart, Channel::Y))
    else {
        return truncate_table(result);
    };
    let color_i = field_index(result, chart, Channel::Color);

    // Aggregate y per x (summing duplicates across color series for the
    // bar length; series count shown in the label).
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut series: std::collections::HashSet<String> = std::collections::HashSet::new();
    for row in &result.rows {
        let key = row[xi].to_string();
        if !totals.contains_key(&key) {
            order.push(key.clone());
        }
        *totals.entry(key).or_insert(0.0) += row[yi].as_f64().unwrap_or(0.0);
        if let Some(ci) = color_i {
            series.insert(row[ci].to_string());
        }
    }
    let max = totals.values().cloned().fold(0.0, f64::max).max(1e-9);
    let label_w = order.iter().map(|k| k.chars().count()).max().unwrap_or(1).min(14);
    let mut out = String::new();
    for key in order.iter().take(MAX_ROWS) {
        let v = totals[key];
        let bar_len = ((v / max) * (PLOT_W - label_w - 10) as f64).round().max(0.0) as usize;
        let mut label: String = key.chars().take(label_w).collect();
        while label.chars().count() < label_w {
            label.push(' ');
        }
        out.push_str(&format!("{label} ┤{} {}\n", "█".repeat(bar_len), human(v)));
    }
    if order.len() > MAX_ROWS {
        out.push_str(&format!("… {} more bars\n", order.len() - MAX_ROWS));
    }
    if !series.is_empty() {
        out.push_str(&format!(
            "({} series by {})\n",
            series.len(),
            chart.encoding(Channel::Color).map(|e| e.field.as_str()).unwrap_or("?")
        ));
    }
    out
}

fn render_grid(chart: &Chart, result: &ResultSet) -> String {
    let (Some(xi), Some(yi)) =
        (field_index(result, chart, Channel::X), field_index(result, chart, Channel::Y))
    else {
        return truncate_table(result);
    };
    let color_i = field_index(result, chart, Channel::Color);
    let pts: Vec<(f64, f64, Option<String>)> = result
        .rows
        .iter()
        .filter_map(|row| {
            Some((row[xi].as_f64()?, row[yi].as_f64()?, color_i.map(|ci| row[ci].to_string())))
        })
        .collect();
    if pts.is_empty() {
        return "(no data)\n".to_string();
    }
    let (xmin, xmax) = min_max(pts.iter().map(|p| p.0));
    let (ymin, ymax) = min_max(pts.iter().map(|p| p.1));
    let glyphs = ['•', '+', 'x', 'o', '*', '#', '@', '~'];
    let mut series: Vec<String> = Vec::new();
    let mut grid = vec![vec![' '; PLOT_W]; PLOT_H];
    for (x, y, s) in &pts {
        let cx = scale(*x, xmin, xmax, PLOT_W - 1);
        let cy = PLOT_H - 1 - scale(*y, ymin, ymax, PLOT_H - 1);
        let glyph = match s {
            Some(name) => {
                let idx = series.iter().position(|n| n == name).unwrap_or_else(|| {
                    series.push(name.clone());
                    series.len() - 1
                });
                glyphs[idx % glyphs.len()]
            }
            None => '•',
        };
        grid[cy][cx] = glyph;
    }
    let temporal_x = matches!(result.schema.fields[xi].data_type, pi2_engine::DataType::Date);
    let mut out = String::new();
    out.push_str(&format!("{:>10} ┐\n", human(ymax)));
    for row in &grid {
        out.push_str("           │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} └{}\n", human(ymin), "─".repeat(PLOT_W)));
    out.push_str(&format!(
        "            {}{}{}\n",
        fmt_axis(xmin, temporal_x),
        " ".repeat(
            PLOT_W.saturating_sub(
                fmt_axis(xmin, temporal_x).len() + fmt_axis(xmax, temporal_x).len()
            )
        ),
        fmt_axis(xmax, temporal_x)
    ));
    if !series.is_empty() {
        let legend: Vec<String> = series
            .iter()
            .enumerate()
            .take(8)
            .map(|(i, s)| format!("{} {s}", glyphs[i % glyphs.len()]))
            .collect();
        out.push_str(&format!("legend: {}\n", legend.join("  ")));
    }
    out
}

fn render_heatmap(chart: &Chart, result: &ResultSet) -> String {
    let (Some(xi), Some(yi)) =
        (field_index(result, chart, Channel::X), field_index(result, chart, Channel::Y))
    else {
        return truncate_table(result);
    };
    let Some(ci) = field_index(result, chart, Channel::Color) else {
        return truncate_table(result);
    };
    let mut xs: Vec<String> = Vec::new();
    let mut ys: Vec<String> = Vec::new();
    let mut cells: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    for row in &result.rows {
        let xk = row[xi].to_string();
        let yk = row[yi].to_string();
        let x = xs.iter().position(|v| *v == xk).unwrap_or_else(|| {
            xs.push(xk.clone());
            xs.len() - 1
        });
        let y = ys.iter().position(|v| *v == yk).unwrap_or_else(|| {
            ys.push(yk.clone());
            ys.len() - 1
        });
        *cells.entry((x, y)).or_insert(0.0) += row[ci].as_f64().unwrap_or(0.0);
    }
    let max = cells.values().cloned().fold(0.0, f64::max).max(1e-9);
    let shades = [' ', '░', '▒', '▓', '█'];
    let label_w = ys.iter().map(|s| s.chars().count()).max().unwrap_or(1).min(12);
    let mut out = String::new();
    for (yidx, yk) in ys.iter().enumerate().take(MAX_ROWS) {
        let mut label: String = yk.chars().take(label_w).collect();
        while label.chars().count() < label_w {
            label.push(' ');
        }
        out.push_str(&format!("{label} "));
        for xidx in 0..xs.len().min(PLOT_W) {
            let v = cells.get(&(xidx, yidx)).copied().unwrap_or(0.0);
            let shade = shades[((v / max) * (shades.len() - 1) as f64).round() as usize];
            out.push(shade);
        }
        out.push('\n');
    }
    out.push_str(&format!("({} × {} cells, darker = larger)\n", xs.len(), ys.len()));
    out
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() {
        (0.0, 1.0)
    } else if (max - min).abs() < 1e-12 {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

fn scale(v: f64, min: f64, max: f64, steps: usize) -> usize {
    (((v - min) / (max - min)) * steps as f64).round().clamp(0.0, steps as f64) as usize
}

fn human(v: f64) -> String {
    if v.abs() >= 1_000_000.0 {
        format!("{:.1}M", v / 1_000_000.0)
    } else if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1_000.0)
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Convenience: format one value (used by example binaries).
pub fn value_str(v: &Value) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_core::{Pi2, SearchStrategy};

    #[test]
    fn clip_line_cuts_on_glyph_boundaries() {
        // Narrower than the limit: untouched.
        assert_eq!(clip_line("ab", 5), "ab");
        // Exactly the limit (in glyphs, not bytes): untouched, even when
        // every glyph is multi-byte.
        assert_eq!(clip_line("─────", 5), "─────");
        // One over: clipped to width-1 glyphs plus the ellipsis, so the
        // result still fits in `width` terminal cells.
        assert_eq!(clip_line("──────", 5), "────…");
        assert_eq!(clip_line("abcdef", 5), "abcd…");
        // Mixed ASCII/multi-byte cell text must not split mid-glyph.
        let clipped = clip_line("naïve café row ──", 7);
        assert_eq!(clipped, "naïve …");
        assert_eq!(clipped.chars().count(), 7);
        // Degenerate widths stay valid UTF-8 and within budget.
        assert_eq!(clip_line("abc", 1), "…");
        assert_eq!(clip_line("", 0), "");
        assert!(clip_line("██████", 3).chars().count() <= 3);
    }

    #[test]
    fn wide_tables_clip_without_splitting_cells_glyphs() {
        use pi2_engine::{DataType, Field, Schema, Value};
        // A table whose ASCII rendering is far wider than PLOT_W, with
        // multi-byte text in the wide column.
        let schema = Schema {
            fields: vec![
                Field { name: "k".into(), data_type: DataType::Int },
                Field { name: "décor".into(), data_type: DataType::Str },
            ],
        };
        let rows = (0..3).map(|i| vec![Value::Int(i), Value::Str("é".repeat(120))]).collect();
        let result = ResultSet { schema, rows };
        let text = truncate_table(&result);
        for line in text.lines() {
            assert!(
                line.chars().count() <= PLOT_W,
                "line wider than plot: {} glyphs",
                line.chars().count()
            );
            assert!(line.is_char_boundary(line.len()));
        }
        // Clipped body lines end in the ellipsis rather than a torn cell.
        assert!(text.lines().any(|l| l.ends_with('…')), "{text}");
    }

    #[test]
    fn renders_toy_interface_end_to_end() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        let session = pi2.session(&g);
        let updates = session.refresh_all().unwrap();
        let text = render_interface_impl(&g.interface, &updates);
        assert!(text.contains("G1"), "{text}");
        assert!(text.contains('┤') || text.contains('│'), "{text}");
    }

    #[test]
    fn renders_line_chart_with_axes() {
        let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
            state_limit: Some(4),
            ..Default::default()
        });
        let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
        let g = pi2
            .generate_sql(&[
                "SELECT date, sum(cases) AS cases FROM covid GROUP BY date ORDER BY date",
            ])
            .unwrap();
        let session = pi2.session(&g);
        let updates = session.refresh_all().unwrap();
        let text = render_interface_impl(&g.interface, &updates);
        assert!(text.contains("2021-"), "{text}");
    }

    #[test]
    fn renders_heatmap() {
        let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
            state_limit: Some(5),
            ..Default::default()
        });
        let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
        let g = pi2
            .generate_sql(&["SELECT r.region, c.state, sum(c.cases) AS cases FROM covid c \
                 JOIN regions r ON c.state = r.state GROUP BY r.region, c.state"])
            .unwrap();
        let session = pi2.session(&g);
        let updates = session.refresh_all().unwrap();
        let text = render_interface_impl(&g.interface, &updates);
        assert!(text.contains("Heatmap"), "{text}");
        assert!(text.contains("darker = larger"), "{text}");
    }

    #[test]
    fn widget_rendering_covers_all_kinds() {
        use pi2_interface::{Target, Widget};
        let t = Target { tree: 0, node: 1 };
        let widgets = [
            WidgetKind::Radio { options: vec!["a".into(), "b".into()] },
            WidgetKind::ButtonGroup { options: vec!["South".into(), "Northeast".into()] },
            WidgetKind::Dropdown { options: vec!["x".into()] },
            WidgetKind::Toggle,
            WidgetKind::Slider { min: 0.0, max: 10.0, step: 1.0, temporal: false },
            WidgetKind::RangeSlider { min: 0.0, max: 10.0, step: 1.0, temporal: true },
            WidgetKind::Tabs { options: vec!["Q1".into(), "Q2".into()] },
            WidgetKind::TextInput,
        ];
        for kind in widgets {
            let w = Widget { id: 0, label: "w".into(), kind, targets: vec![t] };
            let s = render_widget(&w);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn session_rendering_shows_live_state() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
                "SELECT a, count(*) FROM t GROUP BY a",
            ])
            .unwrap();
        let mut session = pi2.session(&g);
        let before = render_session_impl(&session).unwrap();
        // Flip the toggle; the rendering must change state.
        if let Some(toggle) =
            g.interface.widgets.iter().find(|w| matches!(w.kind, WidgetKind::Toggle))
        {
            session
                .dispatch(pi2_core::Event::SetWidget {
                    widget: toggle.id,
                    value: pi2_core::WidgetValue::Bool(false),
                })
                .unwrap();
            let after = render_session_impl(&session).unwrap();
            assert_ne!(before, after);
            assert!(after.contains("[ ]"), "{after}");
        }
    }

    #[test]
    fn hstack_aligns_columns() {
        let s = hstack(&[vec!["aa\nbb".to_string()], vec!["c".to_string()]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("aa"));
        assert!(lines[0].contains('c'));
    }
}
