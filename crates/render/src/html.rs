//! Standalone static HTML export with inline SVG charts.
//!
//! The export freezes the interface at its current bindings: charts render
//! as SVG, widgets render as (inert) HTML controls annotated with what they
//! would control, and the archived query log appears in a collapsible
//! section — mirroring the *Generated Interfaces* panel of paper Figure 7.

use pi2_core::ChartUpdate;
use pi2_engine::ResultSet;
use pi2_interface::{Channel, Chart, Element, Interface, Layout, Mark, Widget, WidgetKind};
use std::fmt::Write as _;

const SVG_W: f64 = 420.0;
const SVG_H: f64 = 260.0;
const PAD: f64 = 36.0;

/// Export an interface as a standalone HTML document.
pub fn export_html(
    title: &str,
    interface: &Interface,
    updates: &[ChartUpdate],
    query_log: &[String],
) -> String {
    let mut body = String::new();
    render_layout(&interface.layout, interface, updates, &mut body);

    let mut log = String::new();
    if !query_log.is_empty() {
        log.push_str("<details class=\"qlog\"><summary>Query Log</summary><ol>");
        for q in query_log {
            // Pretty-print entries that parse; leave free text as is.
            let pretty = pi2_sql::parse_query(q)
                .map(|p| pi2_sql::format_query(&p, 2))
                .unwrap_or_else(|_| q.clone());
            let _ = write!(log, "<li><pre>{}</pre></li>", escape(&pretty));
        }
        log.push_str("</ol></details>");
    }

    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>{t}</title>\n<style>\n\
         body{{font-family:sans-serif;margin:16px;background:#fafafa}}\n\
         .row{{display:flex;gap:12px;align-items:flex-start;flex-wrap:wrap}}\n\
         .col{{display:flex;flex-direction:column;gap:12px}}\n\
         .chart,.widget{{background:#fff;border:1px solid #ddd;border-radius:6px;padding:8px}}\n\
         .widget{{font-size:13px;color:#333}}\n\
         .qlog{{margin-top:16px;font-size:13px}}\n\
         h3{{margin:2px 0 6px 0;font-size:14px}} .badge{{font-size:11px;color:#06c}}\n\
         table{{border-collapse:collapse;font-size:12px}} td,th{{border:1px solid #ccc;padding:2px 6px}}\n\
         </style></head><body><h2>{t}</h2>\n{body}\n{log}\n</body></html>",
        t = escape(title),
        body = body,
        log = log
    )
}

fn render_layout(
    layout: &Layout,
    interface: &Interface,
    updates: &[ChartUpdate],
    out: &mut String,
) {
    match layout {
        Layout::Leaf(Element::Chart(id)) => {
            if let Some(c) = interface.charts.iter().find(|c| c.id == *id) {
                let data = updates.iter().find(|u| u.chart == *id);
                out.push_str("<div class=\"chart\">");
                let _ = write!(out, "<h3>{} · {}", escape(&c.name), escape(&c.title));
                for i in &c.interactions {
                    let _ = write!(out, " <span class=\"badge\">⚡{}</span>", i.kind_name());
                }
                out.push_str("</h3>");
                match data {
                    Some(u) => out.push_str(&chart_svg(c, &u.result)),
                    None => out.push_str("<em>no data</em>"),
                }
                out.push_str("</div>");
            }
        }
        Layout::Leaf(Element::Widget(id)) => {
            if let Some(w) = interface.widgets.iter().find(|w| w.id == *id) {
                out.push_str(&widget_html(w));
            }
        }
        Layout::Horizontal(xs) => {
            out.push_str("<div class=\"row\">");
            for x in xs {
                render_layout(x, interface, updates, out);
            }
            out.push_str("</div>");
        }
        Layout::Vertical(xs) => {
            out.push_str("<div class=\"col\">");
            for x in xs {
                render_layout(x, interface, updates, out);
            }
            out.push_str("</div>");
        }
    }
}

fn widget_html(w: &Widget) -> String {
    let control = match &w.kind {
        WidgetKind::Radio { options } => options
            .iter()
            .enumerate()
            .map(|(i, o)| {
                format!(
                    "<label><input type=\"radio\" disabled{}> {}</label>",
                    if i == 0 { " checked" } else { "" },
                    escape(o)
                )
            })
            .collect::<Vec<_>>()
            .join(" "),
        WidgetKind::ButtonGroup { options } => options
            .iter()
            .map(|o| format!("<button disabled>{}</button>", escape(o)))
            .collect::<Vec<_>>()
            .join(""),
        WidgetKind::Dropdown { options } => {
            let opts: String =
                options.iter().map(|o| format!("<option>{}</option>", escape(o))).collect();
            format!("<select disabled>{opts}</select>")
        }
        WidgetKind::Toggle => "<input type=\"checkbox\" checked disabled>".to_string(),
        WidgetKind::Slider { min, max, .. } => {
            format!("<input type=\"range\" min=\"{min}\" max=\"{max}\" disabled>")
        }
        WidgetKind::RangeSlider { min, max, .. } => format!(
            "<input type=\"range\" min=\"{min}\" max=\"{max}\" disabled> – <input type=\"range\" min=\"{min}\" max=\"{max}\" disabled>"
        ),
        WidgetKind::Tabs { options } => options
            .iter()
            .map(|o| format!("<button disabled>{}</button>", escape(o)))
            .collect::<Vec<_>>()
            .join(""),
        WidgetKind::MultiSelect { options } => options
            .iter()
            .map(|o| format!("<label><input type=\"checkbox\" checked disabled> {}</label>", escape(o)))
            .collect::<Vec<_>>()
            .join(" "),
        WidgetKind::TextInput => "<input type=\"text\" disabled>".to_string(),
    };
    format!("<div class=\"widget\"><strong>{}</strong> {control}</div>", escape(&w.label))
}

/// Render one chart's data as inline SVG.
fn chart_svg(chart: &Chart, result: &ResultSet) -> String {
    let xi = chart.encoding(Channel::X).and_then(|e| result.schema.index_of(&e.field));
    let yi = chart.encoding(Channel::Y).and_then(|e| result.schema.index_of(&e.field));
    if chart.mark == Mark::Table || xi.is_none() || yi.is_none() {
        return table_html(result);
    }
    let (xi, yi) = (xi.expect("checked"), yi.expect("checked"));
    let pts: Vec<(f64, f64)> =
        result.rows.iter().filter_map(|r| Some((r[xi].as_f64()?, r[yi].as_f64()?))).collect();
    if pts.is_empty() {
        return table_html(result);
    }
    let (xmin, xmax) = bounds(pts.iter().map(|p| p.0));
    let (ymin, ymax) = bounds(pts.iter().map(|p| p.1));
    let sx = |v: f64| PAD + (v - xmin) / (xmax - xmin) * (SVG_W - 2.0 * PAD);
    let sy = |v: f64| SVG_H - PAD - (v - ymin) / (ymax - ymin) * (SVG_H - 2.0 * PAD);

    let mut marks = String::new();
    match chart.mark {
        Mark::Line | Mark::Area => {
            let mut sorted = pts.clone();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let path: Vec<String> =
                sorted.iter().map(|(x, y)| format!("{:.1},{:.1}", sx(*x), sy(*y))).collect();
            let _ = write!(
                marks,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"#1f77b4\" stroke-width=\"1.5\"/>",
                path.join(" ")
            );
        }
        Mark::Scatter => {
            for (x, y) in &pts {
                let _ = write!(
                    marks,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2\" fill=\"#1f77b4\" fill-opacity=\"0.6\"/>",
                    sx(*x),
                    sy(*y)
                );
            }
        }
        _ => {
            // Bars (and heatmap fallback): one bar per x.
            let n = pts.len().max(1) as f64;
            let bw = ((SVG_W - 2.0 * PAD) / n * 0.8).max(1.0);
            for (x, y) in &pts {
                let _ = write!(
                    marks,
                    "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#1f77b4\"/>",
                    sx(*x) - bw / 2.0,
                    sy(*y),
                    bw,
                    (SVG_H - PAD - sy(*y)).max(0.0)
                );
            }
        }
    }
    let x_name = chart.encoding(Channel::X).map(|e| e.field.as_str()).unwrap_or("");
    let y_name = chart.encoding(Channel::Y).map(|e| e.field.as_str()).unwrap_or("");
    format!(
        "<svg width=\"{SVG_W}\" height=\"{SVG_H}\" viewBox=\"0 0 {SVG_W} {SVG_H}\">\
         <line x1=\"{PAD}\" y1=\"{y0}\" x2=\"{x1}\" y2=\"{y0}\" stroke=\"#999\"/>\
         <line x1=\"{PAD}\" y1=\"{PAD}\" x2=\"{PAD}\" y2=\"{y0}\" stroke=\"#999\"/>\
         {marks}\
         <text x=\"{xmid}\" y=\"{SVG_H}\" font-size=\"11\" text-anchor=\"middle\">{x_name}</text>\
         <text x=\"10\" y=\"{ymid}\" font-size=\"11\" transform=\"rotate(-90 10 {ymid})\" text-anchor=\"middle\">{y_name}</text>\
         </svg>",
        y0 = SVG_H - PAD,
        x1 = SVG_W - PAD,
        xmid = SVG_W / 2.0,
        ymid = SVG_H / 2.0,
        x_name = escape(x_name),
        y_name = escape(y_name),
    )
}

fn table_html(result: &ResultSet) -> String {
    let mut s = String::from("<table><tr>");
    for f in &result.schema.fields {
        let _ = write!(s, "<th>{}</th>", escape(&f.name));
    }
    s.push_str("</tr>");
    for row in result.rows.iter().take(20) {
        s.push_str("<tr>");
        for v in row {
            let _ = write!(s, "<td>{}</td>", escape(&v.to_string()));
        }
        s.push_str("</tr>");
    }
    s.push_str("</table>");
    if result.rows.len() > 20 {
        let _ = write!(s, "<em>… {} more rows</em>", result.rows.len() - 20);
    }
    s
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || (max - min).abs() < 1e-12 {
        (min - 0.5, min + 0.5)
    } else {
        (min, max)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_core::{Pi2, SearchStrategy};

    #[test]
    fn exports_valid_looking_html() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        let session = pi2.session(&g);
        let updates = session.refresh_all().unwrap();
        let log: Vec<String> = g.queries.iter().map(|q| q.to_string()).collect();
        let html = export_html("Toy", &g.interface, &updates, &log);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("Query Log"));
        assert!(html.contains("</html>"));
    }

    #[test]
    fn escapes_query_text() {
        let html = export_html(
            "x",
            &Interface {
                charts: vec![],
                widgets: vec![],
                layout: Layout::Vertical(vec![]),
                screen: Default::default(),
            },
            &[],
            &["SELECT a FROM t WHERE a < 3".to_string()],
        );
        assert!(html.contains("&lt; 3"));
    }
}
