//! Standalone interactive HTML export driven by the retained scene graph.
//!
//! The page embeds a [`SceneGraph`] snapshot (the same JSON the
//! `render_delta` server endpoint speaks) plus a small self-contained
//! JavaScript client that renders charts as SVG, widgets as HTML controls,
//! and the layout frames as nested flex rows/columns. The client exposes
//! `window.PI2` with `applyDelta` / `applyFrames` / `setScene`, so a host
//! page (a notebook cell, an iframe parent) can stream `render_delta`
//! patch frames into the export via `postMessage` instead of re-exporting
//! the whole document — mirroring the *Generated Interfaces* panel of
//! paper Figure 7, but live.

use pi2_core::scene::{scene_to_json, SceneGraph};
use pi2_core::{ChartUpdate, WidgetState};
use pi2_interface::{Interface, WidgetId};
use std::fmt::Write as _;

/// Export an interface as a standalone interactive HTML document.
///
/// The export freezes the session at its current bindings; the embedded
/// client can then be advanced by feeding it `render_delta` frames (see
/// the module docs). Widget states default to their rest positions; use
/// [`crate::HtmlRenderer::render_live`] to export with live state.
pub fn export_html(
    title: &str,
    interface: &Interface,
    updates: &[ChartUpdate],
    query_log: &[String],
) -> String {
    export_html_impl(title, interface, updates, query_log, &[])
}

pub(crate) fn export_html_impl(
    title: &str,
    interface: &Interface,
    updates: &[ChartUpdate],
    query_log: &[String],
    widget_states: &[(WidgetId, WidgetState)],
) -> String {
    let scene = SceneGraph::build(interface, updates, widget_states);
    let scene_json = serde_json::to_string(&scene_to_json(&scene))
        .unwrap_or_else(|_| "null".to_string())
        // A literal `</script>` inside the embedded JSON would end the
        // script block early; `<\/` is the same string to the JS parser.
        .replace("</", "<\\/");

    let mut log = String::new();
    if !query_log.is_empty() {
        log.push_str("<details class=\"qlog\"><summary>Query Log</summary><ol>");
        for q in query_log {
            // Pretty-print entries that parse; leave free text as is.
            let pretty = pi2_sql::parse_query(q)
                .map(|p| pi2_sql::format_query(&p, 2))
                .unwrap_or_else(|_| q.clone());
            let _ = write!(log, "<li><pre>{}</pre></li>", escape(&pretty));
        }
        log.push_str("</ol></details>");
    }

    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>{t}</title>\n<style>\n{css}\
         </style></head><body><h2>{t}</h2>\n\
         <div id=\"pi2-root\"><noscript>This export renders its scene graph with \
         JavaScript.</noscript></div>\n{log}\n\
         <script>\nconst PI2_SCENE = {scene_json};\n{js}</script>\n</body></html>",
        t = escape(title),
        css = PAGE_CSS,
        log = log,
        scene_json = scene_json,
        js = CLIENT_JS,
    )
}

const PAGE_CSS: &str = "\
body{font-family:sans-serif;margin:16px;background:#fafafa}\n\
.row{display:flex;gap:12px;align-items:flex-start;flex-wrap:wrap}\n\
.col{display:flex;flex-direction:column;gap:12px}\n\
.chart,.widget{background:#fff;border:1px solid #ddd;border-radius:6px;padding:8px}\n\
.widget{font-size:13px;color:#333}\n\
.qlog{margin-top:16px;font-size:13px}\n\
h3{margin:2px 0 6px 0;font-size:14px} .badge{font-size:11px;color:#06c}\n\
.q{font-size:11px;color:#888;margin:4px 0 0 0;white-space:pre-wrap;max-width:420px}\n\
table{border-collapse:collapse;font-size:12px} td,th{border:1px solid #ccc;padding:2px 6px}\n";

/// The embedded scene client. Kept dependency-free and old-browser-friendly
/// so the export stays self-contained and loads anywhere.
const CLIENT_JS: &str = r##"
const PI2 = window.PI2 = {
  scene: PI2_SCENE,
  // Scene version, once known. The static export does not know which
  // server version it froze, so this starts null and locks in on the
  // first setScene/applyFrames call.
  version: null,
  stale: false,
};

// --- value helpers ---------------------------------------------------------
function num(v) {
  if (typeof v === 'number') return v;
  if (typeof v === 'boolean') return v ? 1 : 0;
  if (v && typeof v === 'object') {
    if ('$date' in v) return Date.parse(v.$date + 'T00:00:00Z') / 86400000;
    if ('$float' in v) return parseFloat(v.$float);
  }
  return null;
}
function show(v) {
  if (v === null) return 'null';
  if (v && typeof v === 'object') {
    if ('$date' in v) return v.$date;
    if ('$float' in v) return v.$float;
  }
  return String(v);
}
function esc(s) {
  return String(s).replace(/&/g, '&amp;').replace(/</g, '&lt;')
    .replace(/>/g, '&gt;').replace(/"/g, '&quot;');
}

// --- delta application (client side of render_delta) -----------------------
function applyEdits(c, edits) {
  // Row-level edit script: authoritative when present. Ops walk the old
  // rows once — a positive integer keeps that many rows, a negative one
  // drops them, an array inserts a column block. Every op must stay in
  // bounds and the cursor must land exactly on c.rows, mirroring the
  // server-side validator.
  const cols = c.columns.map(col => ({ field: col.field, values: [] }));
  let cursor = 0;
  for (const e of edits) {
    if (typeof e === 'number' && e > 0) {
      if (cursor + e > c.rows) throw new Error('edit script keeps past the end');
      for (let i = 0; i < cols.length; i++) {
        const src = c.columns[i].values;
        for (let r = cursor; r < cursor + e; r++) cols[i].values.push(src[r]);
      }
      cursor += e;
    } else if (typeof e === 'number' && e < 0) {
      if (cursor - e > c.rows) throw new Error('edit script drops past the end');
      cursor -= e;
    } else if (Array.isArray(e)) {
      if (e.length !== cols.length) throw new Error('edit script insert field-count mismatch');
      for (let i = 0; i < cols.length; i++) {
        if (e[i].field !== cols[i].field) throw new Error('edit script insert field mismatch');
        cols[i].values = cols[i].values.concat(e[i].values);
      }
    } else {
      throw new Error('bad edit op');
    }
  }
  if (cursor !== c.rows) throw new Error('edit script does not consume every old row');
  c.columns = cols;
  c.rows = cols.length ? cols[0].values.length : 0;
}

function applyData(c, d) {
  if (d.edits && d.edits.length) { applyEdits(c, d.edits); return; }
  const kept = c.rows - d.drop_head - d.drop_tail;
  let cols;
  if (kept <= 0) {
    // Full replace: the prepend block re-establishes the field list.
    cols = d.prepend.map(p => ({ field: p.field, values: p.values.slice() }));
  } else {
    cols = c.columns.map(col => {
      const keep = col.values.slice(d.drop_head, col.values.length - d.drop_tail);
      const pre = d.prepend.find(p => p.field === col.field);
      return { field: col.field, values: (pre ? pre.values : []).concat(keep) };
    });
  }
  for (const a of d.append) {
    const col = cols.find(x => x.field === a.field);
    if (col) col.values = col.values.concat(a.values);
    else cols.push({ field: a.field, values: a.values.slice() });
  }
  c.columns = cols;
  c.rows = cols.length ? cols[0].values.length : 0;
}

PI2.applyDelta = function (delta) {
  for (const p of delta.charts) {
    const c = PI2.scene.charts.find(x => x.node === p.node);
    if (!c) throw new Error('unknown scene node ' + p.node);
    if (p.query !== undefined) c.query = p.query;
    if (p.mark !== undefined) c.mark = p.mark;
    if (p.encodings !== undefined) c.encodings = p.encodings;
    if (p.axes !== undefined) c.axes = p.axes;
    if (p.data) applyData(c, p.data);
  }
  for (const p of delta.widgets) {
    const w = PI2.scene.widgets.find(x => x.node === p.node);
    if (w) w.state = p.state;
  }
  PI2.version = delta.to;
  render();
};

// Apply a batch of render_delta frames in order. Returns false (and marks
// the client stale) on a version gap — the host should fetch a snapshot
// and call setScene.
PI2.applyFrames = function (frames) {
  for (const f of frames) {
    if (PI2.version !== null && f.from !== PI2.version) {
      PI2.stale = true;
      return false;
    }
    PI2.applyDelta(f);
  }
  return true;
};

// Full-snapshot resync.
PI2.setScene = function (scene, version) {
  PI2.scene = scene;
  PI2.version = version === undefined ? null : version;
  PI2.stale = false;
  render();
};

// Host pages stream frames with:
//   frame.postMessage({pi2: 'frames', frames: [...]}, '*')
//   frame.postMessage({pi2: 'scene', scene: {...}, version: n}, '*')
window.addEventListener('message', ev => {
  const m = ev.data;
  if (!m || typeof m !== 'object') return;
  if (m.pi2 === 'frames') PI2.applyFrames(m.frames || []);
  else if (m.pi2 === 'scene') PI2.setScene(m.scene, m.version);
});

// --- rendering -------------------------------------------------------------
const SVG_W = 420, SVG_H = 260, PAD = 36;

function axisDomain(chart, channel, col) {
  const ax = chart.axes.find(a => a.channel === channel);
  if (ax && ax.min !== undefined && ax.max !== undefined && ax.max > ax.min)
    return [ax.min, ax.max];
  let lo = Infinity, hi = -Infinity;
  for (const v of col.values) {
    const n = num(v);
    if (n !== null && isFinite(n)) { lo = Math.min(lo, n); hi = Math.max(hi, n); }
  }
  if (!isFinite(lo) || hi - lo < 1e-12) return [lo - 0.5, lo + 0.5];
  return [lo, hi];
}

function tableHtml(chart) {
  let s = '<table><tr>';
  for (const c of chart.columns) s += '<th>' + esc(c.field) + '</th>';
  s += '</tr>';
  const n = Math.min(chart.rows, 20);
  for (let i = 0; i < n; i++) {
    s += '<tr>';
    for (const c of chart.columns) s += '<td>' + esc(show(c.values[i])) + '</td>';
    s += '</tr>';
  }
  s += '</table>';
  if (chart.rows > 20) s += '<em>… ' + (chart.rows - 20) + ' more rows</em>';
  return s;
}

function chartSvg(chart) {
  const xe = chart.encodings.find(e => e.channel === 'x');
  const ye = chart.encodings.find(e => e.channel === 'y');
  const xc = xe && chart.columns.find(c => c.field === xe.field);
  const yc = ye && chart.columns.find(c => c.field === ye.field);
  if (chart.mark === 'table' || !xc || !yc) return tableHtml(chart);
  const pts = [];
  for (let i = 0; i < chart.rows; i++) {
    const x = num(xc.values[i]), y = num(yc.values[i]);
    if (x !== null && y !== null) pts.push([x, y]);
  }
  if (!pts.length) return tableHtml(chart);
  const dx = axisDomain(chart, 'x', xc), dy = axisDomain(chart, 'y', yc);
  const sx = v => PAD + (v - dx[0]) / (dx[1] - dx[0]) * (SVG_W - 2 * PAD);
  const sy = v => SVG_H - PAD - (v - dy[0]) / (dy[1] - dy[0]) * (SVG_H - 2 * PAD);
  let marks = '';
  if (chart.mark === 'line' || chart.mark === 'area') {
    const sorted = pts.slice().sort((a, b) => a[0] - b[0]);
    const path = sorted.map(p => sx(p[0]).toFixed(1) + ',' + sy(p[1]).toFixed(1)).join(' ');
    marks = '<polyline points="' + path +
      '" fill="none" stroke="#1f77b4" stroke-width="1.5"/>';
  } else if (chart.mark === 'scatter') {
    for (const p of pts)
      marks += '<circle cx="' + sx(p[0]).toFixed(1) + '" cy="' + sy(p[1]).toFixed(1) +
        '" r="2" fill="#1f77b4" fill-opacity="0.6"/>';
  } else {
    const bw = Math.max((SVG_W - 2 * PAD) / Math.max(pts.length, 1) * 0.8, 1);
    for (const p of pts) {
      const y = sy(p[1]);
      marks += '<rect x="' + (sx(p[0]) - bw / 2).toFixed(1) + '" y="' + y.toFixed(1) +
        '" width="' + bw.toFixed(1) + '" height="' +
        Math.max(SVG_H - PAD - y, 0).toFixed(1) + '" fill="#1f77b4"/>';
    }
  }
  const y0 = SVG_H - PAD;
  return '<svg width="' + SVG_W + '" height="' + SVG_H + '" viewBox="0 0 ' + SVG_W +
    ' ' + SVG_H + '">' +
    '<line x1="' + PAD + '" y1="' + y0 + '" x2="' + (SVG_W - PAD) + '" y2="' + y0 +
    '" stroke="#999"/>' +
    '<line x1="' + PAD + '" y1="' + PAD + '" x2="' + PAD + '" y2="' + y0 +
    '" stroke="#999"/>' + marks +
    '<text x="' + SVG_W / 2 + '" y="' + SVG_H +
    '" font-size="11" text-anchor="middle">' + esc(xe.field) + '</text>' +
    '<text x="10" y="' + SVG_H / 2 + '" font-size="11" transform="rotate(-90 10 ' +
    SVG_H / 2 + ')" text-anchor="middle">' + esc(ye.field) + '</text></svg>';
}

function chartHtml(chart) {
  let s = '<div class="chart" data-node="' + chart.node + '"><h3>' + esc(chart.name) +
    ' · ' + esc(chart.title);
  for (const i of chart.interactions) s += ' <span class="badge">⚡' + esc(i) + '</span>';
  s += '</h3>' + chartSvg(chart) + '<pre class="q">' + esc(chart.query) + '</pre></div>';
  return s;
}

function stateIs(w, i) {
  return w.state && w.state.picked === i;
}

function widgetHtml(w) {
  let control = '';
  if (w.kind === 'radio') {
    control = w.options.map((o, i) =>
      '<label><input type="radio" disabled' + (stateIs(w, i) ? ' checked' : '') + '> ' +
      esc(o) + '</label>').join(' ');
  } else if (w.kind === 'button-group' || w.kind === 'tabs') {
    control = w.options.map((o, i) =>
      '<button disabled' + (stateIs(w, i) ? ' style="font-weight:bold"' : '') + '>' +
      esc(o) + '</button>').join('');
  } else if (w.kind === 'dropdown') {
    control = '<select disabled>' + w.options.map((o, i) =>
      '<option' + (stateIs(w, i) ? ' selected' : '') + '>' + esc(o) + '</option>').join('') +
      '</select>';
  } else if (w.kind === 'toggle') {
    const on = !w.state || w.state.toggled !== false;
    control = '<input type="checkbox"' + (on ? ' checked' : '') + ' disabled>';
  } else if (w.kind === 'slider') {
    const v = w.state && w.state.value !== undefined ? show(w.state.value) : '';
    control = '<input type="range" disabled> <code>' + esc(v) + '</code>';
  } else if (w.kind === 'range-slider') {
    const r = (w.state && w.state.range) || [];
    control = '<input type="range" disabled> – <input type="range" disabled> <code>[' +
      r.map(show).map(esc).join(', ') + ']</code>';
  } else if (w.kind === 'multi-select') {
    const flags = (w.state && w.state.flags) || [];
    control = w.options.map((o, i) =>
      '<label><input type="checkbox"' + (flags[i] ? ' checked' : '') + ' disabled> ' +
      esc(o) + '</label>').join(' ');
  } else {
    const v = w.state && w.state.value !== undefined ? show(w.state.value) : '';
    control = '<input type="text" value="' + esc(v) + '" disabled>';
  }
  return '<div class="widget" data-node="' + w.node + '"><strong>' + esc(w.label) +
    '</strong> ' + control + '</div>';
}

function frameHtml(frame, frames) {
  if (!frame) return '';
  if (frame.kind === 'horizontal' || frame.kind === 'vertical') {
    const cls = frame.kind === 'horizontal' ? 'row' : 'col';
    return '<div class="' + cls + '">' +
      frame.children.map(n => frameHtml(frames.get(n), frames)).join('') + '</div>';
  }
  if (frame.kind && frame.kind.chart !== undefined) {
    const c = PI2.scene.charts.find(x => x.chart === frame.kind.chart);
    return c ? chartHtml(c) : '';
  }
  if (frame.kind && frame.kind.widget !== undefined) {
    const w = PI2.scene.widgets.find(x => x.widget === frame.kind.widget);
    return w ? widgetHtml(w) : '';
  }
  return '';
}

function render() {
  const root = document.getElementById('pi2-root');
  if (!root) return;
  const frames = new Map();
  for (const f of PI2.scene.frames) frames.set(f.node, f);
  if (PI2.scene.frames.length) {
    root.innerHTML = frameHtml(PI2.scene.frames[0], frames);
  } else {
    root.innerHTML = PI2.scene.charts.map(chartHtml).join('') +
      PI2.scene.widgets.map(widgetHtml).join('');
  }
}
PI2.render = render;
render();
"##;

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_core::{Pi2, SearchStrategy};
    use pi2_interface::Layout;

    #[test]
    fn exports_interactive_client_with_embedded_scene() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        let session = pi2.session(&g);
        let updates = session.refresh_all().unwrap();
        let log: Vec<String> = g.queries.iter().map(|q| q.to_string()).collect();
        let html = export_html("Toy", &g.interface, &updates, &log);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("const PI2_SCENE = {"));
        assert!(html.contains("PI2.applyDelta"));
        assert!(html.contains("PI2.applyFrames"));
        assert!(html.contains("Query Log"));
        assert!(html.contains("</html>"));
        // The embedded snapshot carries the chart data inline.
        assert!(html.contains("\"charts\""));
        assert!(html.contains("\"columns\""));
    }

    #[test]
    fn escapes_query_text() {
        let html = export_html(
            "x",
            &Interface {
                charts: vec![],
                widgets: vec![],
                layout: Layout::Vertical(vec![]),
                screen: Default::default(),
            },
            &[],
            &["SELECT a FROM t WHERE a < 3".to_string()],
        );
        assert!(html.contains("&lt; 3"));
    }

    #[test]
    fn embedded_json_cannot_close_the_script_block() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2.generate_sql(&["SELECT p, count(*) FROM t GROUP BY p"]).unwrap();
        let html = export_html("</script><script>alert(1)", &g.interface, &[], &[]);
        // The title goes through HTML escaping; the scene JSON through the
        // `<\/` rewrite. Neither path may emit a raw close tag.
        assert!(!html.contains("<script>alert"));
    }
}
