//! The typed renderer surface over the retained scene graph.
//!
//! `pi2-core` owns the scene model ([`SceneGraph`], [`SceneDelta`], the
//! [`Renderer`] trait — re-exported here); this module ships the concrete
//! backends:
//!
//! - [`AsciiRenderer`] — terminal charts and widgets (the old
//!   `render_interface` / `render_session` free functions),
//! - [`SpecRenderer`] — Vega-Lite-style JSON specs (the old
//!   `interface_spec` / `chart_spec`),
//! - [`HtmlRenderer`] — the self-contained interactive HTML client that
//!   renders an embedded scene snapshot and applies `render_delta` patch
//!   frames.
//!
//! All three are pure consumers of interface + data; the scene graph means
//! future backends (wgpu, WASM) can instead consume snapshots and deltas
//! only.

pub use pi2_core::scene::{
    delta_from_json, delta_to_json, scene_from_json, scene_to_json, AxisScene, ChartPatch,
    ChartScene, ColumnSlice, DataPatch, FrameKind, LayoutFrame, Rect, Renderer, RowEdit,
    SceneCatchup, SceneDelta, SceneGraph, SceneNodeId, SceneState, WidgetPatch, WidgetScene,
    SCENE_HISTORY_CAP,
};

use pi2_core::{ChartUpdate, InterfaceSession, SessionError};
use pi2_interface::{Chart, Interface};
use serde_json::Value as Json;

/// Terminal backend: ASCII charts, widgets, and layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsciiRenderer;

impl Renderer for AsciiRenderer {
    type Output = String;

    fn render(&self, interface: &Interface, updates: &[ChartUpdate]) -> String {
        crate::ascii::render_interface_impl(interface, updates)
    }

    fn render_live(&self, session: &InterfaceSession) -> Result<String, SessionError> {
        crate::ascii::render_session_impl(session)
    }
}

/// Vega-Lite-style JSON spec backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecRenderer;

impl SpecRenderer {
    /// The spec of a single chart, with inline data when an update is
    /// provided (the old `chart_spec` free function).
    pub fn chart(&self, chart: &Chart, update: Option<&ChartUpdate>) -> Json {
        crate::spec::chart_spec_impl(chart, update)
    }
}

impl Renderer for SpecRenderer {
    type Output = Json;

    fn render(&self, interface: &Interface, updates: &[ChartUpdate]) -> Json {
        crate::spec::interface_spec_impl(interface, updates)
    }
}

/// Self-contained interactive HTML backend: embeds a scene snapshot and a
/// patch-applying client (see [`crate::export_html`]).
#[derive(Debug, Clone, Default)]
pub struct HtmlRenderer {
    title: String,
    query_log: Vec<String>,
}

impl HtmlRenderer {
    /// A renderer producing a page titled `title`.
    pub fn new(title: impl Into<String>) -> Self {
        HtmlRenderer { title: title.into(), query_log: Vec::new() }
    }

    /// Attach the session's query log, shown in the page's query panel.
    pub fn query_log(mut self, log: Vec<String>) -> Self {
        self.query_log = log;
        self
    }
}

impl Renderer for HtmlRenderer {
    type Output = String;

    fn render(&self, interface: &Interface, updates: &[ChartUpdate]) -> String {
        crate::html::export_html_impl(&self.title, interface, updates, &self.query_log, &[])
    }

    fn render_live(&self, session: &InterfaceSession) -> Result<String, SessionError> {
        let updates = session.refresh_all()?;
        let states = session.widget_states();
        Ok(crate::html::export_html_impl(
            &self.title,
            session.interface(),
            &updates,
            &self.query_log,
            &states,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_core::{Pi2, SearchStrategy};

    fn toy_generated() -> (pi2_core::GeneratedInterface, Pi2) {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
            ])
            .unwrap();
        (g, pi2)
    }

    #[test]
    fn renderers_match_their_legacy_free_functions() {
        let (g, pi2) = toy_generated();
        let session = pi2.session(&g);
        let updates = session.refresh_all().unwrap();

        assert_eq!(
            AsciiRenderer.render(&g.interface, &updates),
            crate::ascii::render_interface_impl(&g.interface, &updates)
        );
        assert_eq!(
            AsciiRenderer.render_live(&session).unwrap(),
            crate::ascii::render_session_impl(&session).unwrap()
        );
        assert_eq!(
            SpecRenderer.render(&g.interface, &updates),
            crate::spec::interface_spec_impl(&g.interface, &updates)
        );
        assert_eq!(
            SpecRenderer.chart(&g.interface.charts[0], updates.first()),
            crate::spec::chart_spec_impl(&g.interface.charts[0], updates.first())
        );
    }

    #[test]
    fn session_scene_deltas_replay_to_cold_render() {
        use pi2_core::{Event, SceneCatchup, SceneGraph};
        let (g, pi2) = toy_generated();
        let mut session = pi2.session(&g);

        let (mut client, mut version) = session.scene_snapshot().unwrap();
        assert_eq!(version, 1);

        use pi2_core::WidgetValue;
        use pi2_interface::WidgetKind;
        let widget = g.interface.widgets.first();
        let events: Vec<Event> = widget
            .map(|w| {
                let (a, b) = match &w.kind {
                    WidgetKind::Toggle => (WidgetValue::Bool(false), WidgetValue::Bool(true)),
                    WidgetKind::Slider { min, max, .. } => {
                        (WidgetValue::Scalar(*max), WidgetValue::Scalar(*min))
                    }
                    WidgetKind::RangeSlider { min, max, .. } => {
                        let mid = (*min + *max) / 2.0;
                        (WidgetValue::Range(*min, mid), WidgetValue::Range(*min, *max))
                    }
                    WidgetKind::MultiSelect { options } => (
                        WidgetValue::Multi(vec![false; options.len()]),
                        WidgetValue::Multi(vec![true; options.len()]),
                    ),
                    WidgetKind::TextInput => (
                        WidgetValue::Literal(pi2_sql::Literal::Str("a".into())),
                        WidgetValue::Literal(pi2_sql::Literal::Str("b".into())),
                    ),
                    _ => (WidgetValue::Pick(1), WidgetValue::Pick(0)),
                };
                vec![
                    Event::SetWidget { widget: w.id, value: a },
                    Event::SetWidget { widget: w.id, value: b },
                ]
            })
            .unwrap_or_default();
        let widget = widget.map(|w| w.id);
        for e in events {
            let (_updates, delta) = session.dispatch_with_delta(e).unwrap();
            if let Some(d) = delta {
                // Through the wire codec, as a real client would see it.
                let rt = delta_from_json(&delta_to_json(&d)).unwrap();
                client.apply(&rt).unwrap();
                version = d.to_version;
            }
            assert_eq!(client, SceneGraph::build_from(&session).unwrap());
            assert_eq!(version, session.scene_version());
        }

        // Catch-up from version 1 replays the same run.
        match session.scene_deltas_since(1).unwrap() {
            SceneCatchup::Deltas(chain) => {
                // A v1 client (a fresh session shows the same v1 scene)
                // replays the chain to the live scene.
                let fresh = pi2.session(&g);
                let (mut from_start, _) = fresh.scene_snapshot().unwrap();
                for d in &chain {
                    from_start.apply(d).unwrap();
                }
                assert_eq!(from_start, SceneGraph::build_from(&session).unwrap());
            }
            SceneCatchup::UpToDate => {
                assert!(widget.is_none(), "events should have bumped the version");
            }
            other => panic!("unexpected catchup {other:?}"),
        }
    }
}
