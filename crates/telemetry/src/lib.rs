//! Lightweight telemetry for the PI2 pipeline.
//!
//! A [`Registry`] collects named **counters** (monotonic u64) and named
//! **timers** (accumulated wall-clock durations with call counts) from any
//! number of threads. Phases of the pipeline time themselves with
//! [`Registry::span`] RAII guards; the search layer bumps counters for
//! iterations, expansions, and cache hits. A [`Snapshot`] freezes the
//! registry into plain data that `GenerationStats` embeds and that dumps
//! to a JSON object compatible with the bench harness's `BENCH_*.json`
//! files — all with no dependencies outside `std`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Accumulated state for one named timer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimerStat {
    /// Total accumulated wall-clock time.
    pub total: Duration,
    /// Number of recorded intervals.
    pub count: u64,
}

impl TimerStat {
    /// Mean duration per recorded interval (zero if never recorded).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, TimerStat>,
}

/// A thread-safe sink for counters and timers.
///
/// Locking is a plain `std::sync::Mutex`: telemetry writes are rare
/// (per-phase, per-search) rather than per-iteration, so contention is
/// negligible next to the work being measured.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        *self.locked().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named counter to `value`, discarding any previous value.
    pub fn set(&self, name: &str, value: u64) {
        self.locked().counters.insert(name.to_string(), value);
    }

    /// Record one interval of `elapsed` against the named timer.
    pub fn record(&self, name: &str, elapsed: Duration) {
        let mut inner = self.locked();
        let stat = inner.timers.entry(name.to_string()).or_default();
        stat.total += elapsed;
        stat.count += 1;
    }

    /// Start a RAII span; the elapsed time is recorded when the guard drops.
    pub fn span<'a>(&'a self, name: &'a str) -> Span<'a> {
        Span { registry: self, name, start: Instant::now() }
    }

    /// Time a closure and record it under `name`, passing through its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Current value of a counter (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.locked().counters.get(name).copied().unwrap_or(0)
    }

    /// Current state of a timer (default if absent).
    pub fn timer(&self, name: &str) -> TimerStat {
        self.locked().timers.get(name).copied().unwrap_or_default()
    }

    /// Freeze the current state into plain data.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.locked();
        Snapshot { counters: inner.counters.clone(), timers: inner.timers.clone() }
    }

    /// Merge another snapshot's counters and timers into this registry.
    pub fn absorb(&self, snap: &Snapshot) {
        let mut inner = self.locked();
        for (k, v) in &snap.counters {
            *inner.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &snap.timers {
            let stat = inner.timers.entry(k.clone()).or_default();
            stat.total += v.total;
            stat.count += v.count;
        }
    }
}

/// RAII timing guard returned by [`Registry::span`].
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a Registry,
    name: &'a str,
    start: Instant,
}

impl Span<'_> {
    /// Elapsed time so far without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.registry.record(self.name, self.start.elapsed());
    }
}

/// An immutable copy of a registry's state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Accumulated timers by name.
    pub timers: BTreeMap<String, TimerStat>,
}

impl Snapshot {
    /// Value of a counter (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total accumulated time of a timer (zero if absent).
    pub fn timer_total(&self, name: &str) -> Duration {
        self.timers.get(name).map(|t| t.total).unwrap_or(Duration::ZERO)
    }

    /// Ratio `hits / (hits + misses)` of two counters, or `None` if both
    /// are zero. The conventional names are `<prefix>.hits` / `<prefix>.misses`.
    pub fn hit_rate(&self, prefix: &str) -> Option<f64> {
        let hits = self.counter(&format!("{prefix}.hits"));
        let misses = self.counter(&format!("{prefix}.misses"));
        let total = hits + misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }

    /// Render as a JSON object: counters as integers, timers as
    /// `{name}_ms` floats plus `{name}_count` integers. Names are
    /// sanitized (`.` becomes `_`) so the output is easy to consume from
    /// the bench harness's flat `BENCH_*.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", sanitize(name), value);
        }
        for (name, stat) in &self.timers {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}_ms\":{:.3},\"{}_count\":{}",
                sanitize(name),
                stat.total.as_secs_f64() * 1e3,
                sanitize(name),
                stat.count
            );
        }
        out.push('}');
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// A fixed-bucket histogram for small non-negative integer samples
/// (e.g. rollout depths); the last bucket absorbs overflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// A histogram with `buckets` buckets for values `0..buckets-1`;
    /// larger samples land in the final bucket.
    pub fn new(buckets: usize) -> Self {
        Histogram { buckets: vec![0; buckets.max(1)] }
    }

    /// Record one sample.
    pub fn record(&mut self, value: usize) {
        let idx = value.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Bucket counts, index = sample value (last bucket = overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merge another histogram of the same shape into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, v) in other.buckets.iter().enumerate() {
            let idx = i.min(self.buckets.len() - 1);
            self.buckets[idx] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        reg.add("search.iterations", 10);
        reg.add("search.iterations", 5);
        assert_eq!(reg.counter("search.iterations"), 15);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn spans_record_on_drop() {
        let reg = Registry::new();
        {
            let _s = reg.span("phase.parse");
        }
        reg.time("phase.parse", || std::thread::sleep(Duration::from_millis(1)));
        let stat = reg.timer("phase.parse");
        assert_eq!(stat.count, 2);
        assert!(stat.total >= Duration::from_millis(1));
    }

    #[test]
    fn hit_rate_and_json() {
        let reg = Registry::new();
        reg.add("cache.hits", 3);
        reg.add("cache.misses", 1);
        reg.record("phase.map", Duration::from_millis(2));
        let snap = reg.snapshot();
        assert_eq!(snap.hit_rate("cache"), Some(0.75));
        assert_eq!(snap.hit_rate("other"), None);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hits\":3"));
        assert!(json.contains("\"phase_map_ms\""));
        assert!(json.contains("\"phase_map_count\":1"));
    }

    #[test]
    fn absorb_merges() {
        let a = Registry::new();
        a.add("n", 1);
        let b = Registry::new();
        b.add("n", 2);
        b.record("t", Duration::from_millis(1));
        a.absorb(&b.snapshot());
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.timer("t").count, 1);
    }

    #[test]
    fn histogram_overflow_and_merge() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(2);
        h.record(9); // overflow -> last bucket
        assert_eq!(h.buckets(), &[1, 0, 1, 1]);
        let mut other = Histogram::new(4);
        other.record(2);
        h.merge(&other);
        assert_eq!(h.buckets(), &[1, 0, 2, 1]);
        assert_eq!(h.total(), 4);
    }
}
