//! Lightweight telemetry for the PI2 pipeline.
//!
//! A [`Registry`] collects named **counters** (monotonic u64) and named
//! **timers** (accumulated wall-clock durations with call counts) from any
//! number of threads. Phases of the pipeline time themselves with
//! [`Registry::span`] RAII guards; the search layer bumps counters for
//! iterations, expansions, and cache hits. A [`Snapshot`] freezes the
//! registry into plain data that `GenerationStats` embeds and that dumps
//! to a JSON object compatible with the bench harness's `BENCH_*.json`
//! files — all with no dependencies outside `std`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Accumulated state for one named timer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimerStat {
    /// Total accumulated wall-clock time.
    pub total: Duration,
    /// Number of recorded intervals.
    pub count: u64,
}

impl TimerStat {
    /// Mean duration per recorded interval (zero if never recorded).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, TimerStat>,
}

/// A thread-safe sink for counters and timers.
///
/// Locking is a plain `std::sync::Mutex`: telemetry writes are rare
/// (per-phase, per-search) rather than per-iteration, so contention is
/// negligible next to the work being measured.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        *self.locked().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named counter to `value`, discarding any previous value.
    pub fn set(&self, name: &str, value: u64) {
        self.locked().counters.insert(name.to_string(), value);
    }

    /// Record one interval of `elapsed` against the named timer.
    pub fn record(&self, name: &str, elapsed: Duration) {
        let mut inner = self.locked();
        let stat = inner.timers.entry(name.to_string()).or_default();
        stat.total += elapsed;
        stat.count += 1;
    }

    /// Start a RAII span; the elapsed time is recorded when the guard drops.
    pub fn span<'a>(&'a self, name: &'a str) -> Span<'a> {
        Span { registry: self, name, start: Instant::now() }
    }

    /// Time a closure and record it under `name`, passing through its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Current value of a counter (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.locked().counters.get(name).copied().unwrap_or(0)
    }

    /// Current state of a timer (default if absent).
    pub fn timer(&self, name: &str) -> TimerStat {
        self.locked().timers.get(name).copied().unwrap_or_default()
    }

    /// Freeze the current state into plain data.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.locked();
        Snapshot { counters: inner.counters.clone(), timers: inner.timers.clone() }
    }

    /// Merge another snapshot's counters and timers into this registry.
    pub fn absorb(&self, snap: &Snapshot) {
        let mut inner = self.locked();
        for (k, v) in &snap.counters {
            *inner.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &snap.timers {
            let stat = inner.timers.entry(k.clone()).or_default();
            stat.total += v.total;
            stat.count += v.count;
        }
    }
}

/// RAII timing guard returned by [`Registry::span`].
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a Registry,
    name: &'a str,
    start: Instant,
}

impl Span<'_> {
    /// Elapsed time so far without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.registry.record(self.name, self.start.elapsed());
    }
}

/// An immutable copy of a registry's state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Accumulated timers by name.
    pub timers: BTreeMap<String, TimerStat>,
}

impl Snapshot {
    /// Value of a counter (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total accumulated time of a timer (zero if absent).
    pub fn timer_total(&self, name: &str) -> Duration {
        self.timers.get(name).map(|t| t.total).unwrap_or(Duration::ZERO)
    }

    /// Ratio `hits / (hits + misses)` of two counters, or `None` if both
    /// are zero. The conventional names are `<prefix>.hits` / `<prefix>.misses`.
    pub fn hit_rate(&self, prefix: &str) -> Option<f64> {
        let hits = self.counter(&format!("{prefix}.hits"));
        let misses = self.counter(&format!("{prefix}.misses"));
        let total = hits + misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }

    /// Render as a JSON object: counters as integers, timers as
    /// `{name}_ms` floats plus `{name}_count` integers. Names are
    /// sanitized (`.` becomes `_`) so the output is easy to consume from
    /// the bench harness's flat `BENCH_*.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", sanitize(name), value);
        }
        for (name, stat) in &self.timers {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}_ms\":{:.3},\"{}_count\":{}",
                sanitize(name),
                stat.total.as_secs_f64() * 1e3,
                sanitize(name),
                stat.count
            );
        }
        out.push('}');
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// A fixed-bucket histogram for small non-negative integer samples
/// (e.g. rollout depths); the last bucket absorbs overflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// A histogram with `buckets` buckets for values `0..buckets-1`;
    /// larger samples land in the final bucket.
    pub fn new(buckets: usize) -> Self {
        Histogram { buckets: vec![0; buckets.max(1)] }
    }

    /// Record one sample.
    pub fn record(&mut self, value: usize) {
        let idx = value.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Bucket counts, index = sample value (last bucket = overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merge another histogram of the same shape into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, v) in other.buckets.iter().enumerate() {
            let idx = i.min(self.buckets.len() - 1);
            self.buckets[idx] += v;
        }
    }
}

/// A log-scaled latency histogram for wall-clock durations.
///
/// Buckets are base-2 exponential with [`LatencyHistogram::SUB_BITS`] bits of
/// sub-bucket mantissa (HDR-histogram style), giving ~12.5% relative
/// resolution across the whole nanosecond-to-seconds range with a small,
/// fixed memory footprint. Percentiles come back as the lower bound of the
/// bucket that crosses the requested rank, so reported values never
/// overstate latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Mantissa bits per octave: 8 sub-buckets, ~12.5% resolution.
    const SUB_BITS: u32 = 3;
    /// Enough buckets for durations up to ~2^63 ns (centuries).
    const BUCKETS: usize = ((64 - Self::SUB_BITS as usize) + 1) << Self::SUB_BITS as usize;

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            total_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    fn bucket_of(nanos: u64) -> usize {
        let sub = 1u64 << Self::SUB_BITS;
        if nanos < sub {
            return nanos as usize;
        }
        let exp = 63 - nanos.leading_zeros();
        let shift = exp - Self::SUB_BITS;
        let mantissa = ((nanos >> shift) & (sub - 1)) as usize;
        ((((exp - Self::SUB_BITS) as usize) + 1) << Self::SUB_BITS as usize) | mantissa
    }

    /// Lower bound (in nanoseconds) of bucket `idx`.
    fn bucket_lower(idx: usize) -> u64 {
        let sub = 1usize << Self::SUB_BITS as usize;
        if idx < sub {
            return idx as u64;
        }
        let octave = (idx >> Self::SUB_BITS as usize) - 1;
        let mantissa = (idx & (sub - 1)) as u64;
        let base = 1u64 << (octave as u32 + Self::SUB_BITS);
        base + (mantissa << octave as u32)
    }

    /// Record one sample.
    pub fn record(&mut self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.total_nanos += nanos as u128;
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.total_nanos / self.count as u128) as u64)
        }
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_nanos)
        }
    }

    /// Largest recorded sample (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the bucket that
    /// crosses the rank; exact min/max at the extremes. Zero when empty.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_nanos(Self::bucket_lower(idx).max(self.min_nanos));
            }
        }
        self.max()
    }

    /// Merge another histogram into this one.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Render as a flat JSON object fragment: `{"count":..,"p50_us":..,
    /// "p95_us":..,"p99_us":..,"mean_us":..,"max_us":..}`.
    pub fn to_json(&self) -> String {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        format!(
            "{{\"count\":{},\"p50_us\":{:.3},\"p95_us\":{:.3},\"p99_us\":{:.3},\
             \"mean_us\":{:.3},\"max_us\":{:.3}}}",
            self.count,
            us(self.percentile(0.50)),
            us(self.percentile(0.95)),
            us(self.percentile(0.99)),
            us(self.mean()),
            us(self.max()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        reg.add("search.iterations", 10);
        reg.add("search.iterations", 5);
        assert_eq!(reg.counter("search.iterations"), 15);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn spans_record_on_drop() {
        let reg = Registry::new();
        {
            let _s = reg.span("phase.parse");
        }
        reg.time("phase.parse", || std::thread::sleep(Duration::from_millis(1)));
        let stat = reg.timer("phase.parse");
        assert_eq!(stat.count, 2);
        assert!(stat.total >= Duration::from_millis(1));
    }

    #[test]
    fn hit_rate_and_json() {
        let reg = Registry::new();
        reg.add("cache.hits", 3);
        reg.add("cache.misses", 1);
        reg.record("phase.map", Duration::from_millis(2));
        let snap = reg.snapshot();
        assert_eq!(snap.hit_rate("cache"), Some(0.75));
        assert_eq!(snap.hit_rate("other"), None);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hits\":3"));
        assert!(json.contains("\"phase_map_ms\""));
        assert!(json.contains("\"phase_map_count\":1"));
    }

    #[test]
    fn absorb_merges() {
        let a = Registry::new();
        a.add("n", 1);
        let b = Registry::new();
        b.add("n", 2);
        b.record("t", Duration::from_millis(1));
        a.absorb(&b.snapshot());
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.timer("t").count, 1);
    }

    #[test]
    fn histogram_overflow_and_merge() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(2);
        h.record(9); // overflow -> last bucket
        assert_eq!(h.buckets(), &[1, 0, 1, 1]);
        let mut other = Histogram::new(4);
        other.record(2);
        h.merge(&other);
        assert_eq!(h.buckets(), &[1, 0, 2, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn latency_histogram_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn latency_histogram_percentiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Duration::from_micros(1));
        assert_eq!(h.max(), Duration::from_micros(1000));
        // Bucket lower bounds never overstate; resolution is ~12.5%.
        let p50 = h.percentile(0.50).as_micros() as f64;
        assert!((430.0..=500.0).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(0.99).as_micros() as f64;
        assert!((860.0..=990.0).contains(&p99), "p99 = {p99}");
        assert!(h.percentile(0.0) <= h.percentile(0.5));
        assert!(h.percentile(0.5) <= h.percentile(1.0));
    }

    #[test]
    fn latency_histogram_single_sample_is_exact_at_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(12_345));
        assert_eq!(h.percentile(0.0), Duration::from_nanos(12_345));
        assert_eq!(h.percentile(1.0), Duration::from_nanos(12_345));
        assert_eq!(h.mean(), Duration::from_nanos(12_345));
        // The mid-quantile falls in the sample's own bucket, whose lower
        // bound is clamped to the recorded min.
        assert_eq!(h.percentile(0.5), Duration::from_nanos(12_345));
    }

    #[test]
    fn latency_histogram_absorb_and_json() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.absorb(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Duration::from_micros(10));
        assert_eq!(a.max(), Duration::from_micros(1000));
        let json = a.to_json();
        assert!(json.contains("\"count\":2"), "{json}");
        assert!(json.contains("p99_us"), "{json}");
    }
}
