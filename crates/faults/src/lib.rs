#![warn(missing_docs)]

//! # pi2-faults
//!
//! Process-global fault-injection hooks for resilience testing.
//!
//! Production crates (`pi2-mcts`, `pi2-core`, `pi2-engine`) depend on this
//! crate only behind their `faults` cargo feature and call the `should_*`
//! probes at well-defined points: worker startup, phase entry, query
//! execution. With no fault armed every probe is a single relaxed atomic
//! load, so the hooks are free in ordinary builds that happen to have the
//! feature unified on.
//!
//! The conformance harness arms faults with [`inject`], which returns a
//! scoped [`FaultGuard`]: the fault stays armed until the guard drops, and
//! a process-wide lock inside the guard serializes concurrent injectors
//! (fault state is global, so two tests must not arm faults at once).
//!
//! Fault classes mirror the resilience layer's failure domains:
//!
//! * [`Fault::WorkerPanic`] — a search worker thread panics at startup.
//! * [`Fault::DeadlineAtPhase`] — the generation deadline expires the
//!   moment the named pipeline phase (`"search"`, `"map"`) is entered.
//! * [`Fault::ExecOverrun`] — every query execution trips the engine's
//!   resource guard, as a pathological cross join would.
//! * [`Fault::JournalTornWrite`] — the session journal's next append is
//!   torn mid-frame, as a crash between `write` and the trailing bytes
//!   reaching disk would leave it.
//! * [`Fault::CheckpointCrash`] — a checkpoint write dies after the tmp
//!   file is partially written but before the atomic rename.
//! * [`Fault::RecoveryFsync`] — every fsync issued during recovery
//!   reports an I/O error (the recovering process must warn and carry
//!   on, not abort).

use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicBool, Ordering};

/// A fault class the resilience layer must degrade gracefully under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Panic the search worker with this index as soon as it starts.
    WorkerPanic {
        /// 0-based worker index (worker 0 is the sequential search).
        worker: usize,
    },
    /// Treat the generation deadline as already expired when the named
    /// pipeline phase (`"search"` or `"map"`) is entered.
    DeadlineAtPhase {
        /// Phase name as used by the pipeline telemetry (`"search"`, `"map"`).
        phase: &'static str,
    },
    /// Make every query execution report a resource-limit overrun.
    ExecOverrun,
    /// Tear the session journal's appends mid-frame: the header and a
    /// prefix of the payload reach the file, the rest (and the fsync)
    /// are lost, exactly as a crash mid-`write` would leave the tail.
    JournalTornWrite,
    /// Crash a checkpoint write after the tmp file is partially written
    /// but before the atomic rename publishes it.
    CheckpointCrash,
    /// Fail every fsync issued while recovery is running.
    RecoveryFsync,
}

impl Fault {
    /// Stable CLI / log name of the fault class.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::WorkerPanic { .. } => "worker-panic",
            Fault::DeadlineAtPhase { phase: "search" } => "deadline-search",
            Fault::DeadlineAtPhase { .. } => "deadline-map",
            Fault::ExecOverrun => "exec-overrun",
            Fault::JournalTornWrite => "journal-torn-write",
            Fault::CheckpointCrash => "checkpoint-crash",
            Fault::RecoveryFsync => "recovery-fsync",
        }
    }
}

/// Fast-path flag: true only while some fault is armed.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The armed fault, if any.
static PLAN: Mutex<Option<Fault>> = Mutex::new(None);

/// Serializes injectors: only one [`FaultGuard`] can exist at a time.
static INJECTOR: Mutex<()> = Mutex::new(());

/// Marker prefix for injected panic messages, so panic output from
/// deliberate faults is recognizable in test logs.
pub const PANIC_MARKER: &str = "pi2-faults: injected worker panic";

/// Scoped fault injection: the fault stays armed until this guard drops.
///
/// Holding the guard also holds the process-wide injector lock, so
/// concurrent tests that inject faults serialize instead of trampling each
/// other's global state.
pub struct FaultGuard {
    _injector: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *PLAN.lock() = None;
    }
}

/// Arm `fault` for the lifetime of the returned guard.
///
/// Blocks until any previously armed fault is dropped.
pub fn inject(fault: Fault) -> FaultGuard {
    let injector = INJECTOR.lock();
    *PLAN.lock() = Some(fault);
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _injector: injector }
}

/// True when any fault is currently armed (cheap fast-path check).
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Probe: should the worker with this index panic now?
pub fn should_panic_worker(worker: usize) -> bool {
    armed() && matches!(*PLAN.lock(), Some(Fault::WorkerPanic { worker: w }) if w == worker)
}

/// Panic if a [`Fault::WorkerPanic`] is armed for `worker`. Call at worker
/// startup; the panic unwinds into the search layer's isolation boundary.
pub fn maybe_panic_worker(worker: usize) {
    if should_panic_worker(worker) {
        panic!("{PANIC_MARKER} (worker {worker})");
    }
}

/// Probe: is a deadline fault armed for this pipeline phase?
pub fn deadline_at(phase: &str) -> bool {
    armed() && matches!(*PLAN.lock(), Some(Fault::DeadlineAtPhase { phase: p }) if p == phase)
}

/// Probe: should query execution report a resource overrun?
pub fn exec_overrun() -> bool {
    armed() && matches!(*PLAN.lock(), Some(Fault::ExecOverrun))
}

/// Probe: should the journal's next append be torn mid-frame?
pub fn journal_torn_write() -> bool {
    armed() && matches!(*PLAN.lock(), Some(Fault::JournalTornWrite))
}

/// Probe: should the next checkpoint write crash before its rename?
pub fn checkpoint_crash() -> bool {
    armed() && matches!(*PLAN.lock(), Some(Fault::CheckpointCrash))
}

/// Probe: should fsyncs issued during recovery report an I/O error?
pub fn recovery_fsync_error() -> bool {
    armed() && matches!(*PLAN.lock(), Some(Fault::RecoveryFsync))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_quiet_without_injection() {
        // May race with the other tests' guards only if run in the same
        // process without the lock — each test takes the injector lock via
        // inject(), and this one asserts the disarmed steady state first.
        let _g = inject(Fault::ExecOverrun);
        drop(_g);
        assert!(!armed());
        assert!(!should_panic_worker(0));
        assert!(!deadline_at("search"));
        assert!(!exec_overrun());
    }

    #[test]
    fn guard_scopes_the_fault() {
        let g = inject(Fault::DeadlineAtPhase { phase: "search" });
        assert!(armed());
        assert!(deadline_at("search"));
        assert!(!deadline_at("map"));
        assert!(!exec_overrun());
        drop(g);
        assert!(!deadline_at("search"));
    }

    #[test]
    fn worker_panic_targets_one_worker() {
        let _g = inject(Fault::WorkerPanic { worker: 2 });
        assert!(should_panic_worker(2));
        assert!(!should_panic_worker(0));
        let caught = std::panic::catch_unwind(|| maybe_panic_worker(2));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains(PANIC_MARKER));
    }

    #[test]
    fn fault_names_are_stable() {
        assert_eq!(Fault::WorkerPanic { worker: 0 }.name(), "worker-panic");
        assert_eq!(Fault::DeadlineAtPhase { phase: "search" }.name(), "deadline-search");
        assert_eq!(Fault::DeadlineAtPhase { phase: "map" }.name(), "deadline-map");
        assert_eq!(Fault::ExecOverrun.name(), "exec-overrun");
        assert_eq!(Fault::JournalTornWrite.name(), "journal-torn-write");
        assert_eq!(Fault::CheckpointCrash.name(), "checkpoint-crash");
        assert_eq!(Fault::RecoveryFsync.name(), "recovery-fsync");
    }

    #[test]
    fn journal_probes_follow_their_guards() {
        let g = inject(Fault::JournalTornWrite);
        assert!(journal_torn_write());
        assert!(!checkpoint_crash());
        assert!(!recovery_fsync_error());
        drop(g);
        let g = inject(Fault::CheckpointCrash);
        assert!(checkpoint_crash());
        assert!(!journal_torn_write());
        drop(g);
        let g = inject(Fault::RecoveryFsync);
        assert!(recovery_fsync_error());
        drop(g);
        assert!(!recovery_fsync_error());
    }
}
