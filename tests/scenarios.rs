//! Scenario-level property tests: across random event streams, sessions
//! stay consistent — queries remain expressible, results match direct
//! execution, and bindings stay within domains.

use pi2_core::{Event, Pi2, SearchStrategy};

/// A deterministic pseudo-random walk of interface events.
fn event_stream(n: usize, seed: u64) -> Vec<Event> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| match next() % 4 {
            0 => Event::Pan {
                chart: 0,
                dx: ((next() % 100) as f64 - 50.0) / 10.0,
                dy: ((next() % 100) as f64 - 50.0) / 10.0,
            },
            1 => Event::Zoom { chart: 0, factor: 0.5 + (next() % 30) as f64 / 10.0 },
            2 => Event::Pan { chart: 0, dx: 1e6, dy: -1e6 }, // stress clamping
            _ => Event::Zoom { chart: 0, factor: 0.01 },
        })
        .collect()
}

#[test]
fn sdss_session_survives_random_event_storms() {
    let catalog =
        pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 500, seed: 11 });
    let pi2 = Pi2::builder(catalog.clone()).strategy(SearchStrategy::FullMerge).build();
    let g = pi2.generate(&pi2_datasets::sdss::demo_queries()).expect("generates");

    for seed in 0..4u64 {
        let mut session = pi2.session(&g);
        for event in event_stream(25, seed) {
            let updates = session.dispatch(event.clone()).unwrap_or_else(|e| {
                panic!("seed {seed}: event {event:?} failed: {e}");
            });
            for u in &updates {
                // The session's result must equal direct execution of the
                // same SQL.
                let direct = catalog.execute(&u.query).expect("direct execution");
                assert_eq!(direct.rows.len(), u.result.rows.len());
                // And the query stays inside the DiffTree's language.
                assert!(
                    pi2_difftree::expresses(&g.forest.trees[0], &u.query).is_some(),
                    "seed {seed}: inexpressible {}",
                    u.query
                );
            }
        }
    }
}

#[test]
fn widget_storms_on_toy_interface() {
    let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
        .strategy(SearchStrategy::FullMerge)
        .build();
    let g = pi2.generate(&pi2_datasets::toy::fig2_queries()).expect("generates");
    let widgets = g.interface.widgets.clone();
    let mut session = pi2.session(&g);
    // Exercise every widget with every plausible value.
    for w in &widgets {
        let values: Vec<pi2_core::WidgetValue> = match &w.kind {
            pi2_interface::WidgetKind::Toggle => {
                vec![pi2_core::WidgetValue::Bool(false), pi2_core::WidgetValue::Bool(true)]
            }
            pi2_interface::WidgetKind::Radio { options }
            | pi2_interface::WidgetKind::ButtonGroup { options }
            | pi2_interface::WidgetKind::Dropdown { options }
            | pi2_interface::WidgetKind::Tabs { options } => {
                (0..options.len()).map(pi2_core::WidgetValue::Pick).collect()
            }
            pi2_interface::WidgetKind::Slider { min, max, .. } => vec![
                pi2_core::WidgetValue::Scalar(*min),
                pi2_core::WidgetValue::Scalar((*min + *max) / 2.0),
                pi2_core::WidgetValue::Scalar(*max),
            ],
            pi2_interface::WidgetKind::RangeSlider { min, max, .. } => {
                vec![pi2_core::WidgetValue::Range(*min, *max)]
            }
            pi2_interface::WidgetKind::MultiSelect { options } => {
                vec![
                    pi2_core::WidgetValue::Multi(vec![true; options.len()]),
                    pi2_core::WidgetValue::Multi(vec![false; options.len()]),
                ]
            }
            pi2_interface::WidgetKind::TextInput => vec![],
        };
        let mut updated_any = false;
        for v in &values {
            let updates = session
                .dispatch(Event::SetWidget { widget: w.id, value: v.clone() })
                .unwrap_or_else(|e| panic!("widget {} value {v:?}: {e}", w.label));
            updated_any |= !updates.is_empty();
            // Dependency tracking: immediately restating the value the
            // widget now holds must not re-execute any chart.
            let again = session
                .dispatch(Event::SetWidget { widget: w.id, value: v.clone() })
                .unwrap_or_else(|e| panic!("widget {} value {v:?}: {e}", w.label));
            assert!(again.is_empty(), "restating {v:?} on widget {} must be a no-op", w.label);
        }
        // The values are distinct, so at most one of them can restate the
        // widget's starting state: any widget with 2+ values must have
        // driven its charts at least once.
        if values.len() > 1 {
            assert!(updated_any, "widget {} should update at least one chart", w.label);
        }
    }
}

#[test]
fn notebook_revert_then_regenerate_is_stable() {
    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
        state_limit: Some(5),
        ..Default::default()
    });
    let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
    let mut nb = pi2_notebook::Notebook::with_pi2(pi2);
    let demo = pi2_datasets::covid::demo_queries();
    for q in &demo[..3] {
        nb.add_cell(q.to_string());
    }
    nb.run_all().expect("cells execute");
    let v1 = nb.generate_interface().expect("V1");
    let log1 = nb.version(v1).expect("v1").query_log.clone();

    // Mutate, then revert, then regenerate: the archived log reproduces.
    nb.add_cell("SELECT count(*) FROM covid");
    nb.edit_cell(0, "SELECT 1").expect("edit");
    nb.revert_to(v1).expect("revert");
    nb.run_all().expect("cells re-execute");
    let v2 = nb.generate_interface().expect("V2");
    let log2 = nb.version(v2).expect("v2").query_log.clone();
    assert_eq!(log1, log2, "revert must restore the exact analysis state");
}
