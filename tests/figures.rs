//! Qualitative assertions over the regenerated paper exhibits: every table
//! and figure module runs, and the paper's claims hold in its output.

use pi2_bench::figures;

#[test]
fn table1_pi2_dominates() {
    let out = figures::table1::run();
    // The capability matrix: only PI2 automates all three feature columns.
    assert!(out.contains("| PI2          | auto           | auto    | auto"), "{out}");
    assert!(out.contains("| Lux          | auto           | —"), "{out}");
    // Empirically PI2 expresses every scenario log.
    for line in out.lines().filter(|l| l.starts_with("| PI2")) {
        assert!(!line.contains("NO"), "PI2 row must express the log: {line}");
    }
    // Baselines never produce visualization interactions.
    for tool in ["Lux", "Hex", "Count", "SQL notebook"] {
        for line in out.lines().filter(|l| l.starts_with(&format!("| {tool}"))) {
            // measured viz-int column is the 4th cell
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() > 4 && cells[4].chars().all(|c| c.is_ascii_digit()) {
                assert_eq!(cells[4], "0", "{tool} must have no viz interactions: {line}");
            }
        }
    }
}

#[test]
fn fig1_pi2_wins_sdss() {
    let out = figures::fig1_sdss::run();
    assert!(out.contains("(a) Lux"), "{out}");
    assert!(out.contains("(b) Hex"), "{out}");
    assert!(out.contains("(c) PI2"), "{out}");
    // Hex needs manual sliders; PI2 none.
    assert!(out.contains("manual steps: 0; pan effort"), "{out}");
    // PI2's live pan changes the query.
    assert!(out.contains("before:") && out.contains("after:"), "{out}");
    let before = out.lines().find(|l| l.trim_start().starts_with("before:")).unwrap();
    let after = out.lines().find(|l| l.trim_start().starts_with("after:")).unwrap();
    assert_ne!(before.replace("before:", ""), after.replace("after:", ""));
}

#[test]
fn fig2_static_interface() {
    let out = figures::fig2_static::run();
    assert!(out.contains("Q1: SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p"), "{out}");
    assert!(out.contains("0 choice nodes"), "{out}");
    assert!(out.contains("static interface: 3 charts, 0 widgets, 0 interactions"), "{out}");
}

#[test]
fn fig3_variants_and_generalization() {
    let out = figures::fig3_predicates::run();
    // (b) expresses the generalization, (a) does not (paper §2).
    assert!(out.contains("`WHERE b = 1`: (a) no, (b) yes"), "{out}");
    // (c) has continuous/int-range hole domains.
    assert!(out.contains("IntRange"), "{out}");
}

#[test]
fn fig4_merged_tree_shape() {
    let out = figures::fig4_merged::run();
    assert!(out.contains("projection ANY present: true"), "{out}");
    assert!(out.contains("WHERE OPT present: true"), "{out}");
}

#[test]
fn fig5_click_binds_literal() {
    let out = figures::fig5_multiview::run();
    assert!(out.contains("click"), "{out}");
    assert!(out.contains("a = 3"), "click must rebind the literal to 3: {out}");
}

#[test]
fn fig6_pipeline_trace() {
    let out = figures::fig6_pipeline::run();
    for step in ["① parse", "② map", "③ cost", "④ search"] {
        assert!(out.contains(step), "missing {step}: {out}");
    }
    assert!(out.contains("expresses all 3 queries: true"), "{out}");
}

#[test]
fn search_quality_mcts_beats_greedy_at_matched_budget() {
    let out = figures::search_quality::run();
    let row_cost = |searcher: &str, budget: &str, col: usize| -> Option<f64> {
        out.lines()
            .filter(|l| {
                let cells: Vec<&str> = l.split('|').map(str::trim).collect();
                cells.get(1) == Some(&searcher) && cells.get(2) == Some(&budget)
            })
            .filter_map(|l| {
                let cells: Vec<&str> = l.split('|').map(str::trim).collect();
                cells.get(col).and_then(|c| c.parse::<f64>().ok())
            })
            .next()
    };
    // At a matched small budget, MCTS is well ahead of greedy (one greedy
    // step exhausts the budget evaluating all neighbors).
    let mcts_25 = row_cost("MCTS", "25", 4).expect("mcts@25 row");
    let greedy_25 = row_cost("greedy", "25", 4).expect("greedy@25 row");
    assert!(mcts_25 < greedy_25, "MCTS@25 {mcts_25} should beat greedy@25 {greedy_25}\n{out}");
    // With generous budgets both land near the same optimum.
    let mcts_200 = row_cost("MCTS", "200", 5).expect("mcts@200 row");
    let greedy_400 = row_cost("greedy", "400", 5).expect("greedy@400 row");
    assert!(
        (mcts_200 - greedy_400).abs() <= 0.35,
        "MCTS@200 {mcts_200} and greedy@400 {greedy_400} should converge\n{out}"
    );
    // Quality improves (weakly) with MCTS budget.
    let mcts_means: Vec<f64> = out
        .lines()
        .filter(|l| l.starts_with("| MCTS"))
        .filter_map(|l| {
            let cells: Vec<&str> = l.split('|').map(str::trim).collect();
            cells.get(4).and_then(|c| c.parse::<f64>().ok())
        })
        .collect();
    assert!(mcts_means.len() >= 3);
    assert!(
        mcts_means.last().unwrap() <= mcts_means.first().unwrap(),
        "quality should improve with budget: {mcts_means:?}"
    );
}

#[test]
fn ablations_shift_designs_toward_failure_modes() {
    let out = figures::ablations::run();
    // Extract the covid table rows.
    let covid_section = out.split("covid V1").nth(1).expect("covid section");
    let row = |name: &str| -> Vec<String> {
        covid_section
            .lines()
            .find(|l| l.starts_with(&format!("| {name}")))
            .unwrap_or_else(|| panic!("row {name} in {covid_section}"))
            .split('|')
            .map(|c| c.trim().to_string())
            .collect()
    };
    // Full model: the overview+detail brush design (2 trees, >=1 brush).
    let full = row("full model");
    assert_eq!(full[2], "2", "{out}");
    assert!(full[5].starts_with("1/"), "{out}");
    // No redundancy penalty: similar windows stay as separate charts.
    let nored = row("no redundancy penalty");
    assert!(nored[2].parse::<usize>().unwrap() >= 3, "{out}");
    // No nested-choice penalty: collapses into one merged tree.
    let nonest = row("no nested-choice penalty");
    assert_eq!(nonest[2], "1", "{out}");
}
