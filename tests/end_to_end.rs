//! Cross-crate integration tests: the full pipeline — datasets → engine →
//! difftree → mapper → cost → search → session → render — on each demo
//! scenario.

use pi2_core::{Event, Pi2, SearchStrategy, WidgetValue};
use pi2_mcts::MctsConfig;
use pi2_notebook::Notebook;
use pi2_render::Renderer as _;

fn small_covid() -> pi2_engine::Catalog {
    pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
        state_limit: Some(8),
        ..Default::default()
    })
}

#[test]
fn every_scenario_generates_an_expressive_interface() {
    for scenario in pi2_datasets::demo_scenarios() {
        let pi2 = Pi2::builder(scenario.catalog.clone())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 25,
                rollout_depth: 2,
                seed: 3,
                ..Default::default()
            }))
            .build();
        let g =
            pi2.generate(&scenario.queries).unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert!(g.cost.expressive, "{}: interface must express the log", scenario.name);
        assert!(g.forest.expresses_all(&scenario.queries), "{}", scenario.name);
        assert!(!g.interface.charts.is_empty(), "{}", scenario.name);
        // Every chart's default query executes.
        let session = pi2.session(&g);
        let updates = session.refresh_all().unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert_eq!(updates.len(), g.interface.charts.len());
    }
}

#[test]
fn sdss_generates_panzoom_and_pan_roundtrips() {
    let catalog = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default());
    let pi2 = Pi2::builder(catalog).build();
    let g = pi2.generate(&pi2_datasets::sdss::demo_queries()).expect("generates");
    assert!(
        g.interface.interaction_count() >= 1,
        "SDSS log should yield visualization interactions, got widgets {:?}",
        g.interface.widgets
    );
    let mut s = pi2.session(&g);
    let before = s.query_for_chart(0).expect("query").to_string();
    let after = s.dispatch(Event::Pan { chart: 0, dx: 0.5, dy: 0.25 }).expect("pan");
    assert_ne!(before, after[0].query.to_string());
    // Interaction latency sanity: a dispatch is fast even in debug builds.
    let t = std::time::Instant::now();
    s.dispatch(Event::Zoom { chart: 0, factor: 1.5 }).expect("zoom");
    assert!(t.elapsed() < std::time::Duration::from_secs(2));
}

#[test]
fn notebook_walkthrough_generates_three_versions() {
    let pi2 = Pi2::builder(small_covid())
        .strategy(SearchStrategy::Mcts(MctsConfig {
            iterations: 30,
            rollout_depth: 2,
            seed: 7,
            ..Default::default()
        }))
        .build();
    let mut nb = Notebook::with_pi2(pi2);
    let demo = pi2_datasets::covid::demo_queries();
    for q in &demo[..3] {
        let id = nb.add_cell(q.to_string());
        nb.run_cell(id).expect("cell executes");
    }
    let v1 = nb.generate_interface().expect("V1");
    let id = nb.add_cell(demo[3].to_string());
    nb.run_cell(id).expect("cell executes");
    let v2 = nb.generate_interface().expect("V2");
    for q in &demo[4..6] {
        let id = nb.add_cell(q.to_string());
        nb.run_cell(id).expect("cell executes");
    }
    let v3 = nb.generate_interface().expect("V3");
    assert_eq!((v1, v2, v3), (1, 2, 3));
    assert_eq!(nb.versions().len(), 3);
    // Archived logs grow monotonically and are snapshots.
    assert_eq!(nb.version(1).expect("v1").query_log.len(), 3);
    assert_eq!(nb.version(3).expect("v3").query_log.len(), 6);
    // V1's interface has the overview+detail linked-brush design.
    let g1 = &nb.version(1).expect("v1").generated;
    assert!(g1.interface.charts.len() >= 2, "V1 should be multi-view");
    assert!(
        g1.interface.charts.iter().any(|c| c
            .interactions
            .iter()
            .any(|i| matches!(i, pi2_interface::VizInteraction::BrushX { .. }))),
        "V1 should have linked brushing"
    );
    // Every version's session works.
    for v in 1..=3 {
        let session = nb.open_session(v).expect("session");
        session.refresh_all().unwrap_or_else(|e| panic!("V{v}: {e}"));
    }
}

#[test]
fn session_events_keep_queries_inside_expressiveness() {
    // Dispatch a storm of events; every resulting query must still be
    // expressed by the forest (the interface can never produce a query the
    // DiffTree does not express).
    let catalog =
        pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 400, seed: 5 });
    let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
    let g = pi2.generate(&pi2_datasets::sdss::demo_queries()).expect("generates");
    let mut s = pi2.session(&g);
    let events = [
        Event::Pan { chart: 0, dx: 3.0, dy: -2.0 },
        Event::Zoom { chart: 0, factor: 3.0 },
        Event::Pan { chart: 0, dx: -100.0, dy: 100.0 },
        Event::Zoom { chart: 0, factor: 0.1 },
        Event::Pan { chart: 0, dx: 0.01, dy: 0.0 },
    ];
    for e in events {
        let updates = s.dispatch(e).expect("dispatch");
        for u in &updates {
            assert!(
                pi2_difftree::expresses(&g.forest.trees[0], &u.query).is_some(),
                "session produced inexpressible query {}",
                u.query
            );
        }
    }
}

#[test]
fn render_and_spec_and_html_cover_all_scenarios() {
    for scenario in pi2_datasets::demo_scenarios() {
        let pi2 =
            Pi2::builder(scenario.catalog.clone()).strategy(SearchStrategy::FullMerge).build();
        let g = match pi2.generate(&scenario.queries) {
            Ok(g) => g,
            Err(e) => panic!("{}: {e}", scenario.name),
        };
        let session = pi2.session(&g);
        let updates = session.refresh_all().expect("refresh");
        let text = pi2_render::AsciiRenderer.render(&g.interface, &updates);
        assert!(text.contains("G1"), "{}: {text}", scenario.name);
        let spec = pi2_render::SpecRenderer.render(&g.interface, &updates);
        assert!(spec["charts"].as_array().is_some_and(|a| !a.is_empty()));
        let log: Vec<String> = g.queries.iter().map(|q| q.to_string()).collect();
        let html = pi2_render::export_html(scenario.name, &g.interface, &updates, &log);
        assert!(html.contains("</html>"));
    }
}

#[test]
fn hex_baseline_session_differs_from_pi2_in_effort_not_liveness() {
    use pi2_baselines::{Hex, Pi2Tool, Tool};
    let catalog =
        pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 300, seed: 8 });
    let queries = pi2_datasets::sdss::demo_queries();
    let hex = Hex.generate(&queries, &catalog).expect("hex");
    let pi2 = Pi2Tool::default().generate(&queries, &catalog).expect("pi2");
    // Both are live...
    assert!(pi2_baselines::is_interactive(&hex));
    assert!(pi2_baselines::is_interactive(&pi2));
    // ...but reproducing Q1's view in Hex takes four slider operations,
    // in PI2 one pan gesture.
    let hex_ops = hex.interface.widgets.len();
    let pi2_ops = 1;
    assert!(hex_ops >= 4 * pi2_ops);
    // And only PI2 required zero manual setup.
    assert_eq!(pi2.manual_steps, 0);
    assert!(hex.manual_steps > 0);
}

#[test]
fn toggle_roundtrip_via_full_pipeline() {
    let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
        .strategy(SearchStrategy::FullMerge)
        .build();
    let g = pi2.generate(&pi2_datasets::toy::fig2_queries()).expect("generates");
    let mut s = pi2.session(&g);
    if let Some(toggle) =
        g.interface.widgets.iter().find(|w| matches!(w.kind, pi2_interface::WidgetKind::Toggle))
    {
        let off = s
            .dispatch(Event::SetWidget { widget: toggle.id, value: WidgetValue::Bool(false) })
            .expect("toggle off");
        let on = s
            .dispatch(Event::SetWidget { widget: toggle.id, value: WidgetValue::Bool(true) })
            .expect("toggle on");
        assert_ne!(off[0].query, on[0].query);
    }
}

#[test]
fn in_list_membership_becomes_multi_select() {
    // The SUBSET choice of the full paper: two queries whose IN lists
    // differ in membership merge into optional members, mapped to one
    // checkbox group that toggles each member independently.
    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
        state_limit: Some(8),
        ..Default::default()
    });
    let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
    let g = pi2
        .generate_sql(&[
            "SELECT date, sum(cases) AS cases FROM covid WHERE state IN ('AL') GROUP BY date",
            "SELECT date, sum(cases) AS cases FROM covid WHERE state IN ('AL', 'AZ', 'AK') GROUP BY date",
        ])
        .expect("generates");
    let multi = g
        .interface
        .widgets
        .iter()
        .find(|w| matches!(w.kind, pi2_interface::WidgetKind::MultiSelect { .. }))
        .unwrap_or_else(|| panic!("expected a multi-select, got {:?}", g.interface.widgets));
    let pi2_interface::WidgetKind::MultiSelect { options } = &multi.kind else { unreachable!() };
    assert_eq!(multi.targets.len(), options.len());

    // The session opens at the first query's witness bindings, where the
    // optional members are already excluded — restating that is a no-op,
    // so dependency tracking returns no chart updates.
    let mut session = pi2.session(&g);
    let n = options.len();
    let noop = session
        .dispatch(Event::SetWidget { widget: multi.id, value: WidgetValue::Multi(vec![false; n]) })
        .expect("dispatch");
    assert!(noop.is_empty(), "restating the witness state must not re-execute charts");
    // Toggle every member on, then off again: the IN list grows and shrinks.
    let on = session
        .dispatch(Event::SetWidget { widget: multi.id, value: WidgetValue::Multi(vec![true; n]) })
        .expect("dispatch");
    assert!(!on.is_empty());
    let q_on = on[0].query.to_string();
    let off = session
        .dispatch(Event::SetWidget { widget: multi.id, value: WidgetValue::Multi(vec![false; n]) })
        .expect("dispatch");
    assert!(!off.is_empty());
    let q_off = off[0].query.to_string();
    assert_ne!(q_off, q_on);
    assert!(q_on.matches('\'').count() > q_off.matches('\'').count(), "{q_off} vs {q_on}");
    // Wrong flag arity is rejected.
    assert!(session
        .dispatch(Event::SetWidget { widget: multi.id, value: WidgetValue::Multi(vec![true]) })
        .is_err());
}
