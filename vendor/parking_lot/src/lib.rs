//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API
//! surface (the subset PI2 uses): [`Mutex::lock`], [`RwLock::read`],
//! [`RwLock::write`] returning guards directly instead of `Result`s.
//! A poisoned std lock (a panic while holding it) is recovered rather
//! than propagated, matching parking_lot's semantics of not poisoning.

use std::sync;
// The guard types are std's, re-exported under parking_lot's names so
// callers can store guards in structs without reaching into std.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
