//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros and the
//! `Criterion`/`BenchmarkGroup`/`Bencher` types the workspace benches use.
//! Instead of statistical sampling it times a small fixed number of
//! iterations per benchmark and prints one line each, so benches double as
//! smoke tests. Set `PI2_BENCH_SAMPLES=<n>` for more iterations when real
//! timings are wanted.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_samples() -> Option<usize> {
    std::env::var("PI2_BENCH_SAMPLES").ok().and_then(|v| v.parse().ok())
}

/// Entry point mirroring criterion's `Criterion` struct.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // One timed pass by default keeps `cargo bench` cheap enough to run
        // in CI as a smoke test; the env var opts into real measurement.
        Criterion { samples: env_samples().unwrap_or(1) }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), samples: env_samples().unwrap_or(1) }
    }

    /// Benchmark a closure directly on the root harness.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.samples, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-benchmark sample count (overridden by `PI2_BENCH_SAMPLES`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples().unwrap_or_else(|| n.min(10)).max(1);
        self
    }

    /// Time a closure under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Time a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut g);
        self
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// A function/parameter benchmark label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Label a benchmark as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }

    /// Label a benchmark by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of the routine, keeping results alive via
    /// [`black_box`] so the optimizer cannot elide the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up pass (untimed).
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let iters = samples.max(1) as u64;
    for _ in 0..iters {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
    }
    let mean = total / iters as u32;
    println!("bench {label}: mean {mean:?} best {best:?} ({iters} samples)");
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| {
            b.iter(|| n * n);
        });
        group.finish();
        // warm-up + samples for the first bench ran at least once each.
        assert!(runs >= 2);
    }
}
