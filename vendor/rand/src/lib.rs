//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small deterministic subset of `rand` 0.8 that PI2 actually
//! uses: [`rngs::SmallRng`] seeded through [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen_range` (half-open ranges over
//! the primitive numeric types) and `gen_bool`.
//!
//! The generator is xoshiro256++ (the same algorithm `rand` 0.8 uses for
//! `SmallRng` on 64-bit targets), seeded via SplitMix64. Streams are fully
//! deterministic per seed, which is all PI2's datasets and search rely on.

use std::ops::Range;

/// Core trait: a source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from a half-open range `low..high`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64_unit(self.next_u64()) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    /// Sample from `range` using `rng`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Map a random u64 to [0, 1) with 53 bits of precision.
fn f64_unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough bounded sampling via 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is < 2^-64 * bound,
/// immaterial for data synthesis and search tie-breaking).
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty sample range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                let off = bounded_u64(rng, span);
                ((range.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty sample range");
        let v = range.start + f64_unit(rng.next_u64()) * (range.end - range.start);
        // Guard the (theoretically unreachable) upper edge.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let a_vals: Vec<i64> = (0..10).map(|_| a.gen_range(0..1000)).collect();
        let c_vals: Vec<i64> = (0..10).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
