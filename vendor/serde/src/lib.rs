//! Offline vendored stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types so a
//! real serde can be dropped in when the build environment has network
//! access; offline, those derives must still compile. This crate provides
//! the two derive macros as no-ops: they parse to nothing and generate
//! nothing. JSON output in the workspace goes through the vendored
//! `serde_json`'s own `Value` type, which does not require these traits.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
