//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of some type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces one value per call from the supplied RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keep only values for which `f` returns `Some`, unwrapped.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { source: self, whence, f }
    }

    /// Keep only values satisfying the predicate.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, f }
    }

    /// Build recursive values: `self` generates leaves and `recurse` maps a
    /// strategy for subtrees to a strategy for branches. Recursion bottoms
    /// out at `depth` levels; the size/branch hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut built = leaf.clone();
        // Each level mixes leaves back in so generated depths vary.
        for _ in 0..depth.min(6) {
            built = Union::new(vec![leaf.clone(), recurse(built).boxed()]).boxed();
        }
        built
    }

    /// Type-erase into a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable, type-erased strategy handle.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 consecutive values: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
    }
}

/// Uniform choice among several strategies of the same value type
/// (the expansion of `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one alternative");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn map_and_filter_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (0i64..100).prop_map(|v| v * 2).prop_filter("even>=50", |v| *v >= 50);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (50..200).contains(&v));
        }
    }

    #[test]
    fn union_picks_all_branches() {
        let mut rng = TestRng::from_seed(2);
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_seed(3);
        let s = (0u32..10, Just("x"), -5i64..5);
        for _ in 0..50 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, "x");
            assert!((-5..5).contains(&c));
        }
    }
}
