//! String strategies from regex-like patterns.
//!
//! A `&'static str` used as a strategy is interpreted as a pattern over a
//! small regex subset: literal characters, character classes with ranges
//! (`[a-zA-Z0-9 ']`), and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
//! (the unbounded ones capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

const UNBOUNDED_CAP: usize = 8;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut ranges = Vec::new();
                let body = &chars[i + 1..close];
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        ranges.push((body[j], body[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((body[j], body[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling '\\' in pattern {pattern:?}"));
                i += 2;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        let count = min + rng.below((max - min) as u64 + 1) as usize;
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 =
                        ranges.iter().map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1).sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let span = (hi as u64) - (lo as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_seed(11);
        let strat = "[a-zA-Z0-9 ']{0,12}";
        let mut saw_nonempty = false;
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '\''));
            saw_nonempty |= !s.is_empty();
        }
        assert!(saw_nonempty);
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::from_seed(12);
        assert_eq!(Strategy::generate(&"abc", &mut rng), "abc");
        assert_eq!(Strategy::generate(&"a{3}", &mut rng), "aaa");
    }
}
