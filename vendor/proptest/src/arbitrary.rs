//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spread over a wide but well-behaved span.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated identifiers/log text tractable.
        (0x20u8 + rng.below(0x5F) as u8) as char
    }
}
