//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive minimum length.
    pub min: usize,
    /// Inclusive maximum length.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;
    use crate::test_runner::TestRng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(9);
        let exact = vec(Just(1u8), 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
        let ranged = vec(Just(1u8), 1..5);
        for _ in 0..100 {
            let len = ranged.generate(&mut rng).len();
            assert!((1..5).contains(&len));
        }
    }
}
