//! Deterministic RNG and per-case outcome types for the test runner.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed); it does not count.
    Reject(&'static str),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure from any message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Construct a rejection (the case is discarded, not failed).
    pub fn reject(reason: &'static str) -> Self {
        TestCaseError::Reject(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// xoshiro256++ generator seeded from a test-name hash, so each property
/// test sees a stable, reproducible stream across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary u64 via SplitMix64 state expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Seed from a test name (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    /// Widening-multiply technique; bias is negligible for test generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
