//! Deterministic RNG and per-case outcome types for the test runner.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed); it does not count.
    Reject(&'static str),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure from any message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Construct a rejection (the case is discarded, not failed).
    pub fn reject(reason: &'static str) -> Self {
        TestCaseError::Reject(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// xoshiro256++ generator seeded from a test-name hash, so each property
/// test sees a stable, reproducible stream across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary u64 via SplitMix64 state expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Seed from a test name (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    /// Widening-multiply technique; bias is negligible for test generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Snapshot the raw generator state (for regression persistence: the
    /// state *before* a failing case generates its inputs identifies the
    /// case exactly).
    pub fn to_words(&self) -> [u64; 4] {
        self.s
    }

    /// Restore a generator from [`TestRng::to_words`] output. The all-zero
    /// state is degenerate for xoshiro and is remapped through SplitMix64.
    pub fn from_words(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::from_seed(0);
        }
        TestRng { s }
    }
}

/// Failure persistence, mirroring upstream proptest's
/// `proptest-regressions/` files: when a generated case fails, the RNG
/// state that produced it is appended to
/// `{CARGO_MANIFEST_DIR}/proptest-regressions/{source_file_stem}.txt`,
/// and every persisted state is replayed *before* novel cases on later
/// runs. Check these files in to source control.
pub mod persistence {
    use std::fs;
    use std::io::Write;
    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any novel
# cases are generated. It is recommended to check this file in to source
# control so that everyone who runs the test benefits from these saved
# cases.
";

    /// Regression file for a test source file: `proptest-regressions/`
    /// under the crate manifest, named after the source file stem.
    pub fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
        let stem = Path::new(source_file).file_stem().and_then(|s| s.to_str()).unwrap_or("unknown");
        Path::new(manifest_dir).join("proptest-regressions").join(format!("{stem}.txt"))
    }

    /// Persisted RNG states for `test_name`. Lines look like
    /// `cc <test_name> <w0> <w1> <w2> <w3>` with hex words; comments and
    /// entries for other tests in the same file are skipped.
    pub fn load(path: &Path, test_name: &str) -> Vec<[u64; 4]> {
        let Ok(text) = fs::read_to_string(path) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("cc") || parts.next() != Some(test_name) {
                continue;
            }
            let words: Vec<u64> = parts.filter_map(|w| u64::from_str_radix(w, 16).ok()).collect();
            if words.len() == 4 {
                out.push([words[0], words[1], words[2], words[3]]);
            }
        }
        out
    }

    fn entry_line(test_name: &str, words: [u64; 4]) -> String {
        format!(
            "cc {test_name} {:016x} {:016x} {:016x} {:016x}",
            words[0], words[1], words[2], words[3]
        )
    }

    /// Record a failing case. Returns `true` if the entry was newly
    /// written (`false` when it was already present or the write failed —
    /// persistence must never mask the original test failure).
    pub fn append(path: &Path, test_name: &str, words: [u64; 4]) -> bool {
        let line = entry_line(test_name, words);
        let existing = fs::read_to_string(path).unwrap_or_default();
        if existing.lines().any(|l| l.trim() == line) {
            return false;
        }
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let mut payload = String::new();
        if existing.is_empty() {
            payload.push_str(HEADER);
        }
        payload.push_str(&line);
        payload.push('\n');
        fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(payload.as_bytes()))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn words_round_trip_reproduces_stream() {
        let mut rng = TestRng::from_name("gamma");
        rng.next_u64();
        let words = rng.to_words();
        let mut replayed = TestRng::from_words(words);
        let xs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| replayed.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn persistence_appends_loads_and_dedups() {
        let dir = std::env::temp_dir().join(format!("pi2-proptest-persist-{}", std::process::id()));
        let path = dir.join("some_test_file.txt");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(persistence::load(&path, "my_test").is_empty());

        let words = [1u64, 2, 3, 4];
        assert!(persistence::append(&path, "my_test", words));
        assert!(!persistence::append(&path, "my_test", words), "duplicate must not re-append");
        assert!(persistence::append(&path, "my_test", [5, 6, 7, 8]));
        assert!(persistence::append(&path, "other_test", [9, 9, 9, 9]));

        assert_eq!(persistence::load(&path, "my_test"), vec![[1, 2, 3, 4], [5, 6, 7, 8]]);
        assert_eq!(persistence::load(&path, "other_test"), vec![[9, 9, 9, 9]]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# Seeds for failure cases"), "header missing:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn regression_path_uses_source_stem() {
        let p = persistence::regression_path("/ws/crates/sql", "crates/sql/tests/roundtrip.rs");
        assert_eq!(p, std::path::Path::new("/ws/crates/sql/proptest-regressions/roundtrip.txt"));
    }
}
