//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the strategy/assertion API subset the workspace's property
//! tests use, with deterministic pseudo-random case generation and **no
//! shrinking**: a failing case prints its inputs verbatim instead of a
//! minimized counterexample. Seeds derive from the test name, so failures
//! reproduce across runs.
//!
//! Like upstream proptest, failures are **persisted**: the RNG state that
//! produced a failing case is appended to
//! `{crate}/proptest-regressions/{source_file_stem}.txt` and replayed
//! before novel cases on every later run (see
//! [`test_runner::persistence`]). Check those files in to source control.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The common imports property tests glob in.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}\n{}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: {left:?}"
            )));
        }
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let __regressions = $crate::test_runner::persistence::regression_path(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                );
                // Bind each strategy once; the per-case shadowing below
                // generates values from these without consuming them.
                let ( $($arg,)+ ) = ( $($strategy,)+ );
                let mut __run_case = |rng: &mut $crate::test_runner::TestRng|
                    -> (
                        ::std::string::String,
                        ::std::thread::Result<$crate::test_runner::TestCaseResult>,
                    ) {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, rng);)+
                    let repr = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> $crate::test_runner::TestCaseResult {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    (repr, outcome)
                };
                // Replay persisted counterexamples before any novel case,
                // so a once-seen failure keeps failing until it is fixed.
                for words in
                    $crate::test_runner::persistence::load(&__regressions, stringify!($name))
                {
                    let mut rng = $crate::test_runner::TestRng::from_words(words);
                    let (repr, outcome) = __run_case(&mut rng);
                    match outcome {
                        Ok(Ok(()))
                        | Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                            panic!(
                                "proptest {}: persisted regression ({}) failed: {}\nwith inputs:\n{}",
                                stringify!($name), __regressions.display(), msg, repr
                            );
                        }
                        Err(payload) => {
                            eprintln!(
                                "proptest {}: persisted regression ({}) panicked with inputs:\n{}",
                                stringify!($name), __regressions.display(), repr
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20).max(1000) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), accepted, config.cases
                        );
                    }
                    let __case_words = rng.to_words();
                    let (repr, outcome) = __run_case(&mut rng);
                    match outcome {
                        Ok(Ok(())) => accepted += 1,
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => continue,
                        Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                            let saved = $crate::test_runner::persistence::append(
                                &__regressions, stringify!($name), __case_words,
                            );
                            panic!(
                                "proptest {} failed: {}\nwith inputs:\n{}{}",
                                stringify!($name), msg, repr,
                                if saved {
                                    format!("persisted to {}\n", __regressions.display())
                                } else {
                                    String::new()
                                }
                            );
                        }
                        Err(payload) => {
                            let saved = $crate::test_runner::persistence::append(
                                &__regressions, stringify!($name), __case_words,
                            );
                            eprintln!(
                                "proptest {} panicked with inputs:\n{}{}",
                                stringify!($name), repr,
                                if saved {
                                    format!("persisted to {}\n", __regressions.display())
                                } else {
                                    String::new()
                                }
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
