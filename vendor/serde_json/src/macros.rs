//! The `json!` macro: a tt-muncher construction of [`crate::Value`]
//! literals, following the grammar of serde_json's macro for the subset
//! the workspace uses (literal string keys, nested objects/arrays,
//! arbitrary expressions in value position converted via [`crate::ToJson`]).

/// Build a [`crate::Value`] from a JSON-like literal.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////// array munching ////////////

    // Done with a trailing comma.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    // Done without a trailing comma.
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Next element is `null`.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    // Next element is `true`.
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    // Next element is `false`.
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    // Next element is an array literal.
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    // Next element is an object literal.
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element is an expression (no trailing comma).
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////// object munching ////////////

    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry followed by a trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry without a trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    // Value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    // Value is an array literal.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Value is an object literal.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Value is the last expression (no trailing comma).
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    //////////// primary ////////////

    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}
