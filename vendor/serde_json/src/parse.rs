//! A strict recursive-descent JSON parser.

use crate::{Error, Map, Number, Value};

/// Parse a JSON document. The entire input must be consumed (trailing
/// whitespace allowed).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected {text})")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo
                                            .checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse exactly four hex digits (after `\u`); leaves pos past them.
    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1
            && self.bytes[if self.bytes[start] == b'-' { start + 1 } else { start }] == b'0'
        {
            return Err(self.err("leading zero in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("invalid number"))
    }

    fn digits(&mut self) -> Result<usize, Error> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}
