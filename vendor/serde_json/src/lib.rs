//! Offline vendored stand-in for the `serde_json` crate.
//!
//! A self-contained JSON document model covering the API subset PI2 uses:
//! [`Value`], insertion-ordered [`Map`], the [`json!`] macro, pretty and
//! compact printers, and a strict parser. Conversions into `Value` go
//! through the local [`ToJson`] trait instead of serde's `Serialize`
//! (the vendored `serde` derives are no-ops).

mod macros;
mod parse;
mod print;

pub use parse::from_str;
pub use print::{to_string, to_string_pretty};

use std::fmt;
use std::ops::{Index, IndexMut};

/// Error type for printing/parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integer or double.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for i64.
    UInt(u64),
    /// A finite double.
    Float(f64),
}

impl Number {
    /// The number as f64.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as i64, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The number as u64, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) => u64::try_from(v).ok(),
            Number::UInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map (the shape serde_json exposes,
/// with `preserve_order` semantics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// An empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert, replacing any existing entry for the key; returns the old
    /// value if present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// null
    #[default]
    Null,
    /// true / false
    Bool(bool),
    /// number
    Number(Number),
    /// string
    String(String),
    /// array
    Array(Vec<Value>),
    /// object
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as i64, if an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as f64, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as u64, if an integral non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a slice of values, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a map, if an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True iff the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Non-panicking indexing: `None` when missing or wrongly typed.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print::to_string(self).map_err(|_| fmt::Error)?)
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => {
                if !m.contains_key(key) {
                    m.insert(key.to_string(), Value::Null);
                }
                m.get_mut(key).expect("just inserted")
            }
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

/// Conversion into a JSON value — the stand-in for serde's `Serialize` in
/// the `json!` macro and `to_string*` helpers.
pub trait ToJson {
    /// Convert to a [`Value`].
    fn to_json(&self) -> Value;
}

/// Convert anything [`ToJson`] into a [`Value`] (mirrors
/// `serde_json::to_value`, minus the `Result`).
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Serialize to compact JSON bytes (the UTF-8 of [`to_string`]).
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse a JSON document from bytes (must be valid UTF-8).
pub fn from_slice(bytes: &[u8]) -> Result<Value, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Number(Number::Int(v)),
            Err(_) => Value::Number(Number::UInt(*self)),
        }
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        (*self as u64).to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl ToJson for Map<String, Value> {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let name = "pi2";
        let items = vec![1, 2, 3];
        let opt: Option<Value> = None;
        let v = json!({
            "name": name,
            "nested": { "flag": true, "count": items.len() },
            "items": items,
            "maybe": opt,
            "pairs": [{ "a": 1, "b": 2.5 }, { "a": 2 }],
            "empty_obj": {},
            "empty_arr": [],
            "null_lit": null,
        });
        assert_eq!(v["name"], "pi2");
        assert_eq!(v["nested"]["count"].as_i64(), Some(3));
        assert_eq!(v["pairs"].as_array().unwrap().len(), 2);
        assert!(v["maybe"].is_null());
        assert!(v["null_lit"].is_null());
        assert_eq!(v["items"][1].as_i64(), Some(2));
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({
            "s": "quote \" backslash \\ newline \n tab \t unicode \u{1F600}",
            "n": [0, -5, 2.5, 1e300],
            "b": [true, false, null],
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let parsed = from_str(&text).unwrap();
            assert_eq!(parsed, v, "through {text}");
        }
    }

    #[test]
    fn byte_helpers_and_u64_accessor() {
        let v = json!({"big": 123456789u64, "neg": -1, "f": 1.5});
        let bytes = to_vec(&v).unwrap();
        assert_eq!(from_slice(&bytes).unwrap(), v);
        assert_eq!(v["big"].as_u64(), Some(123456789));
        assert_eq!(v["neg"].as_u64(), None);
        assert_eq!(v["f"].as_u64(), None);
        assert!(from_slice(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn index_mut_inserts_new_keys() {
        let mut v = json!({ "a": 1 });
        v["b"] = json!([1, 2]);
        assert_eq!(v["b"].as_array().unwrap().len(), 2);
        v["a"] = json!("replaced");
        assert_eq!(v["a"], "replaced");
    }

    #[test]
    fn missing_paths_read_as_null() {
        let v = json!({ "a": { "b": 1 } });
        assert!(v["a"]["missing"]["deeper"].is_null());
        assert!(v["nope"][3].is_null());
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in
            ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "{\"a\":1} trailing"]
        {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn map_preserves_insertion_order() {
        let v = json!({ "z": 1, "a": 2, "m": 3 });
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }
}
