//! Compact and pretty JSON printers.

use crate::{Error, Number, ToJson, Value};
use std::fmt::Write;

/// Serialize to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0)?;
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some("  "), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) -> Result<(), Error> {
    match *n {
        Number::Int(v) => write!(out, "{v}").map_err(|e| Error::new(e.to_string())),
        Number::UInt(v) => write!(out, "{v}").map_err(|e| Error::new(e.to_string())),
        Number::Float(v) => {
            if !v.is_finite() {
                return Err(Error::new(format!("cannot serialize non-finite float {v}")));
            }
            // Rust's shortest-roundtrip float formatting; force a decimal
            // point or exponent so it re-parses as a float.
            let text = format!("{v}");
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
            Ok(())
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
