//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Exposes crossbeam's scoped-thread API shape implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). Only the subset PI2's
//! parallel search uses is provided: [`thread::scope`] returning a
//! `Result` that carries a child-thread panic payload, and
//! [`thread::Scope::spawn`] with joinable handles.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result alias matching `crossbeam::thread::scope`'s signature: `Err`
    /// holds the panic payload of a panicking child thread.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope in which child threads borrowing the environment can be
    /// spawned; all children are joined before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result (`Err` on
        /// panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; it may borrow from the enclosing
        /// environment and is joined when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(f) }
        }
    }

    /// Run `f` with a scope handle; every thread spawned on the scope is
    /// joined before this returns. Mirrors `crossbeam::thread::scope`:
    /// a panic on a child (or in `f`) surfaces as `Err(payload)` instead
    /// of unwinding through the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_environment() {
        let data = [1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move || chunk.iter().sum::<i32>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_is_captured() {
        let r = crate::thread::scope(|s| {
            s.spawn(|| panic!("child failure"));
        });
        assert!(r.is_err());
    }
}
